"""Deterministic chaos sweep over the serving fault hooks.

Every resilience mechanism in :mod:`repro.serve` exists because some
process, clock, or client misbehaves; this sweep drives all of them at
once, seeded, and checks the two promises the whole layer makes:

* **Every admitted request terminates** — with a definite answer
  (bit-identical to ``load_index(path).query_batch(...)``) or a *typed*
  error (:class:`~repro.serve.DeadlineExceeded` /
  :class:`~repro.serve.ServerError`).  No request may hang, vanish, or
  die with an untyped exception.
* **The server returns to ready** — after each fault iteration a clean
  follow-up query must answer exactly (or, for the retry-exhaustion
  scenario that is *defined* to break the server, the broken state must
  fail fast with a typed error).  At the end of the sweep, no worker or
  helper process may survive.

Scenarios (picked per-iteration by a seeded RNG, all of them driven
through the one-shot ``REPRO_SERVE_FAULT`` / ``REPRO_WAL_FAULT``
environment hooks plus the hang injection):

==============  =====================================================
clean           no fault; answers must be bit-identical
worker-die      one worker exits mid-query; supervision restarts and
                re-dispatches — the caller never sees it
die-twice       original worker *and* its replacement die: the retry
                budget exhausts, ``ServerError`` surfaces, and the
                server is broken-by-design (must fail fast afterward)
sleep-recover   a worker stalls briefly, then answers — no deadline,
                so the answer must simply arrive, exact
hang-retry      a worker hangs forever; the watchdog SIGKILLs it and
                (``hang_policy="retry"``) re-dispatches: exact answer
hang-fail       same hang under ``hang_policy="fail"`` with a
                per-request deadline: ``DeadlineExceeded`` within 2x
                the budget, worker restarted lazily, next query exact
queue-expire    a slow worker holds FIFO dispatch while short-deadline
                requests wait: they must fail typed *in the queue*
wal-kill        a child process serving ``--mutable`` is killed at a
                seeded WAL fault point (pre-append / torn / post-fsync
                on a record, mid-group with a partially fsynced commit
                group, between-segment right after a rotation seals a
                segment); every *acked* mutation must survive recovery
                — unacked ones may or may not, which is the contract
==============  =====================================================

Usage::

    PYTHONPATH=src python tools/chaos_sweep.py            # 200 iterations
    PYTHONPATH=src python tools/chaos_sweep.py --smoke    # one per scenario

Writes ``BENCH_chaos.json`` (smoke runs write
``BENCH_chaos.smoke.json`` so they never clobber a recorded full run);
``tools/check_bench_gates.py`` turns the report's invariant flags into
CI gates.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import random
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

DEFAULT_OUT = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                           "BENCH_chaos.json")

SCENARIOS = (
    "clean",
    "worker-die",
    "die-twice",
    "sleep-recover",
    "hang-retry",
    "hang-fail",
    "queue-expire",
    "wal-kill",
)

#: hang-fail must answer its typed error within this multiple of the
#: request budget — the watchdog bound the whole layer advertises.
DEADLINE_SLACK = 2.0

#: WAL fault points the wal-kill scenario draws from.  The first three
#: kill around one record's append; mid-group dies with only a prefix
#: of a commit group fsynced (no ticket in the group was acked);
#: between-segment dies right after rotation makes the fresh segment
#: header durable.  Smoke mode runs every point once.
WAL_KILL_POINTS = (
    "pre-append",
    "torn",
    "post-fsync",
    "mid-group",
    "between-segment",
)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _same(results, expected) -> bool:
    return len(results) == len(expected) and all(
        r.ids == e.ids and r.distances == e.distances
        for r, e in zip(results, expected)
    )


def _build_environment(tmp: str, seed: int):
    """One sharded snapshot + queries + in-process reference answers."""
    from repro import ShardedDBLSH
    from repro.data.generators import gaussian_mixture
    from repro.io import load_index, save_index

    data = gaussian_mixture(700, 12, n_clusters=5, seed=seed)
    rng = np.random.default_rng(seed + 1)
    queries = data[rng.choice(700, 6, replace=False)] + 0.02
    path = os.path.join(tmp, "chaos.npz")
    save_index(
        ShardedDBLSH(shards=2, c=1.5, l_spaces=3, k_per_space=6, t=32,
                     seed=0, auto_initial_radius=True).fit(data),
        path,
    )
    expected = load_index(path).query_batch(queries, k=5)
    return path, data, queries, expected


class _Sweep:
    """One seeded sweep run: iteration loop, invariants, report."""

    def __init__(self, path, queries, expected, mp_context: str,
                 rng: random.Random) -> None:
        self.path = path
        self.queries = queries
        self.expected = expected
        self.mp_context = mp_context
        self.rng = rng
        self.seen_pids: set = set()
        self.undetermined: list = []
        self.mismatches: list = []
        self.not_ready: list = []
        self.overruns: list = []
        self.wal_failures: list = []
        self.scenario_runs: dict = {name: 0 for name in SCENARIOS}
        self.watchdog_kills = 0
        self.deadline_hits = 0
        self.restarts = 0
        self.wal_kills = 0
        #: Smoke mode flips this on: wal-kill then covers every fault
        #: point in one iteration instead of sampling one.
        self.all_wal_points = False

    # -- plumbing ----------------------------------------------------

    def _server(self, **kwargs):
        from repro.serve import SnapshotServer

        return SnapshotServer(self.path, mp_context=self.mp_context, **kwargs)

    def _track(self, server) -> None:
        self.seen_pids.update(server.worker_pids)

    def _query(self, server, tag: str, timeout=None, expect: str = "ok"):
        """One guarded request; classifies its outcome against ``expect``.

        Every path through here *terminates the request* — answer,
        ``DeadlineExceeded``, or ``ServerError``.  Anything else (an
        untyped exception) is recorded as an undetermined request, the
        exact failure the sweep exists to catch.
        """
        from repro.serve import DeadlineExceeded, ServerError

        try:
            if timeout is not None:
                results = server.query_batch(self.queries, k=5,
                                             timeout=timeout)
            else:
                results = server.query_batch(self.queries, k=5)
        except DeadlineExceeded:
            outcome = "deadline"
        except ServerError:
            outcome = "server-error"
        except Exception as exc:  # noqa: BLE001 - the invariant under test
            self.undetermined.append(f"{tag}: untyped {type(exc).__name__}: {exc}")
            return "untyped"
        else:
            outcome = "ok"
            if not _same(results, self.expected):
                self.mismatches.append(f"{tag}: answers diverged from reference")
        if expect != "any" and outcome != expect:
            self.undetermined.append(
                f"{tag}: expected {expect}, got {outcome}")
        return outcome

    def _check_ready(self, server, tag: str, broken_by_design: bool) -> None:
        """Post-fault probe: exact answers again, or fast typed failure."""
        from repro.serve import ServerError

        if broken_by_design:
            started = time.monotonic()
            try:
                server.query_batch(self.queries, k=5)
            except ServerError:
                if time.monotonic() - started > 5.0:
                    self.not_ready.append(
                        f"{tag}: broken server failed slow, not fast")
            except Exception as exc:  # noqa: BLE001
                self.not_ready.append(
                    f"{tag}: broken server raised untyped "
                    f"{type(exc).__name__}")
            else:
                self.not_ready.append(
                    f"{tag}: retry-exhausted server answered instead of "
                    f"refusing")
            return
        if self._query(server, f"{tag}/ready-probe", expect="ok") != "ok":
            self.not_ready.append(f"{tag}: post-fault probe did not answer")
        status = server.status()
        if not status["serving"] or status["broken"] is not None:
            self.not_ready.append(
                f"{tag}: status not serving after recovery ({status['state']})")

    def _harvest(self, server) -> None:
        self._track(server)
        status = server.status()
        self.watchdog_kills += status["hang_kills"]
        self.deadline_hits += status["deadline_hits"]
        self.restarts += status["restarts"]

    # -- scenarios ---------------------------------------------------

    def run_iteration(self, index: int) -> str:
        scenario = self.rng.choice(SCENARIOS)
        self.scenario_runs[scenario] += 1
        tag = f"iter{index}/{scenario}"
        if scenario == "wal-kill":
            self._run_wal_kill(tag)
            return scenario
        shard = self.rng.randrange(2)
        fault = {
            "clean": None,
            "worker-die": f"die-on-query:{shard}:0",
            "die-twice": f"die-on-query:{shard}:0,die-on-query:{shard}:1",
            "sleep-recover": f"sleep-on-query:{shard}:0:0.3",
            "hang-retry": f"hang-on-query:{shard}:0",
            "hang-fail": f"hang-on-query:{shard}:0",
            "queue-expire": f"sleep-on-query:{shard}:0:0.6",
        }[scenario]
        kwargs = {"query_timeout": 120.0, "hang_policy": "retry"}
        if scenario == "hang-retry":
            kwargs["query_timeout"] = 1.0
        if scenario == "hang-fail":
            kwargs["hang_policy"] = "fail"
        if fault is not None:
            os.environ["REPRO_SERVE_FAULT"] = fault
        try:
            with self._server(**kwargs) as server:
                self._track(server)
                if scenario == "hang-fail":
                    budget = 1.0
                    started = time.monotonic()
                    self._query(server, tag, timeout=budget,
                                expect="deadline")
                    elapsed = time.monotonic() - started
                    if elapsed > budget * DEADLINE_SLACK:
                        self.overruns.append(
                            f"{tag}: typed failure took {elapsed:.2f}s "
                            f"(> {DEADLINE_SLACK:g}x the {budget:g}s budget)")
                elif scenario == "queue-expire":
                    self._run_queue_expire(server, tag)
                elif scenario == "die-twice":
                    self._query(server, tag, expect="server-error")
                else:
                    self._query(server, tag, expect="ok")
                os.environ.pop("REPRO_SERVE_FAULT", None)
                self._check_ready(server, tag,
                                  broken_by_design=(scenario == "die-twice"))
                self._harvest(server)
        finally:
            os.environ.pop("REPRO_SERVE_FAULT", None)
        return scenario

    def _run_queue_expire(self, server, tag: str) -> None:
        """A slow head-of-line request plus short-deadline waiters."""
        outcomes = {}

        def head():
            outcomes["head"] = self._query(server, f"{tag}/head", expect="ok")

        def waiter(name):
            outcomes[name] = self._query(server, f"{tag}/{name}",
                                         timeout=0.2, expect="deadline")

        head_thread = threading.Thread(target=head)
        head_thread.start()
        time.sleep(0.15)  # let the head own dispatch before the waiters queue
        waiters = [threading.Thread(target=waiter, args=(f"waiter{i}",))
                   for i in range(2)]
        for thread in waiters:
            thread.start()
        for thread in [head_thread, *waiters]:
            thread.join(timeout=30.0)
            if thread.is_alive():
                self.undetermined.append(
                    f"{tag}: a request thread never terminated")

    def _run_wal_kill(self, tag: str) -> None:
        """Kill a mutable serve at a WAL fault; acked rows must survive.

        Full mode draws one point per iteration; smoke mode (the
        deterministic one-pass sweep) runs every point once so the
        group-commit and rotation crash windows are always covered.
        """
        points = (
            WAL_KILL_POINTS if self.all_wal_points
            else (self.rng.choice(WAL_KILL_POINTS),)
        )
        for point in points:
            self._run_wal_kill_point(f"{tag}:{point}", point,
                                     self.rng.randrange(2, 5))

    def _run_wal_kill_point(self, tag: str, point: str, nth: int) -> None:
        from repro.serve import MutableSnapshotServer

        self.wal_kills += 1
        with tempfile.TemporaryDirectory(prefix="repro-chaos-wal-") as tmp:
            wal = os.path.join(tmp, "chaos.wal")
            ctx = multiprocessing.get_context("spawn")
            parent_conn, child_conn = ctx.Pipe()
            child = ctx.Process(
                target=_wal_victim,
                args=(self.path, wal, child_conn, f"{point}:{nth}",
                      self.mp_context),
            )
            child.start()
            # Drop the parent's copy of the child end, or the pipe never
            # EOFs when the armed fault kills the victim mid-append.
            child_conn.close()
            self.seen_pids.add(child.pid)
            acked = []
            while True:
                if not parent_conn.poll(60.0):
                    self.wal_failures.append(f"{tag}: victim went silent")
                    child.kill()
                    break
                try:
                    message = parent_conn.recv()
                except EOFError:
                    break  # the armed fault killed the victim mid-append
                acked.append(message)
            child.join(timeout=30.0)
            if child.exitcode != 9:
                self.wal_failures.append(
                    f"{tag}: victim exited {child.exitcode}, not the "
                    f"fault hook's os._exit(9)")
            # Recovery: every acked id must answer as its own nearest
            # neighbor; the unacked in-flight append may or may not
            # survive (torn tails are truncated), which is the contract.
            with MutableSnapshotServer(
                self.path, wal_path=wal, mp_context=self.mp_context,
            ) as recovered:
                self._track(recovered)
                for uid, vector in acked:
                    result = recovered.query_batch(
                        np.asarray([vector]), k=1)[0]
                    if not result.ids or result.ids[0] != uid:
                        self.wal_failures.append(
                            f"{tag}: acked insert {uid} ({point}:{nth}) "
                            f"lost across recovery")
                self._track(recovered)

    # -- report ------------------------------------------------------

    def orphans(self) -> list:
        deadline = time.monotonic() + 10.0
        while (any(_alive(pid) for pid in self.seen_pids)
               and time.monotonic() < deadline):
            time.sleep(0.05)
        return sorted(pid for pid in self.seen_pids if _alive(pid))


def _wal_victim(snapshot, wal, conn, fault_spec, mp_context) -> None:
    """Child: insert far-away points, acking each, until the WAL fault
    hook (armed via the inherited environment) kills the process.

    ``mid-group`` inserts from concurrent threads under a wide commit
    window so the dying flush group really holds several records;
    ``between-segment`` shrinks the segment size so the faulted
    rotation happens within a handful of inserts.  Either way an ack
    is sent only after the server acked the insert, so the parent's
    ledger is exactly the durable-contract set.
    """
    from repro.serve import MutableSnapshotServer

    os.environ["REPRO_WAL_FAULT"] = fault_spec
    point = fault_spec.split(":", 1)[0]
    rng = np.random.default_rng(int(fault_spec.rsplit(":", 1)[-1]))
    kwargs = {}
    if point == "between-segment":
        kwargs["segment_bytes"] = 256  # rotate every record or two
    if point == "mid-group":
        kwargs["group_commit_ms"] = 25.0  # wide window: real groups
    with MutableSnapshotServer(snapshot, wal_path=wal,
                               mp_context=mp_context, **kwargs) as server:
        if point == "mid-group":
            lock = threading.Lock()

            def writer(worker: int) -> None:
                # Per-thread generator: np.random.Generator is not
                # thread-safe, and the vectors only need to be far apart.
                wrng = np.random.default_rng(1000 + worker)
                for i in range(16):
                    vector = wrng.normal(100.0 + 1000.0 * worker + 10.0 * i,
                                         0.01, size=12)
                    uid = server.insert(vector)
                    with lock:
                        conn.send((uid, vector.tolist()))

            threads = [
                threading.Thread(target=writer, args=(worker,), daemon=True)
                for worker in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            for i in range(32):
                vector = rng.normal(100.0 + 10.0 * i, 0.01, size=12)
                uid = server.insert(vector)
                conn.send((uid, vector.tolist()))
    os._exit(7)  # the fault never fired: wrong exitcode fails the gate


def run_sweep(iterations: int, seed: int, mp_context: str, smoke: bool) -> dict:
    rng = random.Random(seed)
    started = time.time()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        path, _, queries, expected = _build_environment(tmp, seed=seed)
        sweep = _Sweep(path, queries, expected, mp_context, rng)
        sweep.all_wal_points = smoke
        if smoke:
            # One deterministic pass over every scenario: cheap, covers
            # each fault class once.
            for index, scenario in enumerate(SCENARIOS):
                sweep.rng = _Fixed(scenario, rng)
                sweep.run_iteration(index)
                print(f"[{index + 1}/{len(SCENARIOS)}] {scenario}", flush=True)
        else:
            for index in range(iterations):
                scenario = sweep.run_iteration(index)
                print(f"[{index + 1}/{iterations}] {scenario}", flush=True)
        orphans = sweep.orphans()
    return {
        "config": {
            "iterations": len(SCENARIOS) if smoke else iterations,
            "seed": seed,
            "mp_context": mp_context,
            "smoke": smoke,
            "elapsed_seconds": round(time.time() - started, 2),
        },
        "scenarios": sweep.scenario_runs,
        "invariants": {
            "all_requests_terminated": not sweep.undetermined,
            "undetermined_requests": sweep.undetermined,
            "answers_bit_identical": not sweep.mismatches,
            "mismatches": sweep.mismatches,
            "server_ready_after_each_iteration": not sweep.not_ready,
            "not_ready": sweep.not_ready,
            "deadline_overruns": sweep.overruns,
            "acked_mutations_survived": not sweep.wal_failures,
            "wal_failures": sweep.wal_failures,
            "zero_orphans": not orphans,
            "orphan_pids": orphans,
        },
        "counters": {
            "watchdog_kills": sweep.watchdog_kills,
            "deadline_hits": sweep.deadline_hits,
            "supervision_restarts": sweep.restarts,
            "wal_kills": sweep.wal_kills,
        },
    }


class _Fixed:
    """Smoke-mode RNG: pins the scenario, defers everything else."""

    def __init__(self, scenario: str, rng: random.Random) -> None:
        self._scenario = scenario
        self._rng = rng

    def choice(self, seq):
        if seq is SCENARIOS:
            return self._scenario
        return self._rng.choice(seq)

    def randrange(self, *bounds):
        return self._rng.randrange(*bounds)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iterations", type=int, default=200,
                        help="seeded fault iterations (full mode)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mp-context", default="fork", dest="mp_context",
                        choices=["spawn", "fork", "forkserver"],
                        help="worker start method (fork keeps hundreds of "
                             "restarts affordable; the fault hooks behave "
                             "identically under spawn)")
    parser.add_argument("--smoke", action="store_true",
                        help="one iteration per scenario; writes the "
                             ".smoke.json variant")
    parser.add_argument("--out", default=None, help="report path override")
    args = parser.parse_args(argv)
    report = run_sweep(args.iterations, args.seed, args.mp_context, args.smoke)
    out = args.out or (DEFAULT_OUT.replace(".json", ".smoke.json")
                       if args.smoke else DEFAULT_OUT)
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    invariants = report["invariants"]
    broken = [name for name in ("all_requests_terminated",
                                "answers_bit_identical",
                                "server_ready_after_each_iteration",
                                "acked_mutations_survived",
                                "zero_orphans")
              if not invariants[name]]
    broken += [f"deadline overrun: {o}" for o in invariants["deadline_overruns"]]
    print(f"wrote {out}")
    if broken:
        print(f"CHAOS INVARIANTS VIOLATED: {broken}", file=sys.stderr)
        return 1
    print(f"chaos sweep OK: {report['config']['iterations']} iteration(s), "
          f"{report['counters']['watchdog_kills']} watchdog kill(s), "
          f"{report['counters']['supervision_restarts']} restart(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
