"""CI bench gates: assert the parity/robustness flags in BENCH_*.smoke.json.

Every benchmark smoke run records *correctness flags* next to its
timings — transport parity, crash-recovery exactness, shed accounting.
This checker is the single place those flags become CI gates: one
checker function per benchmark file, each returning a list of
violations (empty = the gate holds), so a red run names every broken
gate at once instead of stopping at the first assert.

Usage::

    python tools/check_bench_gates.py                  # all eight, repo root
    python tools/check_bench_gates.py BENCH_serve.smoke.json [...]

Exit status 0 when every gate in every file holds; 1 otherwise (missing
or unparseable files are violations too — a smoke run that silently
wrote nothing must not pass).  Run from the repo root, or pass paths.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Dict, List


def check_query_engine(report: dict) -> List[str]:
    """Both query engines (loop and GEMM) must return identical neighbors
    in every measured regime — the PR 1 equivalence that everything
    downstream (sharding, serving, HTTP) inherits."""
    return [
        f"regime {name}: engines diverged (neighbors_identical is false)"
        for name, regime in report["regimes"].items()
        if not regime["neighbors_identical"]
    ]


def check_sharding(report: dict) -> List[str]:
    """Sharded answers must agree with unsharded: exact top-k set parity,
    or strictly-no-worse recall (per-shard budgets may verify candidates
    the unsharded budget truncated).  Snapshots must round-trip."""
    violations = [
        f"shards={shards}: worse neighbors than unsharded "
        f"(sets differ and recall {row['recall']} < {report['unsharded_recall']})"
        for shards, row in report["shards"].items()
        if not (row["topk_sets_match_unsharded"]
                or row["recall"] >= report["unsharded_recall"])
    ]
    if not report["snapshot"]["results_identical_after_reload"]:
        violations.append("snapshot: results changed across save/load")
    return violations


def check_build(report: dict) -> List[str]:
    """Bulk builders must answer identically to incremental fit; the
    process-parallel shard build must match in-process; snapshots must
    round-trip."""
    violations = [
        f"n={n}: bulk and incremental builders diverged"
        for n, row in report["single"].items() if not row["answers_identical"]
    ]
    violations += [
        f"shards={shards}: process-parallel build != in-process build"
        for shards, row in report["sharded"].items() if not row["process_matches"]
    ]
    if not report["snapshot"]["results_identical_after_reload"]:
        violations.append("snapshot: results changed across save/load")
    return violations


def check_serve(report: dict) -> List[str]:
    """Served answers must be bit-identical to the in-process snapshot
    sweep (shared merge planner — any gap is a transport bug); the
    full-budget rows must also match unsharded sets; concurrent clients
    must reassemble exactly; the supervision scenario (SIGKILL + hot
    reload under 4 clients) must hold all four of its flags."""
    violations = []
    for workers, row in report["workers"].items():
        if not row["server_matches_inprocess"]:
            violations.append(
                f"workers={workers}: served answers != in-process snapshot"
            )
        if not row["server_sets_match_unsharded"]:
            violations.append(
                f"workers={workers}: served sets != unsharded query_batch"
            )
    violations += [
        f"workers={workers} (budget=split): served answers != in-process"
        for workers, row in report["workers_budget_split"].items()
        if not row["server_matches_inprocess"]
    ]
    violations += [
        f"clients={clients}: concurrent answers != single-client answers"
        for clients, row in report["concurrent_clients"].items()
        if not row["matches_inprocess"]
    ]
    sup = report["supervision"]
    if not sup["all_answers_bit_identical_to_a_generation"]:
        violations.append(
            f"supervision: answers match neither generation: {sup['failures']}"
        )
    if sup["worker_restarts"] < 1:
        violations.append("supervision: the SIGKILL never exercised a restart")
    if not sup["post_reload_matches_new_snapshot"]:
        violations.append(
            "supervision: post-reload answers != new snapshot's answers"
        )
    if not sup["no_orphans_after_close"]:
        violations.append("supervision: worker processes outlived close()")
    return violations


def check_mutations(report: dict) -> List[str]:
    """A WAL-mutated server must answer exactly like a from-scratch refit
    on the surviving rows — before and after compaction — and a restart
    after an injected mid-append kill must recover exactly the acked
    mutations, nothing more, nothing less.  Group commit must amortize
    fsyncs: >= 3x the per-record-fsync insert throughput at a >= 2ms
    window."""
    violations = []
    mut = report["mutations"]
    if not mut["mutation_parity_vs_refit"]:
        violations.append("mutations: mutated server != refit on surviving rows")
    if not mut["post_compaction_parity_vs_refit"]:
        violations.append("mutations: post-compaction answers != refit")
    if not mut["answers_stable_across_compaction"]:
        violations.append("mutations: compaction changed the served neighbors")
    rec = report["recovery"]
    if rec["killed_with_exitcode"] != 9:
        violations.append(
            f"recovery: injected WAL fault exited "
            f"{rec['killed_with_exitcode']}, not SIGKILL's 9"
        )
    if not rec["recovered_exactly_acked"]:
        violations.append("recovery: restart lost or invented acked mutations")
    group = report["group_commit"]
    if group["speedup"] < 3.0:
        violations.append(
            f"group commit: grouped inserts only x{group['speedup']} over "
            f"per-record fsyncs (>= 3.0 required at a "
            f">= 2ms window; the bench injects "
            f"{group['fsync_delay_ms']}ms fsync latency into both modes, "
            f"so this ratio cannot be excused by a fast disk)"
        )
    if group["group_window_ms"] < 2.0:
        violations.append(
            f"group commit: bench ran with a {group['group_window_ms']}ms "
            f"window — the gate is defined at >= 2ms"
        )
    return violations


def check_http(report: dict) -> List[str]:
    """Every cell of the clients × batch-window grid must answer
    bit-identically to the in-process query_batch (micro-batching must
    be invisible in the results), and the overload scenario must have
    shed at least once while dropping zero admitted requests."""
    violations = [
        f"window={window}ms clients={clients}: HTTP answers != in-process "
        f"query_batch ({row['failures'] or 'results diverged'})"
        for window, column in report["grid"].items()
        for clients, row in column.items()
        if not row["matches_inprocess"]
    ]
    over = report["overload"]
    if over["sheds"] < 1:
        violations.append(
            "overload: no request was ever shed — admission control untested"
        )
    if over["dropped_inflight"] != 0:
        violations.append(
            f"overload: {over['dropped_inflight']} admitted requests dropped "
            f"({over['dropped']})"
        )
    if not over["completed_match_inprocess"]:
        violations.append("overload: completed answers != in-process answers")
    return violations


def check_chaos(report: dict) -> List[str]:
    """The chaos sweep's resilience invariants: every admitted request
    terminated with an answer or a typed error, every answer matched the
    in-process reference, the server came back ready after every fault
    iteration, acked mutations survived the WAL kills, nothing leaked a
    process — and the sweep actually exercised the watchdog (a run that
    never killed a hung worker gates nothing)."""
    inv = report["invariants"]
    violations = []
    if not inv["all_requests_terminated"]:
        violations.append(
            f"chaos: requests never terminated or failed untyped: "
            f"{inv['undetermined_requests'][:3]}"
        )
    if not inv["answers_bit_identical"]:
        violations.append(
            f"chaos: answers diverged from the in-process reference: "
            f"{inv['mismatches'][:3]}"
        )
    if not inv["server_ready_after_each_iteration"]:
        violations.append(
            f"chaos: server did not return to ready: {inv['not_ready'][:3]}"
        )
    violations += [
        f"chaos: {overrun}" for overrun in inv["deadline_overruns"]
    ]
    if not inv["acked_mutations_survived"]:
        violations.append(
            f"chaos: acked mutations lost: {inv['wal_failures'][:3]}"
        )
    if not inv["zero_orphans"]:
        violations.append(
            f"chaos: orphan processes survived the sweep: {inv['orphan_pids']}"
        )
    if report["counters"]["watchdog_kills"] < 1:
        violations.append(
            "chaos: the watchdog never killed a hung worker — the hang "
            "scenarios did not run"
        )
    return violations


def check_memory(report: dict) -> List[str]:
    """The arena snapshot's physical claims: a mapped load must allocate
    almost nothing (< 10% of the payload bytes — the npz control must
    allocate ≥ 30%, proving the tracemalloc probe measures real copies),
    v3 must answer bit-identically to v2 and to the served path, and the
    replica fleet must actually share pages (snapshot PSS/RSS < 0.75)
    whenever the platform can measure it."""
    violations = []
    zero = report["zero_copy"]
    if zero["arena_alloc_fraction"] >= 0.10:
        violations.append(
            f"zero-copy: mapped load allocated "
            f"{zero['arena_alloc_fraction']:.1%} of the payload bytes "
            f"(>= 10% — the arena load is copying)"
        )
    if zero["npz_alloc_fraction"] < 0.30:
        violations.append(
            f"zero-copy: npz control allocated only "
            f"{zero['npz_alloc_fraction']:.1%} of the payload — the "
            f"allocation probe is not measuring copies"
        )
    if not zero["arena_is_mapped"]:
        violations.append("zero-copy: arena load did not report is_mapped")
    parity = report["parity"]
    if not parity["v2_v3_identical"]:
        violations.append("parity: v2 and v3 snapshots answered differently")
    if not parity["served_matches_inprocess"]:
        violations.append(
            "parity: served arena answers != in-process load_index answers"
        )
    sharing = report["sharing"]
    if sharing["available"]:
        if not sharing["all_workers_mapped"]:
            violations.append(
                "sharing: a replica worker served a private copy, not the "
                "mapped arena"
            )
        ratio = sharing["pss_over_rss"]
        if ratio is None or ratio >= 0.75:
            violations.append(
                f"sharing: snapshot PSS/RSS is {ratio} across "
                f"{sharing['servers']} replicas (>= 0.75 — physical pages "
                f"are not shared)"
            )
    return violations


#: filename -> checker; also the default set of files the CI job expects.
CHECKERS: Dict[str, Callable[[dict], List[str]]] = {
    "BENCH_query_engine.smoke.json": check_query_engine,
    "BENCH_sharding.smoke.json": check_sharding,
    "BENCH_build.smoke.json": check_build,
    "BENCH_serve.smoke.json": check_serve,
    "BENCH_mutations.smoke.json": check_mutations,
    "BENCH_http.smoke.json": check_http,
    "BENCH_chaos.smoke.json": check_chaos,
    "BENCH_memory.smoke.json": check_memory,
}


def check_file(path: str) -> List[str]:
    """All violations for one smoke file (missing/corrupt file included)."""
    name = path.rsplit("/", 1)[-1]
    checker = CHECKERS.get(name)
    if checker is None:
        return [f"no gate checker registered for {name!r}"]
    try:
        with open(path) as handle:
            report = json.load(handle)
    except FileNotFoundError:
        return [f"{name}: missing — did the smoke run write it?"]
    except json.JSONDecodeError as exc:
        return [f"{name}: unparseable JSON ({exc})"]
    try:
        return [f"{name}: {violation}" for violation in checker(report)]
    except (KeyError, TypeError) as exc:
        return [
            f"{name}: malformed report — expected field missing ({exc!r}); "
            f"benchmark output schema and gate checker have drifted apart"
        ]


def main(argv: List[str] | None = None) -> int:
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        paths = list(CHECKERS)
    violations = [v for path in paths for v in check_file(path)]
    for violation in violations:
        print(f"GATE FAILED: {violation}", file=sys.stderr)
    if violations:
        print(f"{len(violations)} bench gate(s) failed", file=sys.stderr)
        return 1
    print(f"bench gates OK ({len(paths)} file(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
