"""Verify that relative links in README.md and docs/*.md resolve.

Checks every markdown link target (``[text](target)``) that is not an
absolute URL or a pure in-page anchor, resolving it against the linking
file's directory, and fails with a listing of broken targets.  Run from
anywhere::

    python tools/check_docs_links.py [repo_root]

Used by the CI lint job and by ``tests/test_docs_links.py``, so a PR
that moves or renames a referenced file fails fast instead of shipping
dead documentation links.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import List

#: Markdown inline links: [text](target) — target may carry an #anchor
#: or a "title" after whitespace.  The destination is everything inside
#: the parentheses; _target() trims titles/angle brackets, so links the
#: simple one-token form would skip (spaces, titles) are still checked
#: rather than silently passing.
_LINK = re.compile(r"\[[^\]]*\]\(([^()]+)\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _target(raw: str) -> str:
    """The link destination of one parenthesized link body."""
    raw = raw.strip()
    if raw.startswith("<") and ">" in raw:
        return raw[1:raw.index(">")]
    return raw.split()[0] if raw.split() else ""


def _doc_files(root: pathlib.Path) -> List[pathlib.Path]:
    files = [root / "README.md"]
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return [f for f in files if f.is_file()]


def broken_links(root: pathlib.Path) -> List[str]:
    """All unresolvable relative link targets under ``root``, pretty-printed."""
    problems = []
    for doc in _doc_files(root):
        for raw in _LINK.findall(doc.read_text(encoding="utf-8")):
            target = _target(raw)
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (doc.parent / relative).exists():
                problems.append(
                    f"{doc.relative_to(root)}: broken link -> {target}"
                )
    return problems


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(args[0]) if args else pathlib.Path(__file__).parents[1]
    docs = _doc_files(root)
    if not docs:
        print(f"no documentation files found under {root}", file=sys.stderr)
        return 1
    problems = broken_links(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(docs)} file(s); all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
