"""Quickstart: index a point set and answer (c, k)-ANN queries with DB-LSH.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DBLSH
from repro.data.generators import gaussian_mixture
from repro.data.groundtruth import exact_knn
from repro.eval.metrics import overall_ratio, recall


def main() -> None:
    # 1. Some clustered data (10k points, 128 dimensions).
    data = gaussian_mixture(
        10_000, 128, n_clusters=50, cluster_std=1.0, center_spread=6.0, seed=0
    )
    queries = data[:5] + 0.1  # perturbed copies of the first five points

    # 2. Build the index.  The paper's defaults: c = 1.5, w0 = 4c^2,
    #    L = 5 projected spaces of K = 10 dimensions each, budget knob
    #    t = 16.  auto_initial_radius anchors the radius schedule to the
    #    data scale (the paper assumes unit-scaled data).
    index = DBLSH(
        c=1.5,
        l_spaces=5,
        k_per_space=10,
        t=16,
        seed=42,
        auto_initial_radius=True,
    ).fit(data)
    print(index.describe())
    print(f"indexing took {index.build_seconds * 1e3:.1f} ms")

    # 3. Query: top-10 approximate neighbors per query point.
    gt_ids, gt_dists = exact_knn(queries, data, k=10)
    for qi, q in enumerate(queries):
        result = index.query(q, k=10)
        print(
            f"query {qi}: recall={recall(result.ids, gt_ids[qi]):.2f} "
            f"ratio={overall_ratio(result.distances, gt_dists[qi]):.4f} "
            f"candidates={result.stats.candidates_verified} "
            f"rounds={result.stats.rounds} "
            f"({result.stats.elapsed_seconds * 1e3:.2f} ms, "
            f"stopped by {result.stats.terminated_by})"
        )

    # 4. A single (r, c)-NN query (Algorithm 1) at an explicit radius.
    radius = float(np.linalg.norm(data[0] - queries[0])) * 1.2
    rc = index.range_query(queries[0], radius=radius)
    print(
        f"(r,c)-NN at r={radius:.3f}: "
        + (f"found id={rc.neighbors[0].id} at {rc.neighbors[0].distance:.3f}"
           if rc.neighbors else "nothing within c*r")
    )


if __name__ == "__main__":
    main()
