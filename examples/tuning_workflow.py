"""Operational workflow: diagnose a dataset, tune the budget, deploy.

Shows the full practitioner loop the library supports around DB-LSH:

1. **Diagnose** — measure the dataset's hardness (relative contrast and
   local intrinsic dimensionality, the quantifiers the paper's §VI-B3
   uses to explain accuracy differences);
2. **Tune** — sweep the budget knob ``t`` (Remark 2) for a target recall
   on held-out validation queries;
3. **Deploy** — build the tuned index, persist it with ``save``, reload
   with ``load`` and serve queries.

Run:  python examples/tuning_workflow.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro import DBLSH
from repro.data.analysis import hardness_report
from repro.data.generators import gaussian_mixture
from repro.eval.tuning import tune_budget


def main() -> None:
    # An easy clustered corpus and a target of 95% recall@10.
    data = gaussian_mixture(
        6_000, 96, n_clusters=40, cluster_std=1.0, center_spread=7.0, seed=11
    )

    # 1. Diagnose.
    report = hardness_report(data, sample=80)
    print("dataset diagnostics:")
    for key, value in report.row().items():
        print(f"  {key}: {value}")
    if report.relative_contrast < 2.0:
        print("  -> low contrast: expect every LSH method to struggle (§VI-B3)")

    # 2. Tune.
    outcome = tune_budget(data, target_recall=0.95, k=10, seed=0)
    print("\nbudget sweep (t, recall, candidates/query):")
    for step in outcome.trace:
        print(f"  {step}")
    print(
        f"chosen t = {outcome.best_t} "
        f"(recall {outcome.achieved_recall:.3f}, "
        f"{outcome.candidates_per_query:.0f} candidates/query)"
    )

    # 3. Deploy: build, persist, reload, serve.
    index = DBLSH(
        c=1.5, l_spaces=5, k_per_space=10, t=outcome.best_t, seed=0,
        auto_initial_radius=True,
    ).fit(data)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "index.npz")
        index.save(path)
        size_mb = os.path.getsize(path) / 1e6
        served = DBLSH.load(path)
        print(f"\npersisted index: {size_mb:.1f} MB on disk")
        query = data[123] + 0.05 * np.random.default_rng(1).standard_normal(96)
        result = served.query(query, k=5)
        print(f"reloaded index answers: top-1 id={result.neighbors[0].id} "
              f"at {result.neighbors[0].distance:.3f} "
              f"({result.stats.candidates_verified} candidates, "
              f"{result.stats.elapsed_seconds * 1e3:.1f} ms)")


if __name__ == "__main__":
    main()
