"""Compare every LSH method in the library on one workload.

A miniature Table IV: builds all twelve methods plus the exact scan on a
DEEP-like descriptor workload and prints the paper's metrics side by
side.  Useful as a template for benchmarking your own data — swap
``make_dataset`` for your (n, d) array.

Run:  python examples/compare_methods.py
"""

from __future__ import annotations

from repro import DBLSH
from repro.baselines import (
    C2LSH,
    E2LSH,
    FBLSH,
    ILSH,
    LCCSLSH,
    LSBForest,
    LinearScan,
    MultiProbeLSH,
    PMLSH,
    QALSH,
    R2LSH,
    SRS,
    VHP,
)
from repro.data.datasets import make_dataset
from repro.eval.report import format_table
from repro.eval.runner import run_comparison


def main() -> None:
    dataset = make_dataset("deep1m", n_queries=20, seed=0, scale=0.4)
    print(f"workload: {dataset.name}, n={dataset.n}, d={dataset.dim}\n")

    methods = [
        DBLSH(c=1.5, l_spaces=5, k_per_space=10, t=16, seed=0,
              auto_initial_radius=True),
        FBLSH(c=1.5, k_per_space=5, l_spaces=10, t=16, seed=0,
              auto_initial_radius=True),
        E2LSH(c=1.5, w=4.0, k_per_table=10, l_tables=5, num_radii=10, seed=0,
              auto_initial_radius=True),
        MultiProbeLSH(k_per_table=10, l_tables=5, num_probes=32,
                      max_candidates=400, seed=0),
        QALSH(c=1.5, m=40, w=2.719, beta=0.05, seed=0, auto_initial_radius=True),
        ILSH(c=1.5, m=40, beta=0.05, seed=0),
        C2LSH(c=2, m=40, w=1.0, beta=0.05, seed=0, auto_scale=True),
        VHP(c=1.5, m=60, t0=1.4, beta=0.05, seed=0, auto_initial_radius=True),
        R2LSH(c=1.5, m=40, beta=0.05, seed=0, auto_initial_radius=True),
        PMLSH(m=15, beta=0.08, seed=0),
        SRS(c=1.5, m=6, beta=0.05, seed=0),
        LSBForest(c=2.0, l_trees=6, m=8, bits_per_dim=10, candidate_factor=60,
                  seed=0),
        LCCSLSH(m=16, probes=256, seed=0),
        LinearScan(),
    ]
    results = run_comparison(methods, dataset.data, dataset.queries, k=20,
                             dataset_name=dataset.name)
    print(format_table([r.row() for r in results],
                       title=f"Method comparison on {dataset.name} (k=20)"))


if __name__ == "__main__":
    main()
