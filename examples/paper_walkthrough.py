"""The paper's running example (Figures 1-3), reproduced numerically.

Walks the 12-point dataset of §III through the exact scenarios of
Example 1 and Example 2:

* a c-ANN query answered by (r, c)-NN queries at r = 1, c, c^2 (Fig. 1);
* DB-LSH's projected-space window queries growing with the radius,
  including the query-centric bucket that rescues the point a static
  bucket boundary would lose (Fig. 2 / Fig. 3).

Run:  python examples/paper_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro import DBLSH

# The 12 points of Fig. 1 (coordinates eyeballed from the figure; only
# the *relative* geometry matters: a handful of points sit ~1.5-2.2 from
# the query, none within distance 1).
POINTS = np.array(
    [
        [1.0, 8.5],   # o1
        [2.0, 9.5],   # o2
        [2.5, 7.0],   # o3
        [4.3, 5.2],   # o4
        [1.5, 4.0],   # o5
        [5.8, 6.3],   # o6  <- nearest to q at ~1.53
        [2.0, 2.0],   # o7
        [6.5, 8.0],   # o8
        [6.3, 4.0],   # o9
        [8.0, 7.5],   # o10
        [5.5, 3.2],   # o11
        [8.5, 2.0],   # o12
    ]
)
QUERY = np.array([4.5, 7.1])
C = 1.5


def main() -> None:
    dists = np.linalg.norm(POINTS - QUERY, axis=1)
    order = np.argsort(dists)
    print("distances to q:")
    for rank, i in enumerate(order[:4], 1):
        print(f"  #{rank}: o{i + 1} at {dists[i]:.3f}")
    nn_dist = dists[order[0]]

    index = DBLSH(c=C, l_spaces=4, k_per_space=2, t=16, seed=7,
                  initial_radius=1.0).fit(POINTS)
    print("\n" + index.describe())

    # Example 1: the (r, c)-NN cascade with r = 1, c, c^2, ...
    print("\n(r, c)-NN cascade (Example 1):")
    r = 1.0
    while True:
        result = index.range_query(QUERY, radius=r)
        if result.neighbors:
            n = result.neighbors[0]
            print(f"  r={r:.3f}: returned o{n.id + 1} at distance {n.distance:.3f} "
                  f"(c*r = {C * r:.3f})")
            break
        print(f"  r={r:.3f}: nothing within c*r = {C * r:.3f}")
        r *= C
    # Theorem 1: the cascade's answer is a c^2-approximation.
    assert n.distance <= C**2 * nn_dist + 1e-9

    # Example 2 / Algorithm 2: the full c-ANN driver.
    result = index.query(QUERY, k=1)
    n = result.neighbors[0]
    print(
        f"\nc-ANN driver: o{n.id + 1} at {n.distance:.3f} "
        f"after {result.stats.rounds} rounds, "
        f"{result.stats.candidates_verified} candidates verified "
        f"(c^2 guarantee: <= {C**2 * nn_dist:.3f})"
    )
    assert n.distance <= C**2 * nn_dist + 1e-9

    # Fig. 2's moral: the query-centric bucket contains the near neighbor
    # even when a fixed grid boundary would separate it from q.
    print("\nFig. 2: window membership of the true NN in each projected space")
    assert index.params is not None and index._hasher is not None
    q_proj = index._hasher.project_query(QUERY)
    nn_proj = index._hasher.project_query(POINTS[order[0]])
    width = index.params.w0 * nn_dist
    inside = np.all(np.abs(q_proj - nn_proj) <= width / 2.0, axis=1)
    for i, flag in enumerate(inside):
        print(f"  space {i}: {'inside' if flag else 'outside'} the query-centric "
              f"bucket of width {width:.2f}")
    assert inside.any()


if __name__ == "__main__":
    main()
