"""Domain example: near-duplicate image retrieval over SIFT-like descriptors.

The paper's motivating workloads are descriptor datasets (SIFT, GIST,
DEEP).  This example simulates a retrieval pipeline end to end:

1. a corpus of 128-dimensional SIFT-like descriptors (clustered, as real
   local features are);
2. "query photos" that are near-duplicates — descriptors perturbed by
   noise, as re-encoding or mild editing would;
3. DB-LSH retrieval compared against a linear scan, reporting recall,
   ratio and the work saved.

Run:  python examples/image_retrieval.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import DBLSH
from repro.baselines import LinearScan
from repro.data.generators import gaussian_mixture
from repro.data.groundtruth import exact_knn
from repro.eval.metrics import recall


def main() -> None:
    rng = np.random.default_rng(0)

    # Corpus: 20k descriptors from 200 visual words (cluster centres).
    corpus = gaussian_mixture(
        20_000, 128, n_clusters=200, cluster_std=1.0, center_spread=8.0, seed=1
    )

    # Near-duplicate queries: corpus descriptors + mild noise.
    originals = rng.choice(20_000, size=20, replace=False)
    queries = corpus[originals] + 0.2 * rng.standard_normal((20, 128))

    index = DBLSH(
        c=1.5, l_spaces=5, k_per_space=10, t=16, seed=3, auto_initial_radius=True
    ).fit(corpus)
    scan = LinearScan().fit(corpus)
    print(index.describe())

    gt_ids, _ = exact_knn(queries, corpus, k=10)
    lsh_recalls, hit, lsh_time, scan_time, lsh_work = [], 0, 0.0, 0.0, 0
    for qi, q in enumerate(queries):
        started = time.perf_counter()
        result = index.query(q, k=10)
        lsh_time += time.perf_counter() - started
        started = time.perf_counter()
        scan.query(q, k=10)
        scan_time += time.perf_counter() - started
        lsh_recalls.append(recall(result.ids, gt_ids[qi]))
        lsh_work += result.stats.candidates_verified
        if originals[qi] in result.ids:
            hit += 1

    print(f"\nnear-duplicate hit rate: {hit}/{len(queries)}")
    print(f"mean recall@10:          {np.mean(lsh_recalls):.3f}")
    print(f"mean candidates/query:   {lsh_work / len(queries):.0f} of 20000 "
          f"({lsh_work / len(queries) / 200:.1f}% of a scan)")
    print(f"DB-LSH query time:       {lsh_time / len(queries) * 1e3:.2f} ms")
    print(f"linear-scan query time:  {scan_time / len(queries) * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
