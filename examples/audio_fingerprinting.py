"""Domain example: audio fingerprint matching with streaming inserts.

Models the paper's Audio workload (192-dimensional audio descriptors)
with a twist that exercises DB-LSH's decoupled design: because buckets
are built at *query* time, the index supports incremental insertion
(``DBLSH.add``) without any re-bucketing — new tracks become searchable
immediately.

1. index a catalogue of audio fingerprints;
2. match noisy snippets (fingerprints + distortion) against it;
3. ingest a batch of new tracks with ``add`` and match against them too.

Run:  python examples/audio_fingerprinting.py
"""

from __future__ import annotations

import numpy as np

from repro import DBLSH
from repro.data.generators import gaussian_mixture


def main() -> None:
    rng = np.random.default_rng(7)

    # Catalogue: 8k fingerprints of 192 dims (Table III's Audio shape).
    catalogue = gaussian_mixture(
        8_000, 192, n_clusters=60, cluster_std=1.0, center_spread=7.0, seed=2
    )
    index = DBLSH(
        c=1.5, l_spaces=5, k_per_space=10, t=16, seed=5, auto_initial_radius=True
    ).fit(catalogue)
    print(index.describe())

    # Match distorted snippets of known tracks.
    track_ids = rng.choice(8_000, size=15, replace=False)
    snippets = catalogue[track_ids] + 0.3 * rng.standard_normal((15, 192))
    top1_hits = sum(
        index.query(s, k=1).neighbors[0].id == t
        for s, t in zip(snippets, track_ids)
    )
    print(f"catalogue matching: top-1 hits {top1_hits}/15")

    # Streaming ingest: 500 new tracks appear...
    new_tracks = gaussian_mixture(
        500, 192, n_clusters=60, cluster_std=1.0, center_spread=7.0, seed=99
    )
    index.add(new_tracks)
    print(f"after ingest: {index.num_points} fingerprints indexed")

    # ...and their snippets are immediately findable.
    new_ids = 8_000 + rng.choice(500, size=10, replace=False)
    all_points = np.vstack([catalogue, new_tracks])
    new_snippets = all_points[new_ids] + 0.3 * rng.standard_normal((10, 192))
    new_hits = sum(
        index.query(s, k=1).neighbors[0].id == t
        for s, t in zip(new_snippets, new_ids)
    )
    print(f"freshly ingested tracks: top-1 hits {new_hits}/10")


if __name__ == "__main__":
    main()
