"""Tests for the budget tuner and the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.data.generators import gaussian_mixture
from repro.eval.tuning import tune_budget


class TestTuneBudget:
    @pytest.fixture(scope="class")
    def data(self):
        return gaussian_mixture(
            800, 24, n_clusters=10, cluster_std=1.0, center_spread=8.0, seed=0
        )

    def test_reaches_easy_target(self, data):
        outcome = tune_budget(data, target_recall=0.5, k=5, n_validation=10,
                              l_spaces=4, k_per_space=6, seed=0)
        assert outcome.reached_target
        assert outcome.achieved_recall >= 0.5
        assert outcome.best_t in [4, 8, 16, 32, 64, 128]

    def test_returns_smallest_sufficient_t(self, data):
        outcome = tune_budget(data, target_recall=0.3, k=5, n_validation=10,
                              t_grid=[2, 64], l_spaces=4, k_per_space=6, seed=0)
        # An easy target should already be met by the small budget.
        assert outcome.best_t == 2

    def test_trace_records_sweep(self, data):
        outcome = tune_budget(data, target_recall=0.99, k=5, n_validation=8,
                              t_grid=[4, 16], l_spaces=4, k_per_space=6, seed=0)
        assert len(outcome.trace) >= 1
        for t, recall, candidates in outcome.trace:
            assert t in (4, 16)
            assert 0.0 <= recall <= 1.0
            assert candidates > 0

    def test_unreachable_target_reports_best(self, data):
        outcome = tune_budget(
            data[:50], target_recall=1.0, k=20, n_validation=5,
            t_grid=[1], l_spaces=2, k_per_space=3, seed=0,
        )
        assert isinstance(outcome.reached_target, bool)
        assert outcome.trace

    def test_validation(self, data):
        with pytest.raises(ValueError, match="target_recall"):
            tune_budget(data, target_recall=0.0)
        with pytest.raises(ValueError, match="t values"):
            tune_budget(data, t_grid=[0, 4])


class TestCLI:
    def test_info_command(self, capsys):
        assert main(["info", "--dataset", "audio", "--scale", "0.05",
                     "--queries", "5"]) == 0
        out = capsys.readouterr().out
        assert "relative contrast" in out
        assert "rho*" in out

    def test_bench_command(self, capsys):
        assert main(["bench", "--dataset", "audio", "--scale", "0.05",
                     "--queries", "5", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "DBLSH" in out
        assert "LinearScan" in out

    def test_tune_command(self, capsys):
        code = main(["tune", "--dataset", "audio", "--scale", "0.05",
                     "--queries", "5", "--k", "5", "--target-recall", "0.2"])
        out = capsys.readouterr().out
        assert "Budget sweep" in out
        assert code in (0, 1)

    def test_fvecs_source(self, tmp_path, capsys):
        from repro.data.loaders import write_fvecs

        rng = np.random.default_rng(0)
        path = str(tmp_path / "points.fvecs")
        write_fvecs(path, rng.standard_normal((300, 16)).astype(np.float32))
        assert main(["info", "--fvecs", path, "--queries", "5"]) == 0
        out = capsys.readouterr().out
        assert "300" in out or "295" in out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--dataset", "imagenet"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSaveLoadCLI:
    def test_save_then_load_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "cli_index.npz")
        assert main(["save", "--dataset", "audio", "--scale", "0.05",
                     "--t", "64", "--out", path]) == 0
        out = capsys.readouterr().out
        assert "saved to" in out
        assert main(["load", "--index", path, "--queries", "5", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "zero rebuild" in out
        assert "smoke check" in out

    def test_save_sharded_then_load(self, tmp_path, capsys):
        path = str(tmp_path / "cli_sharded.npz")
        assert main(["save", "--dataset", "audio", "--scale", "0.05",
                     "--t", "64", "--shards", "3", "--out", path]) == 0
        assert main(["load", "--index", path, "--queries", "5", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "kind=sharded" in out

    def test_load_describe_only(self, tmp_path, capsys):
        path = str(tmp_path / "cli_index.npz")
        main(["save", "--dataset", "audio", "--scale", "0.05", "--t", "16",
              "--out", path])
        capsys.readouterr()
        assert main(["load", "--index", path, "--queries", "0"]) == 0
        out = capsys.readouterr().out
        assert "DBLSH" in out and "smoke check" not in out

    def test_bench_with_shards(self, capsys):
        assert main(["bench", "--dataset", "audio", "--scale", "0.05",
                     "--queries", "5", "--k", "5", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "Sharded-DB-LSH" in out

    def test_save_appends_npz_suffix(self, tmp_path, capsys):
        stem = str(tmp_path / "noext")
        assert main(["save", "--dataset", "audio", "--scale", "0.05",
                     "--t", "16", "--out", stem]) == 0
        out = capsys.readouterr().out
        assert f"saved to {stem}.npz" in out
        assert main(["load", "--index", stem + ".npz", "--queries", "0"]) == 0
