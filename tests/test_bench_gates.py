"""Tier-1 coverage for tools/check_bench_gates.py.

The gate checker is first-class code now (it used to be an inline CI
heredoc), so it gets what every other module gets: tests that feed it
known-good and deliberately broken smoke reports and pin down exactly
which violations it raises — plus the file-level failure modes (missing
file, corrupt JSON, schema drift) that an inline heredoc handled with a
bare traceback.
"""

from __future__ import annotations

import copy
import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import check_bench_gates as gates  # noqa: E402

# ----------------------------------------------------------------------
# Minimal passing fixtures: one per benchmark, just the gated fields.
# ----------------------------------------------------------------------

GOOD = {
    "BENCH_query_engine.smoke.json": {
        "regimes": {
            "easy": {"neighbors_identical": True},
            "hard": {"neighbors_identical": True},
        },
    },
    "BENCH_sharding.smoke.json": {
        "unsharded_recall": 0.9,
        "shards": {
            "2": {"topk_sets_match_unsharded": True, "recall": 0.9},
            "4": {"topk_sets_match_unsharded": False, "recall": 0.95},
        },
        "snapshot": {"results_identical_after_reload": True},
    },
    "BENCH_build.smoke.json": {
        "single": {"1000": {"answers_identical": True}},
        "sharded": {"2": {"process_matches": True}},
        "snapshot": {"results_identical_after_reload": True},
    },
    "BENCH_serve.smoke.json": {
        "workers": {
            "1": {"server_matches_inprocess": True,
                  "server_sets_match_unsharded": True},
        },
        "workers_budget_split": {
            "1": {"server_matches_inprocess": True},
        },
        "concurrent_clients": {
            "2": {"matches_inprocess": True},
        },
        "supervision": {
            "all_answers_bit_identical_to_a_generation": True,
            "worker_restarts": 1,
            "post_reload_matches_new_snapshot": True,
            "no_orphans_after_close": True,
            "failures": [],
        },
    },
    "BENCH_mutations.smoke.json": {
        "mutations": {
            "mutation_parity_vs_refit": True,
            "post_compaction_parity_vs_refit": True,
            "answers_stable_across_compaction": True,
        },
        "recovery": {
            "killed_with_exitcode": 9,
            "recovered_exactly_acked": True,
        },
        "group_commit": {
            "speedup": 7.5,
            "group_window_ms": 2.0,
            "fsync_delay_ms": 2.0,
            "grouped_qps": 3000.0,
            "ungrouped_qps": 400.0,
        },
    },
    "BENCH_http.smoke.json": {
        "grid": {
            "0": {"1": {"matches_inprocess": True, "failures": []}},
            "2": {"4": {"matches_inprocess": True, "failures": []}},
        },
        "overload": {
            "sheds": 3,
            "dropped_inflight": 0,
            "dropped": [],
            "completed_match_inprocess": True,
        },
    },
    "BENCH_chaos.smoke.json": {
        "invariants": {
            "all_requests_terminated": True,
            "undetermined_requests": [],
            "answers_bit_identical": True,
            "mismatches": [],
            "server_ready_after_each_iteration": True,
            "not_ready": [],
            "deadline_overruns": [],
            "acked_mutations_survived": True,
            "wal_failures": [],
            "zero_orphans": True,
            "orphan_pids": [],
        },
        "counters": {
            "watchdog_kills": 2,
            "deadline_hits": 3,
            "supervision_restarts": 4,
            "wal_kills": 1,
        },
    },
    "BENCH_memory.smoke.json": {
        "zero_copy": {
            "arena_alloc_fraction": 0.05,
            "npz_alloc_fraction": 1.1,
            "arena_is_mapped": True,
        },
        "parity": {
            "v2_v3_identical": True,
            "served_matches_inprocess": True,
        },
        "sharing": {
            "available": True,
            "servers": 4,
            "all_workers_mapped": True,
            "pss_over_rss": 0.25,
        },
    },
}

#: (file, mutation breaking one gate, substring the violation must name)
BREAKS = [
    ("BENCH_query_engine.smoke.json",
     lambda r: r["regimes"]["hard"].update(neighbors_identical=False),
     "engines diverged"),
    ("BENCH_sharding.smoke.json",
     lambda r: r["shards"]["4"].update(recall=0.5),
     "worse neighbors"),
    ("BENCH_sharding.smoke.json",
     lambda r: r["snapshot"].update(results_identical_after_reload=False),
     "save/load"),
    ("BENCH_build.smoke.json",
     lambda r: r["single"]["1000"].update(answers_identical=False),
     "builders diverged"),
    ("BENCH_build.smoke.json",
     lambda r: r["sharded"]["2"].update(process_matches=False),
     "process-parallel"),
    ("BENCH_serve.smoke.json",
     lambda r: r["workers"]["1"].update(server_matches_inprocess=False),
     "in-process snapshot"),
    ("BENCH_serve.smoke.json",
     lambda r: r["workers_budget_split"]["1"].update(
         server_matches_inprocess=False),
     "budget=split"),
    ("BENCH_serve.smoke.json",
     lambda r: r["concurrent_clients"]["2"].update(matches_inprocess=False),
     "concurrent answers"),
    ("BENCH_serve.smoke.json",
     lambda r: r["supervision"].update(worker_restarts=0),
     "never exercised a restart"),
    ("BENCH_serve.smoke.json",
     lambda r: r["supervision"].update(no_orphans_after_close=False),
     "outlived close()"),
    ("BENCH_mutations.smoke.json",
     lambda r: r["mutations"].update(mutation_parity_vs_refit=False),
     "refit"),
    ("BENCH_mutations.smoke.json",
     lambda r: r["recovery"].update(killed_with_exitcode=1),
     "exited 1"),
    ("BENCH_mutations.smoke.json",
     lambda r: r["recovery"].update(recovered_exactly_acked=False),
     "lost or invented"),
    ("BENCH_mutations.smoke.json",
     lambda r: r["group_commit"].update(speedup=1.2),
     "only x1.2"),
    ("BENCH_mutations.smoke.json",
     lambda r: r["group_commit"].update(group_window_ms=0.5),
     "0.5ms window"),
    ("BENCH_http.smoke.json",
     lambda r: r["grid"]["2"]["4"].update(matches_inprocess=False),
     "window=2ms clients=4"),
    ("BENCH_http.smoke.json",
     lambda r: r["overload"].update(sheds=0),
     "admission control untested"),
    ("BENCH_http.smoke.json",
     lambda r: r["overload"].update(dropped_inflight=2, dropped=["x", "y"]),
     "2 admitted requests dropped"),
    ("BENCH_http.smoke.json",
     lambda r: r["overload"].update(completed_match_inprocess=False),
     "completed answers"),
    ("BENCH_chaos.smoke.json",
     lambda r: r["invariants"].update(
         all_requests_terminated=False,
         undetermined_requests=["iter3/hang-fail: untyped KeyError"]),
     "never terminated or failed untyped"),
    ("BENCH_chaos.smoke.json",
     lambda r: r["invariants"].update(
         server_ready_after_each_iteration=False,
         not_ready=["iter5/worker-die: post-fault probe did not answer"]),
     "did not return to ready"),
    ("BENCH_chaos.smoke.json",
     lambda r: r["invariants"].update(
         deadline_overruns=["iter2/hang-fail: typed failure took 9.00s"]),
     "typed failure took"),
    ("BENCH_chaos.smoke.json",
     lambda r: r["invariants"].update(zero_orphans=False,
                                      orphan_pids=[4242]),
     "orphan processes"),
    ("BENCH_chaos.smoke.json",
     lambda r: r["invariants"].update(
         acked_mutations_survived=False,
         wal_failures=["iter7/wal-kill: acked insert 700 lost"]),
     "acked mutations lost"),
    ("BENCH_chaos.smoke.json",
     lambda r: r["counters"].update(watchdog_kills=0),
     "watchdog never killed"),
    ("BENCH_memory.smoke.json",
     lambda r: r["zero_copy"].update(arena_alloc_fraction=0.5),
     "the arena load is copying"),
    ("BENCH_memory.smoke.json",
     lambda r: r["zero_copy"].update(npz_alloc_fraction=0.01),
     "probe is not measuring copies"),
    ("BENCH_memory.smoke.json",
     lambda r: r["parity"].update(v2_v3_identical=False),
     "answered differently"),
    ("BENCH_memory.smoke.json",
     lambda r: r["parity"].update(served_matches_inprocess=False),
     "served arena answers"),
    ("BENCH_memory.smoke.json",
     lambda r: r["sharing"].update(pss_over_rss=0.98),
     "physical pages are not shared"),
    ("BENCH_memory.smoke.json",
     lambda r: r["sharing"].update(all_workers_mapped=False),
     "private copy"),
]


def test_every_benchmark_has_a_checker_and_a_good_fixture():
    assert set(GOOD) == set(gates.CHECKERS)


def test_good_fixtures_pass_every_checker():
    for name, report in GOOD.items():
        assert gates.CHECKERS[name](report) == [], name


@pytest.mark.parametrize(
    "name,mutate,expected", BREAKS,
    ids=[f"{n.split('.')[0][6:]}-{s[:18]}" for n, _, s in BREAKS],
)
def test_broken_fixture_raises_the_named_violation(name, mutate, expected):
    report = copy.deepcopy(GOOD[name])
    mutate(report)
    violations = gates.CHECKERS[name](report)
    assert violations, f"{name}: broken report produced no violation"
    assert any(expected in v for v in violations), violations


def test_memory_sharing_gate_skipped_when_smaps_unavailable():
    """Platforms without smaps record available=False; the sharing gate
    must skip rather than fail on counters that are all zero."""
    report = copy.deepcopy(GOOD["BENCH_memory.smoke.json"])
    report["sharing"].update(
        available=False, all_workers_mapped=False, pss_over_rss=None
    )
    assert gates.CHECKERS["BENCH_memory.smoke.json"](report) == []


def test_one_break_means_exactly_one_violation():
    """Gates are independent: breaking one flag does not cascade."""
    report = copy.deepcopy(GOOD["BENCH_serve.smoke.json"])
    report["supervision"]["worker_restarts"] = 0
    assert len(gates.CHECKERS["BENCH_serve.smoke.json"](report)) == 1


def test_multiple_breaks_are_all_reported():
    report = copy.deepcopy(GOOD["BENCH_http.smoke.json"])
    report["overload"].update(sheds=0, completed_match_inprocess=False)
    report["grid"]["0"]["1"]["matches_inprocess"] = False
    assert len(gates.CHECKERS["BENCH_http.smoke.json"](report)) == 3


# ----------------------------------------------------------------------
# File-level behavior (check_file + main)
# ----------------------------------------------------------------------


def _write(tmp_path, name, payload) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def test_check_file_passes_and_fails_on_disk(tmp_path):
    good = _write(tmp_path, "BENCH_http.smoke.json",
                  GOOD["BENCH_http.smoke.json"])
    assert gates.check_file(good) == []
    broken = copy.deepcopy(GOOD["BENCH_http.smoke.json"])
    broken["overload"]["sheds"] = 0
    bad = _write(tmp_path, "BENCH_http.smoke.json", broken)
    violations = gates.check_file(bad)
    assert len(violations) == 1
    assert violations[0].startswith("BENCH_http.smoke.json:")


def test_check_file_missing_corrupt_and_unknown(tmp_path):
    missing = gates.check_file(str(tmp_path / "BENCH_serve.smoke.json"))
    assert missing and "missing" in missing[0]
    corrupt = tmp_path / "BENCH_serve.smoke.json"
    corrupt.write_text("{not json")
    assert "unparseable" in gates.check_file(str(corrupt))[0]
    unknown = gates.check_file(str(tmp_path / "BENCH_novel.smoke.json"))
    assert "no gate checker" in unknown[0]


def test_check_file_reports_schema_drift_not_traceback(tmp_path):
    path = _write(tmp_path, "BENCH_serve.smoke.json", {"workers": {}})
    violations = gates.check_file(path)
    assert violations and "drifted" in violations[0]


def test_main_exit_codes(tmp_path, capsys):
    paths = [_write(tmp_path, name, report) for name, report in GOOD.items()]
    assert gates.main(paths) == 0
    assert f"bench gates OK ({len(GOOD)} file(s))" in capsys.readouterr().out

    broken = copy.deepcopy(GOOD["BENCH_mutations.smoke.json"])
    broken["recovery"]["recovered_exactly_acked"] = False
    paths[-3] = _write(tmp_path, "BENCH_mutations.smoke.json", broken)
    assert gates.main(paths) == 1
    err = capsys.readouterr().err
    assert "GATE FAILED" in err and "lost or invented" in err


def test_main_default_set_requires_all_files(tmp_path, monkeypatch, capsys):
    """No arguments = the full CI set; absent files are violations."""
    monkeypatch.chdir(tmp_path)
    assert gates.main([]) == 1
    assert capsys.readouterr().err.count("missing") == len(gates.CHECKERS)
