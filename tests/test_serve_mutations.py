"""Crash-recovery acceptance for mutable serving (repro.serve.mutable).

The invariant under test — the PR's headline contract — is: after a
SIGKILL-equivalent death at *any* injected point (mid-WAL-append, before
/ after a compaction's snapshot flip, after its log swap), a restarted
server serves **exactly the acked mutations**: every acked insert/delete
is visible, no unacked mutation is invented (the one fsync'd-but-unacked
record a ``post-fsync`` kill can leave is the only tolerated extra, and
only for that fault).

The dying server runs in a spawned child process driven over a pipe;
faults are armed through the ``REPRO_WAL_FAULT`` / ``REPRO_COMPACT_FAULT``
environment contracts of :mod:`repro.io.wal` and
:mod:`repro.serve.mutable`.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro import DBLSH
from repro.data.generators import gaussian_mixture
from repro.io import WALError, WriteAheadLog, read_header, save_index
from repro.serve import MutableSnapshotServer, ReadOnlyError

N, DIM = 400, 12
PARAMS = dict(
    c=1.5, l_spaces=3, k_per_space=6, t=32, seed=0, auto_initial_radius=True
)


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(N, DIM, n_clusters=5, seed=0)
    inserts = data[:8] + 60.0  # far from the data: unambiguous top-1 hits
    return data, inserts


@pytest.fixture
def snapshot(tmp_path, workload):
    data, _ = workload
    path = str(tmp_path / "base.npz")
    save_index(DBLSH(**PARAMS).fit(data), path)
    return path


def _mutation_driver(snapshot, wal, env, conn):
    """Child-process serve loop (module-level for spawn picklability)."""
    os.environ.update(env)
    server = MutableSnapshotServer(
        snapshot, wal_path=wal, compact_threshold=0, mp_context="fork",
        start_timeout=120.0,
    )
    server.start()
    conn.send(("ready", None))
    while True:
        message = conn.recv()
        kind = message[0]
        try:
            if kind == "insert":
                value = server.insert(np.asarray(message[1]))
            elif kind == "delete":
                value = server.delete(int(message[1]))
            elif kind == "compact":
                value = server.compact()
            elif kind == "stop":
                server.close()
                conn.send(("ok", None))
                return
            else:
                raise ValueError(f"unknown driver verb {kind!r}")
        except Exception as exc:  # surfaced to the test, not swallowed
            conn.send(("error", repr(exc)))
        else:
            conn.send(("ok", value))


class _Child:
    """Drive a mutable serve in a spawned child; record what it acks."""

    def __init__(self, snapshot, wal, env=None):
        ctx = multiprocessing.get_context("spawn")
        self.conn, child_end = ctx.Pipe()
        self.process = ctx.Process(
            target=_mutation_driver,
            args=(snapshot, wal, env or {}, child_end),
        )
        self.process.start()
        child_end.close()
        kind, _ = self.conn.recv()
        assert kind == "ready"
        self.acked_inserts = []
        self.acked_deletes = []

    def call(self, *message):
        """Send one verb; returns the ack value, or None if the child died."""
        self.conn.send(message)
        try:
            kind, value = self.conn.recv()
        except EOFError:
            return None  # the armed fault killed the child mid-verb
        assert kind == "ok", value
        if message[0] == "insert":
            self.acked_inserts.append((value, np.asarray(message[1])))
        elif message[0] == "delete" and value:
            self.acked_deletes.append(int(message[1]))
        return value

    def join_dead(self, expected_exitcode=9):
        self.process.join(60)
        assert self.process.exitcode == expected_exitcode

    def stop(self):
        self.call("stop")
        self.process.join(30)


def _assert_exactly_acked(snapshot, wal, child, *, tolerate_inflight=0):
    """Restart from disk and check the served state == the acked mutations."""
    server = MutableSnapshotServer(
        snapshot, wal_path=wal, compact_threshold=0, mp_context="fork",
    )
    server.start()
    try:
        info = server.status()
        acked_ids = {pid for pid, _ in child.acked_inserts}
        recovered = info["delta_rows"] + (info["num_points"] - N)
        assert len(acked_ids) <= recovered <= len(acked_ids) + tolerate_inflight
        # Every acked insert answers as its own exact nearest neighbor.
        for pid, point in child.acked_inserts:
            result = server.query(point, k=1)
            assert result.ids == [pid]
            assert result.distances[0] == pytest.approx(0.0)
        # Every acked delete stays deleted (idempotent re-delete: False).
        for pid in child.acked_deletes:
            assert pid not in server.query(np.zeros(DIM), k=N).ids
            assert server.delete(pid) is False
    finally:
        server.close()


class TestKillMidAppend:
    def test_torn_append_recovers_exactly_acked(self, snapshot, tmp_path,
                                                workload):
        _, inserts = workload
        wal = str(tmp_path / "m.wal")
        # Appends 0,1 (insert, delete) ack; append 2 dies half-written.
        child = _Child(snapshot, wal, env={"REPRO_WAL_FAULT": "torn:2"})
        assert child.call("insert", inserts[0]) == N
        assert child.call("delete", 3) is True
        assert child.call("insert", inserts[1]) is None  # killed mid-append
        child.join_dead()
        _assert_exactly_acked(snapshot, wal, child)

    def test_pre_append_kill_loses_nothing_acked(self, snapshot, tmp_path,
                                                 workload):
        _, inserts = workload
        wal = str(tmp_path / "m.wal")
        child = _Child(snapshot, wal, env={"REPRO_WAL_FAULT": "pre-append:3"})
        for i in range(3):
            assert child.call("insert", inserts[i]) == N + i
        assert child.call("insert", inserts[3]) is None
        child.join_dead()
        _assert_exactly_acked(snapshot, wal, child)

    def test_post_fsync_kill_may_keep_the_inflight_record(
        self, snapshot, tmp_path, workload
    ):
        _, inserts = workload
        wal = str(tmp_path / "m.wal")
        child = _Child(snapshot, wal, env={"REPRO_WAL_FAULT": "post-fsync:1"})
        assert child.call("insert", inserts[0]) == N
        assert child.call("insert", inserts[1]) is None  # durable, unacked
        child.join_dead()
        # The durable-but-unacked insert is the classic WAL ambiguity:
        # it may legitimately survive, but nothing acked may be lost and
        # nothing else may be invented.
        _assert_exactly_acked(snapshot, wal, child, tolerate_inflight=1)


class TestKillMidCompaction:
    def _mutate(self, child, inserts):
        assert child.call("insert", inserts[0]) == N
        assert child.call("insert", inserts[1]) == N + 1
        assert child.call("delete", 7) is True

    @pytest.mark.parametrize("point", [
        "pre-snapshot-replace", "post-snapshot-replace", "post-wal-replace",
    ])
    def test_kill_at_compaction_point(self, snapshot, tmp_path, workload,
                                      point):
        _, inserts = workload
        wal = str(tmp_path / "m.wal")
        uid_before = read_header(snapshot)["uid"]
        child = _Child(snapshot, wal, env={"REPRO_COMPACT_FAULT": point})
        self._mutate(child, inserts)
        assert child.call("compact") is None  # killed at the armed point
        child.join_dead()

        uid_after = read_header(snapshot)["uid"]
        if point == "pre-snapshot-replace":
            assert uid_after == uid_before  # old generation intact
        else:
            assert uid_after != uid_before  # new generation landed
            assert read_header(snapshot)["parent_uid"] == uid_before
        _assert_exactly_acked(snapshot, wal, child)

    def test_recovery_rebinds_a_parent_bound_wal(self, snapshot, tmp_path,
                                                 workload):
        # A crash between the snapshot flip and the log swap leaves the
        # WAL bound to the parent generation; recovery must accept it,
        # replay idempotently, and rebind it to the live uid.
        _, inserts = workload
        wal = str(tmp_path / "m.wal")
        child = _Child(
            snapshot, wal, env={"REPRO_COMPACT_FAULT": "post-snapshot-replace"}
        )
        self._mutate(child, inserts)
        assert child.call("compact") is None
        child.join_dead()
        live_uid = read_header(snapshot)["uid"]
        with WriteAheadLog.open(wal) as stale:
            assert stale.snapshot_uid != live_uid
        _assert_exactly_acked(snapshot, wal, child)
        with WriteAheadLog.open(wal) as rebound:
            assert rebound.snapshot_uid == live_uid


class TestRecoveryGuards:
    def test_wal_for_another_snapshot_refused(self, snapshot, tmp_path,
                                              workload):
        data, _ = workload
        wal = str(tmp_path / "m.wal")
        server = MutableSnapshotServer(snapshot, wal_path=wal,
                                       compact_threshold=0, mp_context="fork")
        server.start()
        server.insert(data[0] + 9.0)
        server.close()
        # Overwrite the snapshot with an unrelated build (fresh uid, no
        # lineage): replaying the old log onto it would be corruption.
        save_index(DBLSH(**PARAMS).fit(data[:200]), snapshot)
        fresh = MutableSnapshotServer(snapshot, wal_path=wal,
                                      compact_threshold=0, mp_context="fork")
        with pytest.raises(WALError, match="refusing to replay"):
            fresh.start()
        assert not fresh.serving  # the refused start left no live pool

    def test_read_only_mode_refuses_mutations(self, snapshot):
        server = MutableSnapshotServer(snapshot, read_only=True,
                                       mp_context="fork")
        server.start()
        try:
            with pytest.raises(ReadOnlyError, match="read-only"):
                server.insert(np.zeros(DIM))
            with pytest.raises(ReadOnlyError, match="read-only"):
                server.delete(0)
            with pytest.raises(ReadOnlyError, match="read-only"):
                server.compact()
            # Read-only serving never creates a WAL next to the snapshot.
            assert not os.path.exists(snapshot + ".wal")
            assert server.status()["read_only"] is True
        finally:
            server.close()

    def test_status_reports_mutation_state(self, snapshot, tmp_path,
                                           workload):
        _, inserts = workload
        wal = str(tmp_path / "m.wal")
        server = MutableSnapshotServer(snapshot, wal_path=wal,
                                      compact_threshold=0, mp_context="fork")
        server.start()
        try:
            server.insert(inserts[0])
            server.insert(inserts[1])
            server.delete(5)
            info = server.status()
            assert info["mutable"] is True
            assert info["delta_rows"] == 2
            assert info["tombstones"] == 1
            assert info["live_points"] == N + 2 - 1
            assert info["next_id"] == N + 2
            wal_disk_bytes = sum(
                os.path.getsize(os.path.join(wal, name))
                for name in os.listdir(wal)
                if name.startswith("wal.") and name.endswith(".seg")
            )
            assert info["wal_bytes"] == wal_disk_bytes
            assert info["wal_segments"] >= 1
            assert info["compactions"] == 0
            out = server.compact()
            info = server.status()
            assert info["compactions"] == 1
            assert info["last_compaction_uid"] == out["generation_uid"]
            assert info["delta_rows"] == 0 and info["tombstones"] == 0
            assert info["live_points"] == N + 1
        finally:
            server.close()

    def test_concurrent_inserts_share_group_fsyncs_and_recover(
        self, snapshot, tmp_path
    ):
        """Concurrent mutators inside the group-commit window amortize
        fsyncs (groups < records) and every acked insert survives a
        clean restart bit-exactly."""
        import threading

        wal = str(tmp_path / "m.wal")
        server = MutableSnapshotServer(
            snapshot, wal_path=wal, compact_threshold=0,
            group_commit_ms=5.0, mp_context="fork",
        )
        server.start()
        points = {i: np.full(DIM, 80.0 + 3.0 * i) for i in range(24)}
        acked = {}
        lock = threading.Lock()

        def insert(i):
            pid = server.insert(points[i])
            with lock:
                acked[pid] = points[i]

        try:
            threads = [
                threading.Thread(target=insert, args=(i,)) for i in points
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(acked) == list(range(N, N + 24))
            info = server.status()
            assert info["wal_groups_committed"] < 24  # fsyncs were shared
            assert info["wal_mean_group_records"] > 1.0
        finally:
            server.close()
        # Restart: every concurrently-acked insert is served exactly.
        back = MutableSnapshotServer(
            snapshot, wal_path=wal, compact_threshold=0, mp_context="fork",
        )
        back.start()
        try:
            assert back.status()["delta_rows"] == 24
            for pid, point in acked.items():
                result = back.query(point, k=1)
                assert result.ids == [pid]
                assert result.distances[0] == pytest.approx(0.0)
        finally:
            back.close()

    def test_auto_compaction_triggers_at_threshold(self, snapshot, tmp_path,
                                                   workload):
        data, _ = workload
        wal = str(tmp_path / "m.wal")
        server = MutableSnapshotServer(snapshot, wal_path=wal,
                                      compact_threshold=4, mp_context="fork")
        server.start()
        try:
            for i in range(4):
                server.insert(data[i] + 50.0 + i)
            deadline = 30.0
            import time

            waited = 0.0
            while server.status()["compactions"] == 0 and waited < deadline:
                time.sleep(0.1)
                waited += 0.1
            info = server.status()
            assert info["compactions"] >= 1
            assert info["delta_rows"] < 4
            # The folded inserts still answer exactly.
            result = server.query(data[0] + 50.0, k=1)
            assert result.ids == [N]
        finally:
            server.close()


class TestAdaptiveCompaction:
    """The overhead/bytes-driven scheduler replacing the fixed count."""

    def test_wal_bytes_trigger_fires_and_is_reported(self, snapshot, tmp_path,
                                                     workload):
        data, _ = workload
        wal = str(tmp_path / "m.wal")
        # Count trigger far away; the byte budget trips after a few
        # ~120-byte insert records.
        server = MutableSnapshotServer(
            snapshot, wal_path=wal, compact_threshold=100_000,
            compact_wal_bytes=700, compact_overhead=0.0,
            mp_context="fork",
        )
        server.start()
        try:
            for i in range(8):
                server.insert(data[i] + 50.0 + i)
            import time

            waited = 0.0
            while server.status()["compactions"] == 0 and waited < 30.0:
                time.sleep(0.1)
                waited += 0.1
            info = server.status()
            assert info["compactions"] >= 1
            assert info["last_compaction_trigger"] == "wal-bytes"
            assert info["wal_bytes"] < 700 + 200  # rolled onto a checkpoint
        finally:
            server.close()

    def test_sweep_overhead_policy(self, snapshot, tmp_path, workload):
        """The policy function itself: the overhead trigger needs both a
        hot EMA and enough pending work; count stays the first resort."""
        data, _ = workload
        wal = str(tmp_path / "m.wal")
        server = MutableSnapshotServer(
            snapshot, wal_path=wal, compact_threshold=100_000,
            compact_wal_bytes=0, compact_overhead=0.5,
            group_commit_ms=0.0, mp_context="fork",
        )
        server.start()
        try:
            with server._mutation_lock:
                assert server._compaction_due() is None
            # A hot EMA with too little pending work must not fire.
            with server._mutation_lock:
                server._sweep_overhead_ema = 0.9
                server._overhead_samples = 10
                assert server._compaction_due() is None
            for i in range(64):
                server.insert(data[i % len(data)] + 70.0 + i)
            with server._mutation_lock:
                server._sweep_overhead_ema = 0.9
                server._overhead_samples = 10
                assert server._compaction_due() == "sweep-overhead"
                # A cool EMA never fires regardless of pending count.
                server._sweep_overhead_ema = 0.1
                assert server._compaction_due() is None
            # Live queries actually feed the EMA.
            server.query_batch(data[:4], k=2)
            assert server.status()["sweep_overhead_ema"] >= 0.0
            assert server._overhead_samples >= 1
        finally:
            server.close()

    def test_compact_threshold_zero_disables_every_trigger(
        self, snapshot, tmp_path, workload
    ):
        data, _ = workload
        wal = str(tmp_path / "m.wal")
        server = MutableSnapshotServer(
            snapshot, wal_path=wal, compact_threshold=0,
            compact_wal_bytes=1, compact_overhead=0.01,
            group_commit_ms=0.0, mp_context="fork",
        )
        server.start()
        try:
            for i in range(6):
                server.insert(data[i] + 90.0)
            with server._mutation_lock:
                assert server._compaction_due() is None
            assert server.status()["compactions"] == 0
        finally:
            server.close()
