"""Public API surface tests: imports, exports, and version metadata.

A downstream user's first contact with the library is ``from repro import
DBLSH`` and the package-level ``__all__`` lists; these tests pin that
surface so refactors cannot silently break it.
"""

from __future__ import annotations

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.1.0"

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_dblsh_importable_from_top(self):
        from repro import DBLSH, Neighbor, QueryResult, QueryStats

        assert callable(DBLSH)
        assert all(callable(t) for t in (Neighbor, QueryResult, QueryStats))


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.core",
        "repro.hashing",
        "repro.index",
        "repro.io",
        "repro.serve",
        "repro.baselines",
        "repro.data",
        "repro.eval",
        "repro.utils",
    ],
)
def test_subpackage_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} must define __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_thirteen_plus_methods_available():
    """The full §VI-A competitor roster plus extensions must be importable."""
    from repro import baselines

    expected = {
        "LinearScan", "FBLSH", "E2LSH", "MultiProbeLSH", "LSBForest",
        "C2LSH", "QALSH", "R2LSH", "VHP", "PMLSH", "SRS", "LCCSLSH", "ILSH",
    }
    assert expected <= set(baselines.__all__)


def test_every_public_module_has_docstring():
    import pkgutil

    import repro

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        assert module.__doc__, f"{info.name} lacks a module docstring"
