"""Tests for the uniform grid (static LSH hash-table) index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.index.grid import GridIndex


def brute_window(points, w_low, w_high):
    mask = np.all(points >= w_low, axis=1) & np.all(points <= w_high, axis=1)
    return set(np.flatnonzero(mask).tolist())


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one point"):
            GridIndex(np.zeros((0, 2)), cell_width=1.0)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError, match="cell_width"):
            GridIndex(np.zeros((2, 2)), cell_width=0.0)

    def test_cell_partition_is_total(self, rng):
        points = rng.uniform(-5, 5, size=(200, 2))
        grid = GridIndex(points, cell_width=1.5)
        total = sum(len(ids) for ids in grid.cells.values())
        assert total == 200
        assert len(grid) == 200
        assert grid.num_cells >= 1


class TestCellLookup:
    def test_point_finds_its_own_cell(self, rng):
        points = rng.uniform(-5, 5, size=(100, 3))
        grid = GridIndex(points, cell_width=2.0)
        for i in [0, 17, 99]:
            assert i in grid.cell_lookup(points[i]).tolist()

    def test_key_of_matches_floor(self):
        grid = GridIndex(np.array([[0.5, -0.5]]), cell_width=1.0)
        assert grid.key_of(np.array([2.3, -1.2])) == (2, -2)

    def test_wrong_dim(self):
        grid = GridIndex(np.zeros((1, 2)), cell_width=1.0)
        with pytest.raises(ValueError, match="dimension"):
            grid.key_of(np.zeros(3))

    def test_lookup_counts_probes(self, rng):
        grid = GridIndex(rng.uniform(0, 1, (10, 2)), cell_width=0.5)
        before = grid.cell_probes
        grid.cell_lookup(np.array([0.2, 0.2]))
        assert grid.cell_probes == before + 1


class TestWindowQuery:
    def test_matches_brute_force(self, rng):
        points = rng.uniform(-4, 4, size=(300, 2))
        grid = GridIndex(points, cell_width=1.0)
        for _ in range(20):
            center = rng.uniform(-4, 4, size=2)
            half = rng.uniform(0.2, 3.0, size=2)
            got = set(grid.window_query(center - half, center + half).tolist())
            assert got == brute_window(points, center - half, center + half)

    def test_inverted_window_is_empty(self, rng):
        grid = GridIndex(rng.uniform(0, 1, (20, 2)), cell_width=0.5)
        got = grid.window_query(np.array([1.0, 1.0]), np.array([0.0, 0.0]))
        assert got.size == 0

    def test_negative_coordinates(self):
        points = np.array([[-3.7, -2.2], [-0.1, -0.1], [2.5, 3.5]])
        grid = GridIndex(points, cell_width=1.0)
        got = grid.window_query(np.array([-4.0, -3.0]), np.array([0.0, 0.0]))
        assert sorted(got.tolist()) == [0, 1]

    def test_huge_window_uses_occupied_cell_scan(self, rng):
        """A window spanning astronomically many cells must not enumerate
        them (the occupied-cell fallback) and still be exact."""
        points = rng.uniform(-1, 1, size=(100, 6))
        grid = GridIndex(points, cell_width=0.01)  # ~200 cells per dim
        before = grid.cell_probes
        got = grid.window_query(np.full(6, -1e6), np.full(6, 1e6))
        assert sorted(got.tolist()) == list(range(100))
        # Probes bounded by the number of occupied cells, not the 1e12+
        # cells the window overlaps.
        assert grid.cell_probes - before <= grid.num_cells

    def test_huge_window_partial_overlap_exact(self, rng):
        points = rng.uniform(-5, 5, size=(200, 4))
        grid = GridIndex(points, cell_width=0.05)
        w_low = np.array([-1e5, -1e5, 0.0, -1e5])
        w_high = np.array([1e5, 1e5, 1e5, 1e5])
        got = set(grid.window_query(w_low, w_high).tolist())
        assert got == brute_window(points, w_low, w_high)
