"""Tests for the B+-tree over 1-D projections (QALSH-family substrate)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bplustree import BPlusTree

float_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one key"):
            BPlusTree(np.array([]))

    def test_rejects_small_order(self):
        with pytest.raises(ValueError, match="order"):
            BPlusTree(np.array([1.0]), order=2)

    def test_rejects_value_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            BPlusTree(np.array([1.0, 2.0]), values=np.array([0]))

    def test_count_and_minmax(self, rng):
        keys = rng.standard_normal(500)
        tree = BPlusTree(keys, order=16)
        assert len(tree) == 500
        assert tree.min_key() == pytest.approx(keys.min())
        assert tree.max_key() == pytest.approx(keys.max())
        assert tree.height >= 2

    def test_single_key(self):
        tree = BPlusTree(np.array([3.5]), values=np.array([42]))
        assert tree.range_query(3.0, 4.0).tolist() == [42]
        assert tree.height == 1


class TestRangeQuery:
    def test_matches_numpy_reference(self, rng):
        keys = rng.standard_normal(400)
        tree = BPlusTree(keys, order=8)
        for _ in range(25):
            lo, hi = np.sort(rng.standard_normal(2))
            got = sorted(tree.range_query(lo, hi).tolist())
            expected = sorted(np.flatnonzero((keys >= lo) & (keys <= hi)).tolist())
            assert got == expected

    def test_inverted_range_is_empty(self):
        tree = BPlusTree(np.arange(10, dtype=float))
        assert tree.range_query(5.0, 4.0).size == 0

    def test_closed_interval_boundaries(self):
        tree = BPlusTree(np.array([1.0, 2.0, 3.0]))
        assert sorted(tree.range_query(1.0, 3.0).tolist()) == [0, 1, 2]
        assert sorted(tree.range_query(2.0, 2.0).tolist()) == [1]

    def test_range_count(self, rng):
        keys = rng.uniform(0, 10, 200)
        tree = BPlusTree(keys)
        assert tree.range_count(2.0, 5.0) == int(((keys >= 2.0) & (keys <= 5.0)).sum())

    def test_duplicate_keys(self):
        keys = np.array([1.0, 1.0, 1.0, 2.0])
        tree = BPlusTree(keys, order=4)
        assert sorted(tree.range_query(1.0, 1.0).tolist()) == [0, 1, 2]

    def test_custom_values(self):
        tree = BPlusTree(np.array([5.0, 1.0]), values=np.array([100, 200]))
        assert tree.range_query(0.0, 2.0).tolist() == [200]


class TestClosestIter:
    def test_yields_ascending_offsets(self, rng):
        keys = rng.standard_normal(150)
        tree = BPlusTree(keys, order=8)
        center = 0.3
        offsets = [off for off, _, _ in tree.closest_iter(center)]
        assert len(offsets) == 150
        assert offsets == sorted(offsets)

    def test_enumerates_all_values(self, rng):
        keys = rng.standard_normal(80)
        tree = BPlusTree(keys, order=8)
        values = sorted(v for _, _, v in tree.closest_iter(0.0))
        assert values == list(range(80))

    def test_offsets_are_absolute_distances(self, rng):
        keys = rng.uniform(-5, 5, 60)
        tree = BPlusTree(keys, order=8)
        center = 1.0
        for off, key, _ in tree.closest_iter(center):
            assert off == pytest.approx(abs(key - center))

    def test_center_outside_key_range(self):
        tree = BPlusTree(np.array([1.0, 2.0, 3.0]))
        stream = list(tree.closest_iter(10.0))
        assert [v for _, _, v in stream] == [2, 1, 0]

    def test_center_below_key_range(self):
        tree = BPlusTree(np.array([1.0, 2.0, 3.0]))
        stream = list(tree.closest_iter(-10.0))
        assert [v for _, _, v in stream] == [0, 1, 2]


class TestPropertyBased:
    @given(float_lists, st.floats(-1e6, 1e6), st.floats(0, 1e6))
    @settings(max_examples=40)
    def test_range_query_equals_reference(self, raw_keys, center, half):
        keys = np.array(raw_keys)
        tree = BPlusTree(keys, order=4)
        lo, hi = center - half, center + half
        got = sorted(tree.range_query(lo, hi).tolist())
        expected = sorted(np.flatnonzero((keys >= lo) & (keys <= hi)).tolist())
        assert got == expected

    @given(float_lists, st.floats(-1e6, 1e6))
    @settings(max_examples=40)
    def test_closest_iter_complete_and_sorted(self, raw_keys, center):
        keys = np.array(raw_keys)
        tree = BPlusTree(keys, order=4)
        stream = list(tree.closest_iter(center))
        assert len(stream) == len(keys)
        offsets = [off for off, _, _ in stream]
        assert offsets == sorted(offsets)
        assert sorted(v for _, _, v in stream) == list(range(len(keys)))
