"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One profile for the whole suite: numpy-heavy properties are fast per
# example but function-scoped fixtures would trip the health check.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests that need ad-hoc randomness."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_clustered(rng: np.random.Generator) -> np.ndarray:
    """A small, well-clustered dataset where ANN methods should do well."""
    from repro.data.generators import gaussian_mixture

    return gaussian_mixture(
        600, 24, n_clusters=8, cluster_std=1.0, center_spread=8.0, seed=rng
    )


@pytest.fixture
def tiny_points() -> np.ndarray:
    """Twelve 2-D points echoing the paper's running example (Fig. 1/3)."""
    return np.array(
        [
            [1.0, 8.5], [2.0, 9.0], [2.5, 7.0], [4.3, 5.2], [1.5, 4.0],
            [5.0, 6.0], [2.0, 2.0], [6.5, 8.0], [5.5, 4.5], [8.0, 7.5],
            [6.0, 3.5], [8.5, 2.0],
        ]
    )
