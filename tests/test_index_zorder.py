"""Tests for Z-order encoding and LLCP arithmetic (LSB-Forest substrate)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.zorder import llcp, shared_levels, zorder_encode, zorder_encode_many


class TestEncode:
    def test_known_interleaving(self):
        # coords (1, 0) with 2 bits: bit0 of dim0 -> position 0.
        assert zorder_encode(np.array([1, 0]), 2) == 0b01
        assert zorder_encode(np.array([0, 1]), 2) == 0b10
        assert zorder_encode(np.array([1, 1]), 2) == 0b11
        assert zorder_encode(np.array([2, 0]), 2) == 0b100

    def test_single_dimension_is_identity(self):
        for value in [0, 1, 5, 255]:
            assert zorder_encode(np.array([value]), 8) == value

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            zorder_encode(np.array([-1]), 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError, match="capacity"):
            zorder_encode(np.array([4]), 2)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError, match="bits_per_dim"):
            zorder_encode(np.array([0]), 0)

    def test_encode_many(self):
        points = np.array([[0, 0], [1, 1], [3, 3]])
        encoded = zorder_encode_many(points, 2)
        assert encoded == [0, 3, 15]

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=6),
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=6),
    )
    @settings(max_examples=40)
    def test_injective(self, a, b):
        if len(a) != len(b):
            return
        za = zorder_encode(np.array(a), 8)
        zb = zorder_encode(np.array(b), 8)
        if a == b:
            assert za == zb
        else:
            assert za != zb

    @given(st.lists(st.integers(min_value=0, max_value=1023), min_size=2, max_size=4))
    @settings(max_examples=40)
    def test_value_bounded(self, coords):
        m = len(coords)
        z = zorder_encode(np.array(coords), 10)
        assert 0 <= z < (1 << (10 * m))


class TestLLCP:
    def test_identical_values(self):
        assert llcp(0b1010, 0b1010, 4) == 4

    def test_first_bit_differs(self):
        assert llcp(0b1000, 0b0000, 4) == 0

    def test_middle_bit(self):
        assert llcp(0b1010, 0b1000, 4) == 2

    def test_leading_zeros_count(self):
        # Width matters: 1 vs 2 in 8 bits share the top 6 bits.
        assert llcp(1, 2, 8) == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            llcp(-1, 0, 4)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError, match="wider"):
            llcp(16, 0, 4)

    def test_rejects_bad_total(self):
        with pytest.raises(ValueError):
            llcp(0, 0, 0)

    @given(
        st.integers(min_value=0, max_value=(1 << 20) - 1),
        st.integers(min_value=0, max_value=(1 << 20) - 1),
    )
    @settings(max_examples=50)
    def test_symmetric(self, a, b):
        assert llcp(a, b, 20) == llcp(b, a, 20)

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=30)
    def test_self_llcp_is_total(self, a):
        assert llcp(a, a, 16) == 16


class TestSharedLevels:
    def test_same_cell_at_all_levels(self):
        coords = np.array([3, 5])
        z = zorder_encode(coords, 4)
        assert shared_levels(z, z, 2, 4) == 4

    def test_coarse_cell_sharing(self):
        # Coordinates that agree only in their top bits share few levels.
        z1 = zorder_encode(np.array([0b1000, 0b1000]), 4)
        z2 = zorder_encode(np.array([0b1111, 0b1111]), 4)
        assert shared_levels(z1, z2, 2, 4) == 1

    def test_nearby_points_share_more_levels(self):
        m, bits = 2, 8
        q = zorder_encode(np.array([100, 100]), bits)
        near = zorder_encode(np.array([101, 101]), bits)
        far = zorder_encode(np.array([200, 30]), bits)
        assert shared_levels(q, near, m, bits) >= shared_levels(q, far, m, bits)
