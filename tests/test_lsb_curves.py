"""Comparative tests for LSB-Forest's two space-filling curves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LSBForest
from repro.data.generators import gaussian_mixture
from repro.data.groundtruth import exact_knn
from repro.eval.metrics import recall


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(
        600, 16, n_clusters=8, cluster_std=1.0, center_spread=8.0, seed=9
    )
    rng = np.random.default_rng(4)
    queries = data[rng.choice(600, 10, replace=False)] + 0.1
    gt_ids, _ = exact_knn(queries, data, 10)
    return data, queries, gt_ids


def _mean_recall(method, workload) -> float:
    data, queries, gt_ids = workload
    method.fit(data)
    return float(
        np.mean(
            [recall(method.query(q, k=10).ids, gt_ids[i])
             for i, q in enumerate(queries)]
        )
    )


class TestCurveComparison:
    def test_both_curves_functional(self, workload):
        for curve in ["zorder", "hilbert"]:
            method = LSBForest(l_trees=4, m=5, bits_per_dim=7,
                               candidate_factor=40, curve=curve, seed=0)
            score = _mean_recall(method, workload)
            assert score > 0.1, f"{curve} curve unusable (recall {score})"

    def test_curves_find_same_self_matches(self, workload):
        data, _, _ = workload
        z = LSBForest(l_trees=3, m=4, bits_per_dim=6, candidate_factor=30,
                      curve="zorder", seed=0).fit(data)
        h = LSBForest(l_trees=3, m=4, bits_per_dim=6, candidate_factor=30,
                      curve="hilbert", seed=0).fit(data)
        for i in [0, 100, 250]:
            assert z.query(data[i], k=1).neighbors[0].id == i
            assert h.query(data[i], k=1).neighbors[0].id == i

    def test_curve_changes_visit_order_not_contract(self, workload):
        """Different curves produce different candidate orders but both
        respect the candidate budget and return sorted results."""
        data, queries, _ = workload
        for curve in ["zorder", "hilbert"]:
            method = LSBForest(l_trees=3, m=4, bits_per_dim=6,
                               candidate_factor=20, curve=curve, seed=0).fit(data)
            result = method.query(queries[0], k=5)
            assert result.stats.candidates_verified <= 20 * 3 + 5
            assert result.distances == sorted(result.distances)
