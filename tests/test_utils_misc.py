"""Tests for Timer, validation helpers, and the shared scale estimator."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils.scale import estimate_nn_distance
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_dataset,
    check_positive,
    check_probability,
    check_query,
)


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.002)
        with timer:
            time.sleep(0.002)
        assert timer.count == 2
        assert timer.elapsed >= 0.004

    def test_mean(self):
        timer = Timer()
        assert timer.mean == 0.0
        with timer:
            pass
        assert timer.mean >= 0.0
        assert timer.mean_ms == pytest.approx(timer.mean * 1e3)

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.count == 0
        assert timer.elapsed == 0.0


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative_always(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError, match="strictly between"):
            check_probability("p", value)

    def test_accepts_interior(self):
        assert check_probability("p", 0.5) == 0.5


class TestCheckDataset:
    def test_accepts_2d(self):
        out = check_dataset([[1.0, 2.0], [3.0, 4.0]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_dataset(np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one point"):
            check_dataset(np.zeros((0, 3)))

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            check_dataset(np.zeros((3, 0)))

    def test_rejects_nan(self):
        bad = np.array([[1.0, np.nan]])
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_dataset(bad)

    def test_rejects_inf(self):
        bad = np.array([[1.0, np.inf]])
        with pytest.raises(ValueError):
            check_dataset(bad)


class TestCheckQuery:
    def test_accepts_matching_dim(self):
        out = check_query([1.0, 2.0, 3.0], 3)
        assert out.shape == (3,)

    def test_rejects_wrong_dim(self):
        with pytest.raises(ValueError, match="dimension"):
            check_query([1.0, 2.0], 3)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_query([np.nan, 0.0], 2)


class TestEstimateNNDistance:
    def test_known_grid(self):
        # Points on a unit 1-D grid embedded in 2-D: NN distance is 1.
        data = np.stack([np.arange(50, dtype=float), np.zeros(50)], axis=1)
        assert estimate_nn_distance(data) == pytest.approx(1.0)

    def test_scales_linearly(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((300, 8))
        base = estimate_nn_distance(data)
        scaled = estimate_nn_distance(10.0 * data)
        assert scaled == pytest.approx(10.0 * base, rel=1e-9)

    def test_single_point_returns_zero(self):
        assert estimate_nn_distance(np.zeros((1, 4))) == 0.0

    def test_duplicates_return_zero(self):
        data = np.ones((20, 3))
        assert estimate_nn_distance(data) == 0.0

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((500, 6))
        assert estimate_nn_distance(data) == estimate_nn_distance(data)

    def test_off_origin_cluster(self):
        # A tight cluster far from the origin: the vectorized expansion
        # must not cancel the tiny separations against the huge norms.
        rng = np.random.default_rng(3)
        data = rng.standard_normal((800, 12)) * 1e-3 + 1e5
        estimate = estimate_nn_distance(data)
        reference = np.sort(
            np.linalg.norm(data - data[0], axis=1)
        )[1]  # a same-scale separation, not an exactness target
        assert 0.1 * reference < estimate < 10.0 * reference

    def test_partial_duplicates_stay_exactly_zero(self):
        # When most sampled points have an exact duplicate, the median NN
        # distance must be exactly 0.0 (the degenerate-input contract),
        # not an ulp-scale expansion residual.
        rng = np.random.default_rng(5)
        data = rng.standard_normal((348, 25))
        data[: 174] = data[0]
        assert estimate_nn_distance(data) == 0.0
