"""Tests for the array-native STR build (repro.index.str_build).

The contract is byte-identity: ``build_flat_str(points, ids, M)`` must
produce exactly the arrays of ``RStarTree.bulk_load(points, ids,
M).freeze()`` — same ordering (stable-tie behaviour included), same MBRs,
same dtypes — so the two construction paths are interchangeable at every
layer above.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DBLSH
from repro.index.rstar import RStarTree
from repro.index.str_build import build_flat_str, str_order


def assert_flats_identical(expected, got):
    a, b = expected.to_arrays(), got.to_arrays()
    assert set(a) == set(b)
    for key in a:
        assert a[key].dtype == b[key].dtype, key
        assert np.array_equal(a[key], b[key], equal_nan=True), key


class TestStrOrder:
    @pytest.mark.parametrize("n,dim,max_entries", [
        (1, 3, 8), (5, 1, 4), (40, 2, 4), (500, 4, 8), (3000, 6, 32),
        (33, 3, 4), (7777, 3, 4),
    ])
    def test_matches_recursive_order(self, rng, n, dim, max_entries):
        points = rng.standard_normal((n, dim)) * 3.0
        tree = RStarTree(dim, max_entries=max_entries)
        expected = tree._str_order(points, np.arange(n), 0)
        assert np.array_equal(expected, str_order(points, max_entries))

    def test_matches_on_tied_data(self, rng):
        # Ties on one axis, ties on a later axis, and full duplicates all
        # exercise the stable-sort chain the iterative path must emulate.
        points = rng.standard_normal((900, 4))
        points[:300, 0] = 0.5
        points[200:500, 2] = -0.25
        points[:16] = points[0]
        tree = RStarTree(4, max_entries=8)
        expected = tree._str_order(points, np.arange(900), 0)
        assert np.array_equal(expected, str_order(points, 8))

    def test_matches_on_quantized_data(self, rng):
        # Heavy ties everywhere (grid-quantized coordinates).
        points = np.round(rng.standard_normal((4000, 3)) * 2.0) / 2.0
        tree = RStarTree(3, max_entries=8)
        expected = tree._str_order(points, np.arange(4000), 0)
        assert np.array_equal(expected, str_order(points, 8))

    def test_empty(self):
        assert str_order(np.empty((0, 3)), 8).size == 0


class TestByteIdenticalBuild:
    @pytest.mark.parametrize("n,dim,max_entries", [
        (1, 3, 8), (5, 1, 4), (40, 2, 4), (500, 4, 8), (3000, 6, 32),
        (10000, 10, 32), (33, 3, 4),
    ])
    def test_identical_to_bulk_load_freeze(self, rng, n, dim, max_entries):
        points = rng.standard_normal((n, dim)) * 3.0
        expected = RStarTree.bulk_load(points, max_entries=max_entries).freeze()
        assert_flats_identical(expected, build_flat_str(points, max_entries=max_entries))

    def test_identical_on_tied_data(self, rng):
        points = rng.standard_normal((1200, 5))
        points[:400, 0] = 1.0
        points[300:700, 1] = 0.0
        points[:10] = points[0]
        expected = RStarTree.bulk_load(points, max_entries=8).freeze()
        assert_flats_identical(expected, build_flat_str(points, max_entries=8))

    def test_identical_with_custom_ids(self, rng):
        points = rng.standard_normal((200, 3))
        ids = rng.permutation(10_000)[:200]
        expected = RStarTree.bulk_load(points, ids=ids, max_entries=8).freeze()
        assert_flats_identical(expected, build_flat_str(points, ids=ids, max_entries=8))

    def test_empty_tree(self):
        expected = RStarTree.bulk_load(np.empty((0, 2)), max_entries=8).freeze()
        got = build_flat_str(np.empty((0, 2)), max_entries=8)
        assert_flats_identical(expected, got)
        assert got.window_query(np.array([-1.0, -1.0]), np.array([1.0, 1.0])).size == 0

    def test_window_queries_agree(self, rng):
        points = rng.standard_normal((2500, 4)) * 2.0
        tree = RStarTree.bulk_load(points, max_entries=16)
        flat = build_flat_str(points, max_entries=16)
        for _ in range(20):
            center = rng.standard_normal(4) * 2.0
            half = rng.uniform(0.2, 3.0)
            expected = tree.freeze().window_query(center - half, center + half)
            assert np.array_equal(expected, flat.window_query(center - half, center + half))

    def test_bad_inputs(self, rng):
        with pytest.raises(ValueError, match="max_entries"):
            build_flat_str(rng.standard_normal((10, 2)), max_entries=3)
        with pytest.raises(ValueError, match="ids length"):
            build_flat_str(rng.standard_normal((10, 2)), ids=np.arange(9))

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(0, 400),
        dim=st.integers(1, 6),
        max_entries=st.sampled_from([4, 8, 32]),
        quantize=st.booleans(),
    )
    def test_property_byte_identical(self, seed, n, dim, max_entries, quantize):
        gen = np.random.default_rng(seed)
        points = gen.standard_normal((n, dim)) * 2.0
        if quantize:  # force tie-heavy inputs half the time
            points = np.round(points)
        expected = RStarTree.bulk_load(points, max_entries=max_entries).freeze()
        assert_flats_identical(
            expected, build_flat_str(points, max_entries=max_entries)
        )


class TestBuilderEngineParity:
    """DBLSH(builder=...) x engine parity: same neighbors everywhere."""

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.data.generators import gaussian_mixture

        data = gaussian_mixture(2500, 24, n_clusters=8, seed=11)
        rng = np.random.default_rng(13)
        queries = data[rng.choice(2500, 10, replace=False)] + 0.05
        return data, queries

    COMMON = dict(
        c=1.5, l_spaces=4, k_per_space=8, t=64, seed=0, auto_initial_radius=True
    )

    def test_array_builder_skips_pointer_trees(self, workload):
        data, _ = workload
        index = DBLSH(builder="array", **self.COMMON).fit(data)
        assert all(table is None for table in index._tables)
        assert all(flat is not None for flat in index._flat_tables)

    def test_pointer_builder_keeps_pointer_trees(self, workload):
        data, _ = workload
        index = DBLSH(builder="pointer", **self.COMMON).fit(data)
        assert all(table is not None for table in index._tables)

    def test_builders_return_identical_results(self, workload):
        data, queries = workload
        array_index = DBLSH(builder="array", **self.COMMON).fit(data)
        pointer_index = DBLSH(builder="pointer", **self.COMMON).fit(data)
        a = array_index.query_batch(queries, k=10)
        b = pointer_index.query_batch(queries, k=10)
        assert [r.ids for r in a] == [r.ids for r in b]
        assert [r.stats.candidates_verified for r in a] == [
            r.stats.candidates_verified for r in b
        ]

    def test_builders_produce_identical_flat_arrays(self, workload):
        data, _ = workload
        array_index = DBLSH(builder="array", **self.COMMON).fit(data)
        pointer_index = DBLSH(builder="pointer", **self.COMMON).fit(data)
        pointer_index._ensure_frozen()
        for flat_a, flat_b in zip(
            array_index._flat_tables, pointer_index._flat_tables
        ):
            assert_flats_identical(flat_b, flat_a)

    def test_array_builder_matches_legacy_engine(self, workload):
        data, queries = workload
        array_index = DBLSH(builder="array", **self.COMMON).fit(data)
        legacy = DBLSH(engine="legacy", **self.COMMON).fit(data)
        for q in queries:
            assert array_index.query(q, k=10).ids == legacy.query(q, k=10).ids

    def test_add_appends_to_delta_without_rebuilding(self, workload):
        # add() on a frozen array-built index lands in the delta buffer:
        # no pointer tree is materialized, the frozen traversals stay
        # valid, and the new point is immediately queryable.
        data, queries = workload
        index = DBLSH(builder="array", **self.COMMON).fit(data)
        flats_before = list(index._flat_tables)
        far = data.mean(axis=0) + 300.0
        index.add(far[None, :])
        assert all(table is None for table in index._tables)
        assert index._flat_tables == flats_before
        assert index.num_pending == 1
        result = index.query(far, k=1)
        assert result.neighbors[0].id == data.shape[0]
        # compact() folds the delta into fresh traversals; the point
        # stays queryable and the sweep cost disappears.
        assert index.compact() is True
        assert index.num_pending == 0
        assert index.query(far, k=1).neighbors[0].id == data.shape[0]

    def test_invalid_builder_rejected(self):
        with pytest.raises(ValueError, match="builder"):
            DBLSH(builder="magic")

    def test_non_flat_configs_build_eagerly(self, workload):
        # builder="array" only applies to the rstar/vectorized pairing;
        # other configurations keep their eager table builds.
        data, queries = workload
        for kwargs in ({"backend": "kdtree"}, {"engine": "legacy"}):
            index = DBLSH(builder="array", **{**self.COMMON, **kwargs}).fit(data)
            assert all(table is not None for table in index._tables)
            assert index.query(queries[0], k=5).neighbors
