"""Tests for the M-tree metric index (PM-LSH substrate)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.index.mtree import MTree


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one point"):
            MTree(np.zeros((0, 3)))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MTree(np.zeros((2, 2)), leaf_size=0)
        with pytest.raises(ValueError):
            MTree(np.zeros((2, 2)), fanout=1)

    def test_single_point(self):
        tree = MTree(np.array([[1.0, 2.0]]))
        ids = tree.range_query(np.array([1.0, 2.0]), 0.1)
        assert ids.tolist() == [0]

    def test_duplicates(self):
        tree = MTree(np.ones((30, 2)), leaf_size=4)
        ids = tree.range_query(np.ones(2), 0.0)
        assert sorted(ids.tolist()) == list(range(30))


class TestRangeQuery:
    def test_matches_brute_force(self, rng):
        points = rng.standard_normal((300, 5))
        tree = MTree(points, leaf_size=16, seed=0)
        for _ in range(15):
            q = rng.standard_normal(5)
            radius = float(rng.uniform(0.5, 2.5))
            got = set(tree.range_query(q, radius).tolist())
            brute = np.linalg.norm(points - q, axis=1)
            expected = set(np.flatnonzero(brute <= radius).tolist())
            assert got == expected

    def test_negative_radius_rejected(self, rng):
        tree = MTree(rng.standard_normal((10, 2)))
        with pytest.raises(ValueError, match="radius"):
            tree.range_query(np.zeros(2), -1.0)

    def test_zero_radius(self, rng):
        points = rng.standard_normal((50, 3))
        tree = MTree(points)
        got = tree.range_query(points[7], 0.0)
        assert 7 in got.tolist()

    def test_pivots_do_not_change_results(self, rng):
        points = rng.standard_normal((200, 4))
        plain = MTree(points, num_pivots=0, seed=1)
        pivoted = MTree(points, num_pivots=6, seed=1)
        q = rng.standard_normal(4)
        for radius in [0.5, 1.5, 3.0]:
            a = set(plain.range_query(q, radius).tolist())
            b = set(pivoted.range_query(q, radius).tolist())
            assert a == b

    def test_pivots_reduce_distance_computations(self, rng):
        # The PM-tree claim: pivot rings prune subtrees a plain M-tree visits.
        points = rng.standard_normal((500, 6))
        plain = MTree(points, num_pivots=0, seed=1)
        pivoted = MTree(points, num_pivots=8, seed=1)
        q = rng.standard_normal(6) * 3.0  # off-center query: pruning matters
        plain.range_query(q, 0.5)
        pivoted.range_query(q, 0.5)
        assert pivoted.node_visits <= plain.node_visits


class TestKNN:
    def test_matches_brute_force(self, rng):
        points = rng.standard_normal((250, 4))
        tree = MTree(points, leaf_size=8, seed=0)
        for _ in range(8):
            q = rng.standard_normal(4)
            dists, ids = tree.knn(q, 6)
            brute = np.linalg.norm(points - q, axis=1)
            np.testing.assert_allclose(dists, np.sort(brute)[:6], atol=1e-9)

    def test_k_must_be_positive(self, rng):
        tree = MTree(rng.standard_normal((5, 2)))
        with pytest.raises(ValueError, match="k must be >= 1"):
            tree.knn(np.zeros(2), 0)

    def test_nearest_iter_ascending(self, rng):
        points = rng.standard_normal((120, 3))
        tree = MTree(points, leaf_size=8, seed=0)
        stream = list(itertools.islice(tree.nearest_iter(np.zeros(3)), 40))
        dists = [d for d, _ in stream]
        assert dists == sorted(dists)

    def test_nearest_iter_complete(self, rng):
        points = rng.standard_normal((60, 2))
        tree = MTree(points, leaf_size=4, seed=0)
        stream = list(tree.nearest_iter(np.zeros(2)))
        assert sorted(i for _, i in stream) == list(range(60))
