"""Tests for metrics (Eq. 11/12), the runner, and table rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBLSH
from repro.baselines import LinearScan
from repro.data.generators import gaussian_mixture
from repro.eval.metrics import overall_ratio, recall
from repro.eval.report import format_series, format_table
from repro.eval.runner import evaluate_method, run_comparison


class TestOverallRatio:
    def test_perfect_answer(self):
        assert overall_ratio([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_eq11_weighting(self):
        # (1/k) * sum d_i / d*_i = (2/1 + 3/2) / 2 = 1.75
        assert overall_ratio([2.0, 3.0], [1.0, 2.0]) == pytest.approx(1.75)

    def test_short_result_uses_prefix(self):
        # Only position 0 is compared; missing positions are recall's job.
        assert overall_ratio([2.0], [1.0, 10.0]) == pytest.approx(2.0)

    def test_empty_result_is_inf(self):
        assert overall_ratio([], [1.0]) == float("inf")

    def test_long_result_truncated(self):
        assert overall_ratio([1.0, 2.0, 99.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_zero_true_distance_matched(self):
        assert overall_ratio([0.0, 2.0], [0.0, 2.0]) == pytest.approx(1.0)

    def test_zero_true_distance_missed_is_skipped(self):
        # d* = 0 with d > 0 would be infinite; the term is dropped instead.
        assert overall_ratio([1.0, 2.0], [0.0, 2.0]) == pytest.approx(1.0)

    def test_ratio_never_below_one_for_valid_input(self):
        # Returned distances of a correct method dominate the exact ones.
        got = [1.1, 2.2, 3.3]
        true = [1.0, 2.0, 3.0]
        assert overall_ratio(got, true) >= 1.0

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            overall_ratio([1.0], [])


class TestRecall:
    def test_full(self):
        assert recall([1, 2, 3], [3, 2, 1]) == 1.0

    def test_partial(self):
        assert recall([1, 9, 8], [1, 2, 3]) == pytest.approx(1 / 3)

    def test_empty_returned(self):
        assert recall([], [1, 2]) == 0.0

    def test_short_returned_penalised(self):
        assert recall([1], [1, 2]) == pytest.approx(0.5)

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            recall([1], [])


class TestRunner:
    @pytest.fixture
    def workload(self):
        data = gaussian_mixture(400, 16, n_clusters=6, seed=0)
        rng = np.random.default_rng(1)
        queries = data[rng.choice(400, 5, replace=False)] + 0.05
        return data, queries

    def test_linear_scan_is_perfect(self, workload):
        data, queries = workload
        result = evaluate_method(LinearScan(), data, queries, k=5, dataset_name="w")
        assert result.recall == pytest.approx(1.0)
        assert result.ratio == pytest.approx(1.0)
        assert result.method == "LinearScan"
        assert result.n == 400 and result.dim == 16
        assert result.candidates_per_query == pytest.approx(400.0)

    def test_row_shape(self, workload):
        data, queries = workload
        result = evaluate_method(LinearScan(), data, queries, k=3)
        row = result.row()
        assert set(row) >= {"method", "query_ms", "ratio", "recall", "build_s"}

    def test_invalid_k(self, workload):
        data, queries = workload
        with pytest.raises(ValueError, match="k must be >= 1"):
            evaluate_method(LinearScan(), data, queries, k=0)

    def test_prefitted_method(self, workload):
        data, queries = workload
        method = LinearScan().fit(data)
        result = evaluate_method(method, data, queries, k=3, fit=False)
        assert result.recall == pytest.approx(1.0)

    def test_run_comparison_shares_ground_truth(self, workload):
        data, queries = workload
        methods = [
            LinearScan(),
            DBLSH(l_spaces=3, k_per_space=4, seed=0, auto_initial_radius=True),
        ]
        results = run_comparison(methods, data, queries, k=5, dataset_name="cmp")
        assert [r.method for r in results] == ["LinearScan", "DBLSH"]
        assert all(r.dataset == "cmp" for r in results)
        assert results[1].recall > 0.3  # LSH finds most near-duplicates


class TestMutableWorkload:
    def test_trajectory_tracks_the_live_point_set(self, tmp_path):
        from repro.eval.runner import evaluate_mutable_workload
        from repro.io import save_index
        from repro.serve import MutableSnapshotServer

        rng = np.random.default_rng(5)
        data = gaussian_mixture(300, 8, n_clusters=3, seed=5)
        inserts = data[rng.choice(300, 60, replace=False)] + rng.normal(
            scale=0.01, size=(60, 8)
        )
        queries = data[rng.choice(300, 6, replace=False)] + 0.01
        path = str(tmp_path / "snap.npz")
        save_index(
            DBLSH(c=1.5, l_spaces=3, k_per_space=6, t=16, seed=0,
                  auto_initial_radius=True).fit(data),
            path,
        )
        server = MutableSnapshotServer(
            path, compact_threshold=0, group_commit_ms=2.0
        )
        server.start()
        try:
            trajectory = evaluate_mutable_workload(
                server, data, inserts, queries, k=5,
                phases=3, delete_fraction=0.5, mutation_clients=4, seed=1,
            )
        finally:
            server.close()
        assert len(trajectory) == 3
        assert sum(p.inserts for p in trajectory) == 60
        # live_points follows base + cumulative inserts - deletes exactly.
        running = 300
        for p in trajectory:
            running += p.inserts - p.deletes
            assert p.live_points == running
            assert p.deletes == p.inserts // 2
            assert p.mutation_qps > 0 and p.query_time_ms > 0
            # Queries sit on live points; the delta sweep is exact, so
            # the mutated index keeps finding most of them.
            assert p.recall > 0.3
            assert np.isfinite(p.ratio) and p.ratio >= 1.0 - 1e-6
        # compact_threshold=0 disables compaction: the WAL only grows.
        assert trajectory[-1].wal_bytes > trajectory[0].wal_bytes
        assert all(p.compactions == 0 for p in trajectory)
        row = trajectory[0].row()
        assert set(row) >= {"phase", "inserts", "deletes", "live",
                            "mut_qps", "recall", "wal_bytes", "trigger"}

    def test_parameter_validation(self, tmp_path):
        from repro.eval.runner import evaluate_mutable_workload

        data = np.zeros((4, 3))
        with pytest.raises(ValueError, match="phases"):
            evaluate_mutable_workload(None, data, data, data, 1, phases=0)
        with pytest.raises(ValueError, match="delete_fraction"):
            evaluate_mutable_workload(None, data, data, data, 1,
                                      delete_fraction=1.5)
        with pytest.raises(ValueError, match="mutation_clients"):
            evaluate_mutable_workload(None, data, data, data, 1,
                                      mutation_clients=0)


class TestReport:
    def test_format_table_basic(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="T")
        assert "T" in text
        lines = text.splitlines()
        assert len(lines) == 6  # title, rule, header, separator, 2 rows

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert "3" in text

    def test_format_series(self):
        text = format_series("n", [1, 2], {"m1": [0.1, 0.2], "m2": [0.3, 0.4]})
        assert "n" in text and "m1" in text and "0.4" in text
