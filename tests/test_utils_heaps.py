"""Tests for the bounded max-heap used by every query path."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.heaps import BoundedMaxHeap


class TestBasics:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            BoundedMaxHeap(0)

    def test_empty_heap_bound_is_inf(self):
        heap = BoundedMaxHeap(3)
        assert heap.bound == math.inf
        assert not heap.full
        assert len(heap) == 0

    def test_push_until_full(self):
        heap = BoundedMaxHeap(2)
        assert heap.push(5.0, 1)
        assert not heap.full
        assert heap.push(3.0, 2)
        assert heap.full
        assert heap.bound == 5.0

    def test_push_worse_rejected_when_full(self):
        heap = BoundedMaxHeap(2)
        heap.push(1.0, 1)
        heap.push(2.0, 2)
        assert not heap.push(3.0, 3)
        assert heap.bound == 2.0

    def test_push_better_replaces_worst(self):
        heap = BoundedMaxHeap(2)
        heap.push(1.0, 1)
        heap.push(2.0, 2)
        assert heap.push(1.5, 3)
        assert heap.items() == [(1.0, 1), (1.5, 3)]

    def test_items_sorted_ascending(self):
        heap = BoundedMaxHeap(4)
        for d, i in [(3.0, 0), (1.0, 1), (2.0, 2)]:
            heap.push(d, i)
        dists = [d for d, _ in heap.items()]
        assert dists == sorted(dists)

    def test_iteration_matches_items(self):
        heap = BoundedMaxHeap(3)
        heap.push(2.0, 0)
        heap.push(1.0, 1)
        assert list(heap) == heap.items()


class TestProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=100),
           st.integers(min_value=1, max_value=20))
    def test_keeps_k_smallest(self, distances, k):
        heap = BoundedMaxHeap(k)
        for i, d in enumerate(distances):
            heap.push(d, i)
        kept = [d for d, _ in heap.items()]
        expected = sorted(distances)[:k]
        assert kept == pytest.approx(expected)

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=60))
    def test_bound_is_max_of_items_when_full(self, distances):
        k = max(1, len(distances) // 2)
        heap = BoundedMaxHeap(k)
        for i, d in enumerate(distances):
            heap.push(d, i)
        if heap.full:
            assert heap.bound == pytest.approx(max(d for d, _ in heap.items()))

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                              st.integers(min_value=0, max_value=1000)),
                    min_size=1, max_size=80))
    def test_bound_never_increases_once_full(self, pairs):
        heap = BoundedMaxHeap(5)
        previous = math.inf
        for d, i in pairs:
            heap.push(d, i)
            if heap.full:
                assert heap.bound <= previous
                previous = heap.bound
