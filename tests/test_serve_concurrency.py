"""Concurrent-serving stress tests: many clients, one worker pool.

Contract under concurrency:

* the server multiplexes any number of client threads/connections onto
  the shared worker pool (FIFO dispatch — arrival order, no starvation),
  and **every** answer any client receives is bit-identical to the
  in-process ``load_index(path).query_batch(...)`` result for the
  generation that answered it;
* ``query`` / ``status`` / ``reload`` interleave freely: a reload flips
  new requests to the new generation while requests already checked out
  answer from the old one, so attribution is always to exactly one
  generation's expected answers;
* the CLI ``query --server`` client retries its connection with bounded
  exponential backoff, so racing a ``serve`` that is still starting up
  is not flaky.

The tier-1 versions here are smoke-sized; the ``slow``-marked stress run
(bigger dataset, more clients, kills a worker mid-run) is excluded from
the default ``-m "not slow"`` selection and runs as its own CI step.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro import ShardedDBLSH
from repro.data.generators import gaussian_mixture
from repro.io import load_index, save_index
from repro.serve import SnapshotServer

COMMON = dict(
    c=1.5, l_spaces=3, k_per_space=6, t=32, seed=0, auto_initial_radius=True
)
DIM = 12


def _same(results, expected) -> bool:
    return len(results) == len(expected) and all(
        r.ids == e.ids and r.distances == e.distances
        for r, e in zip(results, expected)
    )


def _matches_one_generation(results, *expected_sets) -> bool:
    return any(_same(results, expected) for expected in expected_sets)


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(51)
    return rng.standard_normal((5, DIM))


@pytest.fixture(scope="module")
def snapshots(tmp_path_factory):
    root = tmp_path_factory.mktemp("concurrency")
    data_a = gaussian_mixture(700, DIM, n_clusters=5, seed=61)
    data_b = gaussian_mixture(900, DIM, n_clusters=6, seed=67)
    path_a = str(root / "gen_a.npz")
    path_b = str(root / "gen_b.npz")
    save_index(ShardedDBLSH(shards=2, **COMMON).fit(data_a), path_a)
    save_index(ShardedDBLSH(shards=3, **COMMON).fit(data_b), path_b)
    return path_a, path_b


@pytest.fixture(scope="module")
def expected(snapshots, queries):
    path_a, path_b = snapshots
    return (
        load_index(path_a).query_batch(queries, k=4),
        load_index(path_b).query_batch(queries, k=4),
    )


def _run_clients(n_threads, target):
    """Start n threads over ``target(idx, failures)``; join; return failures."""
    failures = []
    threads = [
        threading.Thread(target=target, args=(idx, failures), daemon=True)
        for idx in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "client thread hung"
    return failures


class TestSharedServerThreads:
    def test_concurrent_threads_bit_identical(self, snapshots, queries,
                                              expected):
        path_a, _ = snapshots
        expected_a, _ = expected
        with SnapshotServer(path_a) as server:
            def client(idx, failures):
                try:
                    for _ in range(4):
                        got = server.query_batch(queries, k=4)
                        if not _same(got, expected_a):
                            failures.append(f"client {idx} diverged")
                except Exception as exc:  # surfaced after join
                    failures.append(f"client {idx}: {exc!r}")

            failures = _run_clients(4, client)
        assert failures == []

    def test_threads_with_interleaved_reload(self, snapshots, queries,
                                             expected):
        """Queries racing a reload must each match exactly one
        generation's expected answers — never a mix, never a drop."""
        path_a, path_b = snapshots
        expected_a, expected_b = expected
        with SnapshotServer(path_a) as server:
            def client(idx, failures):
                try:
                    for _ in range(4):
                        got = server.query_batch(queries, k=4)
                        if not _matches_one_generation(
                                got, expected_a, expected_b):
                            failures.append(f"client {idx} got answers "
                                            f"matching neither generation")
                        server.status()  # interleave a status probe
                except Exception as exc:
                    failures.append(f"client {idx}: {exc!r}")

            flip = {}
            def reloader(idx, failures):
                try:
                    time.sleep(0.05)  # land mid-run
                    flip.update(server.reload(path_b))
                except Exception as exc:
                    failures.append(f"reload: {exc!r}")

            failures = []
            threads = [
                threading.Thread(target=client, args=(i, failures), daemon=True)
                for i in range(3)
            ] + [threading.Thread(target=reloader, args=(0, failures),
                                  daemon=True)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive()
            assert failures == []
            assert flip.get("generation") == 2
            # Settled state: everything now answers from generation 2.
            assert _same(server.query_batch(queries, k=4), expected_b)


class TestCLIClients:
    def test_interleaved_clients_over_unix_socket(self, snapshots, queries,
                                                  expected, tmp_path):
        from multiprocessing.connection import Client

        from repro.cli import main
        from repro.serve.protocol import AUTHKEY, decode_result

        path_a, path_b = snapshots
        expected_a, expected_b = expected
        sock = str(tmp_path / "stress.sock")
        rc_box = []
        serve_thread = threading.Thread(
            target=lambda: rc_box.append(main(
                ["serve", "--index", path_a, "--listen", sock]
            )),
            daemon=True,
        )
        serve_thread.start()
        deadline = time.monotonic() + 30
        while not os.path.exists(sock):
            assert time.monotonic() < deadline
            time.sleep(0.05)

        def client(idx, failures):
            try:
                with Client(sock, authkey=AUTHKEY) as conn:
                    for round_no in range(3):
                        conn.send(("query_batch", queries, 4))
                        status, value = conn.recv()
                        if status != "ok":
                            failures.append(f"client {idx}: {value}")
                            return
                        got = [decode_result(w) for w in value]
                        if not _matches_one_generation(
                                got, expected_a, expected_b):
                            failures.append(
                                f"client {idx} round {round_no}: answers "
                                f"match neither generation"
                            )
                        conn.send(("status",))
                        status, info = conn.recv()
                        if status != "ok" or info["generation"] < 1:
                            failures.append(f"client {idx}: bad status {info}")
                        if idx == 0 and round_no == 0:
                            # One client hot-reloads mid-run; the others
                            # keep querying across the flip.
                            conn.send(("reload", path_b))
                            status, info = conn.recv()
                            if status != "ok" or info["generation"] != 2:
                                failures.append(f"reload failed: {info}")
            except Exception as exc:
                failures.append(f"client {idx}: {exc!r}")

        failures = _run_clients(3, client)
        assert failures == []
        # Settled check + shutdown on a fresh connection.
        with Client(sock, authkey=AUTHKEY) as conn:
            conn.send(("query_batch", queries, 4))
            status, value = conn.recv()
            assert status == "ok"
            assert _same([decode_result(w) for w in value], expected_b)
            conn.send(("shutdown",))
            conn.recv()
        serve_thread.join(timeout=30)
        assert not serve_thread.is_alive()
        assert rc_box == [0]


class TestConnectRetry:
    """Regression: `query --server` must not flake when racing startup."""

    def test_backoff_schedule_doubles_to_cap_then_raises(self, tmp_path,
                                                         monkeypatch):
        from repro import cli

        sleeps = []
        clock = {"now": 0.0}
        monkeypatch.setattr(cli.time, "monotonic", lambda: clock["now"])

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock["now"] += seconds

        missing = str(tmp_path / "nobody-home.sock")
        with pytest.raises(FileNotFoundError):
            cli._connect_with_retry(missing, timeout=3.0, _sleep=fake_sleep)
        # Doubles from 50 ms, caps at 1 s, and the tail sleep is clipped
        # to the remaining budget instead of overshooting the deadline.
        assert sleeps == pytest.approx([0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 0.45])

    def test_reset_streak_is_terminal_well_before_the_timeout(self,
                                                              monkeypatch):
        """Something listening but refusing us (authkey mismatch, wrong
        service) must fail fast with a typed error, not burn the whole
        connect timeout retrying a hopeless dial."""
        import multiprocessing.connection

        from repro import cli

        attempts = []

        def always_reset(address, authkey=None):
            attempts.append(address)
            raise ConnectionResetError("peer reset")

        monkeypatch.setattr(multiprocessing.connection, "Client", always_reset)
        sleeps = []
        with pytest.raises(ConnectionResetError,
                           match="reset the connection .* in a row"):
            cli._connect_with_retry("/tmp/hostile.sock", timeout=3600.0,
                                    _sleep=sleeps.append)
        # Terminal after the streak bound -- nowhere near the hour.
        assert len(attempts) == cli._MAX_CONSECUTIVE_RESETS
        assert len(sleeps) == cli._MAX_CONSECUTIVE_RESETS - 1

    def test_a_refusal_resets_the_reset_streak(self, monkeypatch):
        """Resets interleaved with refusals look like a server restarting
        underneath us: the deadline governs, not the streak heuristic."""
        import multiprocessing.connection

        from repro import cli

        clock = {"now": 0.0}
        monkeypatch.setattr(cli.time, "monotonic", lambda: clock["now"])
        calls = {"n": 0}

        def flaky(address, authkey=None):
            calls["n"] += 1
            if calls["n"] % 2:
                raise ConnectionResetError("peer reset")
            raise ConnectionRefusedError(address)

        monkeypatch.setattr(multiprocessing.connection, "Client", flaky)

        def fake_sleep(seconds):
            clock["now"] += seconds

        with pytest.raises((ConnectionResetError,
                            ConnectionRefusedError)) as excinfo:
            cli._connect_with_retry("/tmp/flappy.sock", timeout=30.0,
                                    _sleep=fake_sleep)
        assert "in a row" not in str(excinfo.value)
        assert calls["n"] > cli._MAX_CONSECUTIVE_RESETS

    def test_connect_retry_covers_late_server_bind(self, snapshots, tmp_path):
        from repro import cli
        from repro.cli import main

        path_a, _ = snapshots
        sock = str(tmp_path / "late.sock")
        rc_box = []

        def delayed_serve():
            time.sleep(0.4)  # client dials into nothing first
            rc_box.append(main(["serve", "--index", path_a, "--listen", sock]))

        thread = threading.Thread(target=delayed_serve, daemon=True)
        thread.start()
        conn = cli._connect_with_retry(sock, timeout=30.0)
        with conn:
            conn.send(("describe",))
            status, described = conn.recv()
            assert status == "ok" and "SnapshotServer" in described
            conn.send(("shutdown",))
            conn.recv()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert rc_box == [0]


@pytest.mark.slow
class TestStressSlow:
    """The full acceptance scenario at stress scale: many clients, a
    SIGKILLed worker, and a hot reload in one run — every answer set
    bit-identical to the corresponding generation.  Excluded from tier-1
    by the ``-m "not slow"`` default; CI runs it as a separate step."""

    def test_clients_kill_and_reload_in_one_run(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("stress-slow")
        rng = np.random.default_rng(71)
        data_a = gaussian_mixture(4000, 16, n_clusters=8, seed=73)
        data_b = gaussian_mixture(5000, 16, n_clusters=9, seed=79)
        queries = rng.standard_normal((12, 16))
        path_a = str(root / "a.npz")
        path_b = str(root / "b.npz")
        save_index(ShardedDBLSH(shards=2, **COMMON).fit(data_a), path_a)
        save_index(ShardedDBLSH(shards=4, **COMMON).fit(data_b), path_b)
        expected_a = load_index(path_a).query_batch(queries, k=8)
        expected_b = load_index(path_b).query_batch(queries, k=8)

        server = SnapshotServer(path_a, start_timeout=60,
                                query_timeout=60).start()
        seen_pids = set(server.worker_pids)
        try:
            def client(idx, failures):
                try:
                    for round_no in range(6):
                        got = server.query_batch(queries, k=8)
                        if not _matches_one_generation(
                                got, expected_a, expected_b):
                            failures.append(
                                f"client {idx} round {round_no}: neither "
                                f"generation's answers"
                            )
                        server.status()
                except Exception as exc:
                    failures.append(f"client {idx}: {exc!r}")

            failures = []
            threads = [
                threading.Thread(target=client, args=(i, failures), daemon=True)
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.1)
            os.kill(server.worker_pids[0], 9)   # supervision restarts it
            server.query_batch(queries[:1], k=1)  # force the recovery now
            seen_pids |= set(server.worker_pids)
            server.reload(path_b)               # flip mid-run
            seen_pids |= set(server.worker_pids)
            for thread in threads:
                thread.join(timeout=300)
                assert not thread.is_alive()
            assert failures == []
            assert server.restarts_total >= 1
            assert server.generation == 2
            assert _same(server.query_batch(queries, k=8), expected_b)
        finally:
            server.close()
        deadline = time.monotonic() + 15
        while True:
            leftover = [p for p in seen_pids if _pid_alive(p)]
            if not leftover:
                break
            assert time.monotonic() < deadline, f"orphans: {leftover}"
            time.sleep(0.05)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
