"""Fault-injection tests for serving supervision (`repro.serve`).

The supervision contract of the default configuration
(``max_retries=1``):

* a worker that **dies** mid-query is restarted from its snapshot shard
  and the affected query block is re-scattered once — the caller gets
  the correct answers **exactly once**, bit-identical to
  ``load_index(path).query_batch(...)``, and never sees the failure;
* a worker that dies **twice** for one request exhausts the retry budget
  and surfaces the existing :class:`~repro.serve.ServerError`, naming
  the worker and its exit code;
* every scenario ends with **no orphan worker processes** — the
  restarted incarnations included.

Deterministically killing a worker *mid-request* (after the scatter, so
the coordinator is already waiting on its pipe) needs cooperation from
the worker itself: the ``REPRO_SERVE_FAULT`` one-shot hooks documented
in :mod:`repro.serve.worker` arm a specific (shard, spawn) incarnation
to exit on its next query.  ``os.kill`` from the test covers the
between-requests death.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import ShardedDBLSH
from repro.data.generators import gaussian_mixture
from repro.io import load_index, save_index
from repro.serve import ServerError, SnapshotServer

COMMON = dict(
    c=1.5, l_spaces=3, k_per_space=6, t=32, seed=0, auto_initial_radius=True
)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _assert_all_dead(pids, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while any(_alive(pid) for pid in pids):
        assert time.monotonic() < deadline, (
            f"orphan worker processes: {[p for p in pids if _alive(p)]}"
        )
        time.sleep(0.05)


def _same(results, expected) -> bool:
    return len(results) == len(expected) and all(
        r.ids == e.ids and r.distances == e.distances
        for r, e in zip(results, expected)
    )


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(900, 12, n_clusters=5, seed=11)
    rng = np.random.default_rng(13)
    queries = data[rng.choice(900, 6, replace=False)] + 0.02
    return data, queries


@pytest.fixture(scope="module")
def snapshot_path(workload, tmp_path_factory):
    data, _ = workload
    path = str(tmp_path_factory.mktemp("faults") / "sharded.npz")
    save_index(ShardedDBLSH(shards=2, **COMMON).fit(data), path)
    return path


@pytest.fixture(scope="module")
def expected(workload, snapshot_path):
    _, queries = workload
    return load_index(snapshot_path).query_batch(queries, k=5)


class TestSigkillRecovery:
    def test_sigkill_between_requests_recovers_bit_identical(
            self, workload, snapshot_path, expected):
        _, queries = workload
        server = SnapshotServer(snapshot_path, start_timeout=30,
                                query_timeout=30).start()
        seen_pids = set(server.worker_pids)
        try:
            victim = server.worker_pids[1]
            os.kill(victim, 9)
            got = server.query_batch(queries, k=5)
            # Exactly once, and exactly right: the retry's answers are
            # the answers, not a duplicate or a partial set.
            assert _same(got, expected)
            assert server.restarts_total == 1
            assert victim not in server.worker_pids
            seen_pids |= set(server.worker_pids)
            # The server is healthy, not limping: next query needs no retry.
            assert _same(server.query_batch(queries, k=5), expected)
            assert server.restarts_total == 1
            assert server.serving
        finally:
            server.close()
        _assert_all_dead(seen_pids)

    def test_status_tracks_restart(self, workload, snapshot_path, expected):
        _, queries = workload
        server = SnapshotServer(snapshot_path, start_timeout=30,
                                query_timeout=30).start()
        seen_pids = set(server.worker_pids)
        try:
            os.kill(server.worker_pids[0], 9)
            assert _same(server.query_batch(queries, k=5), expected)
            status = server.status()
            assert status["serving"] is True
            assert status["restarts"] == 1
            assert [w["state"] for w in status["workers"]] == ["ready", "ready"]
            # The restarted slot records its incarnation count.
            assert [w["spawn"] for w in status["workers"]] == [1, 0]
            seen_pids |= {w["pid"] for w in status["workers"]}
        finally:
            server.close()
        _assert_all_dead(seen_pids)


class TestMidQueryDeath:
    def test_worker_dying_on_receipt_recovers(self, workload, snapshot_path,
                                              expected, monkeypatch):
        """The worker dies *after* the scatter, with the coordinator
        already committed to gathering from it — the genuinely
        mid-request death that os.kill from a test cannot time."""
        _, queries = workload
        monkeypatch.setenv("REPRO_SERVE_FAULT", "die-on-query:0:0")
        server = SnapshotServer(snapshot_path, start_timeout=30,
                                query_timeout=30).start()
        seen_pids = set(server.worker_pids)
        try:
            got = server.query_batch(queries, k=5)
            assert _same(got, expected)
            assert server.restarts_total == 1
            seen_pids |= set(server.worker_pids)
        finally:
            server.close()
        _assert_all_dead(seen_pids)

    def test_worker_dying_twice_surfaces_server_error(
            self, workload, snapshot_path, monkeypatch):
        """Original worker dies on the query, its restarted incarnation
        dies on the re-scatter: the bounded retry gives up with the
        worker id and exit code, and the server is broken."""
        _, queries = workload
        monkeypatch.setenv(
            "REPRO_SERVE_FAULT", "die-on-query:1:0:7,die-on-query:1:1:7"
        )
        server = SnapshotServer(snapshot_path, start_timeout=30,
                                query_timeout=30).start()
        seen_pids = set(server.worker_pids)
        try:
            with pytest.raises(ServerError, match=r"worker 1 .*code 7"):
                server.query_batch(queries, k=5)
            seen_pids |= set(server.worker_pids)
            with pytest.raises(ServerError, match="broken"):
                server.query_batch(queries, k=5)
        finally:
            server.close()
        _assert_all_dead(seen_pids)

    def test_close_after_exhausted_retry_leaves_no_orphans(
            self, workload, snapshot_path, monkeypatch):
        _, queries = workload
        monkeypatch.setenv(
            "REPRO_SERVE_FAULT", "die-on-query:0:0,die-on-query:0:1"
        )
        server = SnapshotServer(snapshot_path, start_timeout=30,
                                query_timeout=30).start()
        seen_pids = set(server.worker_pids)
        with pytest.raises(ServerError):
            server.query_batch(queries, k=5)
        seen_pids |= set(server.worker_pids)
        server.close()
        _assert_all_dead(seen_pids)
        # And the same object restarts cleanly after the failure was
        # acted on — the broken state does not outlive close().
        monkeypatch.delenv("REPRO_SERVE_FAULT")
        server.start()
        try:
            assert server.query(queries[0], k=1).neighbors
        finally:
            server.close()


class TestRetryBudget:
    def test_zero_retries_fails_fast(self, workload, snapshot_path,
                                     monkeypatch):
        _, queries = workload
        monkeypatch.setenv("REPRO_SERVE_FAULT", "die-on-query:0:0")
        server = SnapshotServer(snapshot_path, start_timeout=30,
                                query_timeout=30, max_retries=0).start()
        seen_pids = set(server.worker_pids)
        try:
            with pytest.raises(ServerError, match="worker 0"):
                server.query_batch(queries, k=5)
            assert server.restarts_total == 0
        finally:
            server.close()
        _assert_all_dead(seen_pids)

    def test_two_retries_survive_two_deaths(self, workload, snapshot_path,
                                            expected, monkeypatch):
        _, queries = workload
        monkeypatch.setenv(
            "REPRO_SERVE_FAULT", "die-on-query:1:0,die-on-query:1:1"
        )
        server = SnapshotServer(snapshot_path, start_timeout=30,
                                query_timeout=30, max_retries=2).start()
        seen_pids = set(server.worker_pids)
        try:
            got = server.query_batch(queries, k=5)
            assert _same(got, expected)
            assert server.restarts_total == 2
            seen_pids |= set(server.worker_pids)
        finally:
            server.close()
        _assert_all_dead(seen_pids)
