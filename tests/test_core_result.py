"""Tests for the result/statistics dataclasses."""

from __future__ import annotations

import pytest

from repro.core.result import Neighbor, QueryResult, QueryStats


class TestNeighbor:
    def test_unpacking(self):
        point_id, dist = Neighbor(3, 1.5)
        assert point_id == 3
        assert dist == 1.5

    def test_frozen(self):
        n = Neighbor(1, 2.0)
        with pytest.raises(AttributeError):
            n.distance = 3.0  # type: ignore[misc]

    def test_equality(self):
        assert Neighbor(1, 2.0) == Neighbor(1, 2.0)
        assert Neighbor(1, 2.0) != Neighbor(2, 2.0)


class TestQueryResult:
    def test_empty(self):
        result = QueryResult()
        assert len(result) == 0
        assert result.is_empty()
        assert result.ids == []
        assert result.distances == []

    def test_accessors(self):
        result = QueryResult(neighbors=[Neighbor(5, 0.1), Neighbor(2, 0.4)])
        assert result.ids == [5, 2]
        assert result.distances == [0.1, 0.4]
        assert [n.id for n in result] == [5, 2]
        assert not result.is_empty()


class TestQueryStats:
    def test_defaults_zero(self):
        stats = QueryStats()
        assert stats.candidates_verified == 0
        assert stats.rounds == 0
        assert stats.terminated_by == ""

    def test_merge_accumulates(self):
        a = QueryStats(candidates_verified=3, distance_computations=4, rounds=1,
                       hash_evaluations=10, window_queries=2, index_node_visits=7,
                       elapsed_seconds=0.5)
        b = QueryStats(candidates_verified=2, distance_computations=1, rounds=2,
                       hash_evaluations=10, window_queries=3, index_node_visits=1,
                       elapsed_seconds=0.25)
        a.merge(b)
        assert a.candidates_verified == 5
        assert a.distance_computations == 5
        assert a.rounds == 3
        assert a.hash_evaluations == 20
        assert a.window_queries == 5
        assert a.index_node_visits == 8
        assert a.elapsed_seconds == pytest.approx(0.75)
