"""Additional property-based tests across substrates.

These widen the hypothesis coverage beyond each module's own test file:
metric-index exactness under arbitrary point clouds, grid/window duality,
and ordering properties of the probability exponents.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.probability import rho_dynamic, rho_star_bound
from repro.index.grid import GridIndex
from repro.index.mtree import MTree
from repro.utils.heaps import BoundedMaxHeap

point_clouds = st.lists(
    st.tuples(st.floats(-50, 50), st.floats(-50, 50), st.floats(-50, 50)),
    min_size=1,
    max_size=60,
)


class TestMTreeProperties:
    @given(point_clouds, st.floats(min_value=0.1, max_value=40.0))
    @settings(max_examples=30)
    def test_range_query_exact(self, raw_points, radius):
        points = np.array(raw_points, dtype=np.float64)
        tree = MTree(points, leaf_size=4, seed=0)
        query = np.zeros(3)
        got = set(tree.range_query(query, radius).tolist())
        brute = np.linalg.norm(points, axis=1)
        expected = set(np.flatnonzero(brute <= radius).tolist())
        assert got == expected

    @given(point_clouds)
    @settings(max_examples=25)
    def test_nearest_iter_matches_sort(self, raw_points):
        points = np.array(raw_points, dtype=np.float64)
        tree = MTree(points, leaf_size=4, seed=0)
        stream = [d for d, _ in tree.nearest_iter(np.zeros(3))]
        brute = np.sort(np.linalg.norm(points, axis=1))
        np.testing.assert_allclose(stream, brute, atol=1e-9)


class TestGridProperties:
    @given(
        point_clouds,
        st.floats(min_value=0.2, max_value=10.0),
        st.floats(min_value=0.1, max_value=30.0),
    )
    @settings(max_examples=30)
    def test_window_exactness_any_cell_width(self, raw_points, cell, half):
        points = np.array(raw_points, dtype=np.float64)
        grid = GridIndex(points, cell_width=cell)
        w_low = np.full(3, -half)
        w_high = np.full(3, half)
        got = set(grid.window_query(w_low, w_high).tolist())
        mask = np.all(points >= w_low, axis=1) & np.all(points <= w_high, axis=1)
        assert got == set(np.flatnonzero(mask).tolist())

    @given(point_clouds, st.floats(min_value=0.2, max_value=10.0))
    @settings(max_examples=25)
    def test_every_point_in_its_own_cell(self, raw_points, cell):
        points = np.array(raw_points, dtype=np.float64)
        grid = GridIndex(points, cell_width=cell)
        for i in range(min(5, len(points))):
            assert i in grid.cell_lookup(points[i]).tolist()


class TestExponentProperties:
    @given(st.floats(min_value=1.05, max_value=2.8))
    @settings(max_examples=40)
    def test_rho_star_below_bound_everywhere(self, c):
        w0 = 4.0 * c * c
        assert rho_dynamic(c, w0) <= rho_star_bound(c, w0) + 1e-12

    @given(
        st.floats(min_value=1.05, max_value=2.0),
        st.floats(min_value=2.0, max_value=5.0),
        st.floats(min_value=0.1, max_value=1.8),
    )
    @settings(max_examples=40)
    def test_wider_buckets_reduce_rho_star(self, c, wide, delta):
        # Bounded away from erf's float64 saturation (p == 1.0 exactly,
        # where rho degenerates to 0/0); within that region monotonicity
        # in the width is exact.
        narrow = wide - delta
        assert rho_dynamic(c, narrow * c * c) >= rho_dynamic(c, wide * c * c) - 1e-12


class TestHeapVsSortOracle:
    @given(
        st.lists(
            st.tuples(st.floats(0, 1e6), st.integers(0, 10_000)),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=1, max_value=25),
    )
    @settings(max_examples=40)
    def test_heap_equals_sorted_prefix(self, pairs, k):
        heap = BoundedMaxHeap(k)
        for dist, item in pairs:
            heap.push(dist, item)
        kept = [d for d, _ in heap.items()]
        oracle = sorted(d for d, _ in pairs)[:k]
        assert kept == pytest.approx(oracle)
