"""Runner counter-aggregation tests: the fields Table IV's shape checks use."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBLSH
from repro.baselines import LinearScan
from repro.data.generators import gaussian_mixture
from repro.eval.runner import evaluate_method


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(300, 12, n_clusters=5, seed=0)
    rng = np.random.default_rng(1)
    queries = data[rng.choice(300, 6, replace=False)] + 0.05
    return data, queries


class TestCounterAggregation:
    def test_rounds_per_query_populated(self, workload):
        data, queries = workload
        method = DBLSH(l_spaces=3, k_per_space=4, seed=0,
                       auto_initial_radius=True)
        result = evaluate_method(method, data, queries, k=5)
        assert result.rounds_per_query >= 1.0

    def test_candidates_are_means_not_totals(self, workload):
        data, queries = workload
        result = evaluate_method(LinearScan(), data, queries, k=5)
        # A scan verifies exactly n per query; the mean must equal n.
        assert result.candidates_per_query == pytest.approx(300.0)

    def test_query_time_is_positive_mean(self, workload):
        data, queries = workload
        result = evaluate_method(LinearScan(), data, queries, k=5)
        assert result.query_time_ms > 0.0

    def test_dataset_metadata(self, workload):
        data, queries = workload
        result = evaluate_method(
            LinearScan(), data, queries, k=5, dataset_name="unit"
        )
        assert result.dataset == "unit"
        assert (result.n, result.dim) == (300, 12)

    def test_custom_method_name_respected(self, workload):
        data, queries = workload
        method = LinearScan()
        method.name = "Oracle"
        result = evaluate_method(method, data, queries, k=3)
        assert result.method == "Oracle"

    def test_precomputed_ground_truth_used(self, workload):
        data, queries = workload
        from repro.data.groundtruth import exact_knn

        gt_ids, gt_dists = exact_knn(queries, data, 5)
        result = evaluate_method(
            LinearScan(), data, queries, k=5, gt_ids=gt_ids, gt_dists=gt_dists
        )
        assert result.recall == pytest.approx(1.0)
