"""Tests for the flattened R*-tree traversal (FlatRStarTree).

The frozen form must answer every window query with exactly the ids the
pointer-based traversal streams — in the same candidate order, because
DB-LSH's budget truncation makes query results order-dependent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.flat import FlatRStarTree, concat_ranges
from repro.index.rstar import RStarTree


def _legacy_stream(tree, w_low, w_high):
    chunks = list(tree.window_query_iter(w_low, w_high))
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


class TestConcatRanges:
    def test_empty(self):
        starts = np.empty(0, dtype=np.int64)
        assert concat_ranges(starts, starts).size == 0

    def test_mixed_ranges(self):
        starts = np.array([5, 0, 9], dtype=np.int64)
        ends = np.array([8, 0, 11], dtype=np.int64)
        assert concat_ranges(starts, ends).tolist() == [5, 6, 7, 9, 10]

    def test_single_range(self):
        out = concat_ranges(np.array([3], dtype=np.int64), np.array([7], dtype=np.int64))
        assert out.tolist() == [3, 4, 5, 6]


class TestFreeze:
    def test_freeze_preserves_contents(self, rng):
        points = rng.standard_normal((500, 4))
        tree = RStarTree.bulk_load(points, max_entries=8)
        flat = tree.freeze()
        assert len(flat) == 500
        assert flat.dim == 4
        assert flat.height == tree.height
        assert sorted(flat.all_ids().tolist()) == sorted(tree.all_ids().tolist())
        assert flat.num_leaves >= 500 // 8

    def test_empty_tree(self):
        flat = RStarTree(2).freeze()
        assert len(flat) == 0
        lo, hi = np.array([-1.0, -1.0]), np.array([1.0, 1.0])
        assert flat.window_query(lo, hi).size == 0
        assert flat.window_count(lo, hi) == 0

    def test_single_leaf_root(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        flat = RStarTree.bulk_load(points, max_entries=8).freeze()
        out = flat.window_query(np.array([-0.5, -0.5]), np.array([1.5, 1.5]))
        assert sorted(out.tolist()) == [0, 1]

    def test_freeze_of_insert_built_tree(self, rng):
        points = rng.standard_normal((300, 3))
        tree = RStarTree(3, max_entries=8)
        for i, p in enumerate(points):
            tree.insert(i, p)
        flat = tree.freeze()
        for _ in range(10):
            center = rng.standard_normal(3)
            lo, hi = center - 1.0, center + 1.0
            assert np.array_equal(_legacy_stream(tree, lo, hi),
                                  flat.window_query(lo, hi))

    def test_freeze_is_a_snapshot(self, rng):
        points = rng.standard_normal((100, 3))
        tree = RStarTree.bulk_load(points, max_entries=8)
        flat = tree.freeze()
        tree.insert(100, np.zeros(3))
        # The snapshot still answers from the pre-insert state.
        assert len(flat) == 100
        assert 100 not in set(flat.all_ids().tolist())

    def test_bad_chunk_points(self, rng):
        tree = RStarTree.bulk_load(rng.standard_normal((50, 2)))
        with pytest.raises(ValueError, match="chunk_points"):
            FlatRStarTree(tree, chunk_points=0)

    def test_window_dim_mismatch(self, rng):
        flat = RStarTree.bulk_load(rng.standard_normal((50, 3))).freeze()
        with pytest.raises(ValueError, match="dimensionality"):
            list(flat.window_query_iter(np.zeros(2), np.ones(2)))


class TestTraversalEquivalence:
    @pytest.mark.parametrize("n,dim,max_entries", [
        (1, 3, 8), (40, 2, 4), (500, 4, 8), (3000, 6, 32),
    ])
    def test_same_ids_same_order_as_pointer_traversal(self, rng, n, dim, max_entries):
        points = rng.standard_normal((n, dim)) * 3.0
        tree = RStarTree.bulk_load(points, max_entries=max_entries)
        flat = tree.freeze()
        for _ in range(25):
            center = rng.standard_normal(dim) * 3.0
            half = rng.uniform(0.1, 4.0)
            lo, hi = center - half, center + half
            expected = _legacy_stream(tree, lo, hi)
            assert np.array_equal(expected, flat.window_query(lo, hi))

    def test_full_coverage_window(self, rng):
        points = rng.standard_normal((800, 5))
        tree = RStarTree.bulk_load(points, max_entries=16)
        flat = tree.freeze()
        lo, hi = points.min(axis=0) - 1.0, points.max(axis=0) + 1.0
        out = flat.window_query(lo, hi)
        assert out.shape[0] == 800
        assert np.array_equal(_legacy_stream(tree, lo, hi), out)

    def test_first_chunk_hint_changes_chunking_not_results(self, rng):
        points = rng.standard_normal((2000, 4))
        tree = RStarTree.bulk_load(points, max_entries=16)
        flat = tree.freeze()
        lo, hi = points.min(axis=0), points.max(axis=0)
        small = list(flat.window_query_iter(lo, hi, first_chunk=8))
        large = list(flat.window_query_iter(lo, hi, first_chunk=10**6))
        assert len(small) > len(large)
        assert np.array_equal(np.concatenate(small), np.concatenate(large))

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 300),
        dim=st.integers(1, 5),
        half=st.floats(0.05, 5.0),
    )
    def test_property_equivalence(self, seed, n, dim, half):
        gen = np.random.default_rng(seed)
        points = gen.standard_normal((n, dim)) * 2.0
        tree = RStarTree.bulk_load(points, max_entries=8)
        flat = tree.freeze()
        center = gen.standard_normal(dim)
        lo, hi = center - half, center + half
        assert np.array_equal(_legacy_stream(tree, lo, hi),
                              flat.window_query(lo, hi))
        assert flat.window_count(lo, hi) == tree.window_count(lo, hi)
