"""Delta-buffer mutation parity (repro.core.delta, repro.core.plan).

The headline contract: an index mutated in place — inserts landing in
the delta buffer, deletes landing in tombstones — answers queries
exactly like an index refit from scratch on the surviving rows (ids
mapped through the survivor list).  Randomized insert/delete sequences
pin it at n=1k in tier-1 and n=10k in the slow tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBLSH
from repro.core.delta import DeltaIndex
from repro.core.plan import merge_live_batches, merge_live_results
from repro.core.result import Neighbor, QueryResult, QueryStats
from repro.data.generators import gaussian_mixture

PARAMS = dict(
    c=1.5, l_spaces=4, k_per_space=8, t=64, seed=0, auto_initial_radius=True
)


def _mutate_and_refit(n, n_insert, n_delete, k, seed):
    """Apply a random mutation sequence two ways and compare answers.

    Way one: fit on the base rows, ``add`` the inserts (delta path),
    ``delete`` a random id set.  Way two: refit from scratch on exactly
    the surviving rows.  Both answer the same queries; the refit's ids
    are mapped back through the survivor list before comparing.
    """
    rng = np.random.default_rng(seed)
    data = gaussian_mixture(n, 16, n_clusters=8, seed=seed)
    extra = gaussian_mixture(n_insert, 16, n_clusters=8, seed=seed + 1)
    queries = data[rng.choice(n, 12, replace=False)] + 0.05

    live = DBLSH(**PARAMS).fit(data)
    # Interleave: delete some base rows, insert, delete across both.
    first_deletes = rng.choice(n, n_delete // 2, replace=False)
    live.delete(first_deletes)
    live.add(extra)
    assert live.num_pending == n_insert  # inserts took the delta path
    rest = rng.choice(n + n_insert, n_delete - n_delete // 2, replace=False)
    live.delete(rest)

    tombs = set(int(t) for t in first_deletes) | set(int(t) for t in rest)
    everything = np.vstack([data, extra])
    survivors = np.array(
        [i for i in range(n + n_insert) if i not in tombs], dtype=np.int64
    )
    refit = DBLSH(**PARAMS).fit(everything[survivors])

    for q in queries:
        got = live.query(q, k=k)
        want = refit.query(q, k=k)
        want_ids = [int(survivors[i]) for i in want.ids]
        assert got.ids == want_ids, (got.ids, want_ids)
        assert got.distances == pytest.approx(want.distances)
        assert not (set(got.ids) & tombs)
    return live


class TestDeltaRefitParity:
    def test_parity_1k(self):
        _mutate_and_refit(n=1000, n_insert=60, n_delete=40, k=10, seed=3)

    def test_parity_1k_other_sequence(self):
        _mutate_and_refit(n=1000, n_insert=25, n_delete=80, k=5, seed=17)

    def test_parity_10k(self):
        _mutate_and_refit(n=10_000, n_insert=300, n_delete=250, k=10, seed=7)

    def test_compaction_preserves_answers(self):
        live = _mutate_and_refit(n=1000, n_insert=40, n_delete=30, k=10, seed=5)
        rng = np.random.default_rng(9)
        queries = live.data[rng.choice(live.num_points, 8, replace=False)] + 0.03
        before = [live.query(q, k=10) for q in queries]
        assert live.compact() is True
        assert live.num_pending == 0
        for q, want in zip(queries, before):
            got = live.query(q, k=10)
            assert got.ids == want.ids
            assert got.distances == pytest.approx(want.distances)

    def test_batch_matches_single(self):
        data = gaussian_mixture(800, 16, n_clusters=6, seed=2)
        live = DBLSH(**PARAMS).fit(data)
        live.add(data[:10] + 40.0)
        live.delete(np.arange(5))
        queries = data[20:26] + 0.05
        batch = live.query_batch(queries, k=6)
        assert [r.ids for r in batch] == [live.query(q, k=6).ids for q in queries]


class TestDeltaIndex:
    def test_sweep_is_exact_topk(self, rng):
        points = rng.standard_normal((40, 8))
        delta = DeltaIndex(8)
        for i, p in enumerate(points):
            delta.append(1000 + i, p)
        queries = rng.standard_normal((5, 8))
        results = delta.view().sweep(queries, k=7)
        for q, result in zip(queries, results):
            exact = np.linalg.norm(points - q, axis=1)
            order = np.lexsort((1000 + np.arange(40), exact))[:7]
            assert result.ids == [1000 + int(i) for i in order]
            assert result.distances == pytest.approx(
                [float(exact[i]) for i in order]
            )
            assert result.stats.distance_computations == 40

    def test_sweep_excludes_tombstones(self, rng):
        delta = DeltaIndex(4)
        for i in range(6):
            delta.append(i, np.full(4, float(i)))
        results = delta.view().sweep(np.zeros((1, 4)), k=6, exclude={0, 2})
        assert results[0].ids == [1, 3, 4, 5]
        assert results[0].stats.distance_computations == 4

    def test_view_is_stable_under_append_and_trim(self, rng):
        delta = DeltaIndex(3, capacity=2)
        for i in range(3):
            delta.append(i, np.full(3, float(i)))
        view = delta.view()
        # Growth past capacity and a trim both reallocate; the captured
        # view keeps reading the state at capture time.
        for i in range(3, 40):
            delta.append(i, np.full(3, float(i)))
        delta.trim(10)
        assert len(view) == 3
        assert list(view.ids) == [0, 1, 2]
        assert view.points[2, 0] == 2.0
        assert len(delta) == 30
        assert list(delta.view().ids) == list(range(10, 40))

    def test_empty_sweep(self):
        results = DeltaIndex(4).view().sweep(np.zeros((2, 4)), k=3)
        assert [r.ids for r in results] == [[], []]


def _result(pairs, **stats):
    return QueryResult(
        neighbors=[Neighbor(i, d) for i, d in pairs],
        stats=QueryStats(**stats),
    )


class TestLiveMerge:
    def test_tombstones_filtered_and_order_kept(self):
        base = _result([(4, 0.1), (9, 0.2), (1, 0.4)])
        delta = _result([(100, 0.15), (101, 0.5)])
        merged = merge_live_results(base, delta, {9}, k=3)
        assert [(n.id, n.distance) for n in merged.neighbors] == [
            (4, 0.1), (100, 0.15), (1, 0.4)
        ]

    def test_dedup_keeps_first(self):
        # During a compaction flip the folded rows can briefly appear in
        # both the new snapshot generation and the untrimmed delta.
        base = _result([(7, 0.1), (8, 0.3)])
        delta = _result([(7, 0.1), (9, 0.2)])
        merged = merge_live_results(base, delta, set(), k=4)
        assert merged.ids == [7, 9, 8]

    def test_stats_add_delta_work(self):
        base = _result([(1, 0.1)], candidates_verified=10,
                       distance_computations=20)
        delta = _result([(2, 0.2)], candidates_verified=3,
                        distance_computations=3)
        merged = merge_live_results(base, delta, set(), k=2)
        assert merged.stats.candidates_verified == 13
        assert merged.stats.distance_computations == 23

    def test_ragged_batches_fail_loud(self):
        with pytest.raises(ValueError, match="ragged"):
            merge_live_batches([_result([])], [], set(), k=1)
