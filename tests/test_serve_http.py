"""Tests for the HTTP front door: parity, batching, shedding, metrics.

The gateway's contract, in the order the classes below pin it:

* **parity** — answers served over HTTP (micro-batched or not, one
  client or many) are bit-identical to ``load_index(path).query_batch``
  in process: same ids, same distances, surviving the JSON float round
  trip (``repr`` shortest-round-trip on both ends);
* **batching** — requests arriving within the window coalesce into one
  dispatch (observable in the batch-size histogram), a zero window
  never waits, ``max_batch`` caps coalescing, and mixed ``k`` values
  share a window but dispatch separately;
* **admission control** — a full queue sheds with ``429`` +
  ``Retry-After`` while every admitted request still completes (zero
  dropped in-flight work);
* **metrics** — the registry's counts reconcile exactly with the
  requests made against it;
* **health** — ``/healthz`` flips 200/503 with the serving state
  machine, through reloads and brokenness.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

import numpy as np
import pytest

from repro import DBLSH
from repro.data.generators import gaussian_mixture
from repro.io import load_index, save_index
from repro.serve import (
    GatewayError,
    GatewayMetrics,
    HttpGateway,
    MutableSnapshotServer,
    SnapshotServer,
)
from repro.serve.metrics import Counter, Histogram

COMMON = dict(c=1.5, l_spaces=3, k_per_space=6, t=32, seed=0, auto_initial_radius=True)


# ----------------------------------------------------------------------
# HTTP helpers (stdlib http.client: keep-alive by default, like a real
# client fleet would behave)
# ----------------------------------------------------------------------


def _request(port, method, path, payload=None, timeout=30.0, headers=None):
    """One HTTP request; returns (status, parsed body, headers dict)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        data = response.read()
        return response.status, json.loads(data), dict(response.getheaders())
    finally:
        conn.close()


def _post(port, path, payload, timeout=30.0):
    return _request(port, "POST", path, payload, timeout)


def _get(port, path, timeout=30.0):
    return _request(port, "GET", path, None, timeout)


def _raw(port, data: bytes, timeout=10.0) -> bytes:
    """Send raw bytes, return everything the server answers."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(data)
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
    return b"".join(chunks)


def _results_match(json_results, expected) -> bool:
    """JSON rows == QueryResult rows, ids and distances exactly."""
    return len(json_results) == len(expected) and all(
        row["ids"] == r.ids and row["distances"] == r.distances
        for row, r in zip(json_results, expected)
    )


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(1000, 12, n_clusters=5, seed=3)
    rng = np.random.default_rng(7)
    queries = data[rng.choice(1000, 12, replace=False)] + 0.02
    return data, queries


@pytest.fixture(scope="module")
def snapshot_path(workload, tmp_path_factory):
    data, _ = workload
    path = str(tmp_path_factory.mktemp("http") / "index.npz")
    save_index(DBLSH(**COMMON).fit(data), path)
    return path


@pytest.fixture(scope="module")
def server(snapshot_path):
    server = SnapshotServer(snapshot_path, start_timeout=60, query_timeout=60)
    server.start()
    yield server
    server.close()


@pytest.fixture(scope="module")
def gateway(server):
    gateway = HttpGateway(server, batch_window=0.01, max_batch=16).start()
    yield gateway
    gateway.close()


class _FakeServer:
    """A stand-in server: controllable blocking, real in-process answers.

    ``query_batch`` signals ``entered``, waits for ``release``, then
    answers from a real in-process index — so shedding tests can hold
    the dispatch open deterministically while parity still holds for
    everything admitted.
    """

    def __init__(self, index):
        self.index = index
        self.dim = index.dim
        self.entered = threading.Event()
        self.release = threading.Event()
        self.release.set()
        self.calls = []

    def query_batch(self, queries, k=1, timeout=None):
        self.calls.append(queries.shape[0])
        self.entered.set()
        assert self.release.wait(30), "test never released the fake server"
        return self.index.query_batch(queries, k=k)

    def status(self):
        return {"serving": True, "generation": 1, "broken": None}


@pytest.fixture()
def fake_server(snapshot_path):
    return _FakeServer(load_index(snapshot_path))


# ----------------------------------------------------------------------
# Parity
# ----------------------------------------------------------------------


class TestParity:
    def test_batch_matches_inprocess(self, workload, snapshot_path, gateway):
        _, queries = workload
        expected = load_index(snapshot_path).query_batch(queries, k=5)
        status, body, _ = _post(
            gateway.port, "/query", {"queries": queries.tolist(), "k": 5}
        )
        assert status == 200
        assert _results_match(body["results"], expected)

    def test_single_query_matches_batch(self, workload, snapshot_path, gateway):
        _, queries = workload
        expected = load_index(snapshot_path).query_batch(queries, k=3)
        for q, exp in zip(queries, expected):
            status, body, _ = _post(
                gateway.port, "/query", {"query": q.tolist(), "k": 3}
            )
            assert status == 200
            assert _results_match(body["results"], [exp])

    def test_concurrent_clients_reassemble_bit_identical(
        self, workload, snapshot_path, gateway
    ):
        """N clients, one slice each, answers coalesced by the batcher:
        reassembled answers equal the in-process batch exactly."""
        _, queries = workload
        expected = load_index(snapshot_path).query_batch(queries, k=4)
        slices = np.array_split(np.arange(queries.shape[0]), 4)
        answers = {}
        failures = []

        def run(idx, rows):
            try:
                status, body, _ = _post(
                    gateway.port,
                    "/query",
                    {"queries": queries[rows].tolist(), "k": 4},
                )
                assert status == 200, body
                answers[idx] = body["results"]
            except Exception as exc:  # surfaced after join
                failures.append(exc)

        threads = [
            threading.Thread(target=run, args=(i, rows))
            for i, rows in enumerate(slices)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not failures
        reassembled = [row for i in range(len(slices)) for row in answers[i]]
        assert _results_match(reassembled, expected)


# ----------------------------------------------------------------------
# Micro-batching semantics
# ----------------------------------------------------------------------


class TestBatching:
    def test_window_coalesces_concurrent_requests(self, workload, fake_server):
        """Two requests inside one window -> one dispatch of 2 requests."""
        _, queries = workload
        with HttpGateway(fake_server, batch_window=0.5, max_batch=2) as gateway:
            results = []

            def post_one(i):
                results.append(
                    _post(gateway.port, "/query", {"query": queries[i].tolist(), "k": 2})
                )

            threads = [threading.Thread(target=post_one, args=(i,)) for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert [status for status, _, _ in results] == [200, 200]
            snap = gateway.metrics.snapshot()
            # max_batch=2 closed the window as soon as both arrived; the
            # histogram must have seen the coalesced pair.
            assert snap["batch"]["max"] == 2
            # ...and the server saw them as ONE query_batch call of 2 rows.
            assert 2 in fake_server.calls

    def test_zero_window_serves_sequential_requests_alone(
        self, workload, fake_server
    ):
        _, queries = workload
        with HttpGateway(fake_server, batch_window=0.0) as gateway:
            for i in range(3):
                status, _, _ = _post(
                    gateway.port, "/query", {"query": queries[i].tolist(), "k": 2}
                )
                assert status == 200
            snap = gateway.metrics.snapshot()
            assert snap["batch"]["count"] == 3
            assert snap["batch"]["max"] == 1

    def test_mixed_k_share_window_but_dispatch_separately(
        self, workload, snapshot_path, fake_server
    ):
        _, queries = workload
        index = load_index(snapshot_path)
        with HttpGateway(fake_server, batch_window=0.5, max_batch=2) as gateway:
            results = {}

            def post_one(i, k):
                results[k] = _post(
                    gateway.port, "/query", {"query": queries[i].tolist(), "k": k}
                )

            threads = [
                threading.Thread(target=post_one, args=(0, 3)),
                threading.Thread(target=post_one, args=(1, 7)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            for k, i in ((3, 0), (7, 1)):
                status, body, _ = results[k]
                assert status == 200
                assert _results_match(
                    body["results"], index.query_batch(queries[i][None, :], k=k)
                )
            # One window, two dispatches of one request each (distinct k).
            assert gateway.metrics.snapshot()["batch"]["max"] == 1
            assert sorted(fake_server.calls) == [1, 1]

    def test_max_batch_caps_coalescing(self, workload, fake_server):
        _, queries = workload
        with HttpGateway(
            fake_server, batch_window=0.5, max_batch=2, queue_limit=16
        ) as gateway:
            statuses = []

            def post_one(i):
                status, _, _ = _post(
                    gateway.port, "/query", {"query": queries[i].tolist(), "k": 2}
                )
                statuses.append(status)

            threads = [threading.Thread(target=post_one, args=(i,)) for i in range(5)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert statuses == [200] * 5
            assert gateway.metrics.snapshot()["batch"]["max"] <= 2


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class TestShedding:
    def test_full_queue_sheds_429_and_inflight_completes(
        self, workload, snapshot_path, fake_server
    ):
        """queue_limit pending + 1 -> 429 with Retry-After; everything
        admitted before and during the overload still answers exactly."""
        _, queries = workload
        index = load_index(snapshot_path)
        fake_server.release.clear()  # hold the first dispatch open
        admitted = {}
        failures = []

        def post_one(i):
            try:
                admitted[i] = _post(
                    gateway.port,
                    "/query",
                    {"query": queries[i].tolist(), "k": 2},
                    timeout=60.0,
                )
            except Exception as exc:
                failures.append(exc)

        with HttpGateway(
            fake_server, batch_window=0.0, max_batch=8, queue_limit=2
        ) as gateway:
            # R0 is pulled by the batcher and blocks inside the fake
            # server; the queue is empty again once it is dispatched.
            t0 = threading.Thread(target=post_one, args=(0,))
            t0.start()
            assert fake_server.entered.wait(30)
            # R1, R2 fill the bounded queue while the dispatch is held.
            waiters = [threading.Thread(target=post_one, args=(i,)) for i in (1, 2)]
            for t in waiters:
                t.start()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if gateway.metrics.snapshot()["queue_depth"] >= 2:
                    break
                time.sleep(0.005)
            assert gateway.metrics.snapshot()["queue_depth"] == 2

            # R3 finds the queue full: shed, not parked.
            status, body, headers = _post(
                gateway.port, "/query", {"query": queries[3].tolist(), "k": 2}
            )
            assert status == 429
            assert "admission queue full" in body["error"]
            assert int(headers["Retry-After"]) >= 1

            # Release: every admitted request completes, bit-identical.
            fake_server.release.set()
            t0.join(60)
            for t in waiters:
                t.join(60)
            assert not failures
            for i in range(3):
                status, body, _ = admitted[i]
                assert status == 200
                assert _results_match(
                    body["results"], index.query_batch(queries[i][None, :], k=2)
                )
            snap = gateway.metrics.snapshot()
            assert snap["shed_total"] == 1
            assert snap["endpoints"]["query"]["statuses"]["429"] == 1
            assert snap["endpoints"]["query"]["statuses"]["200"] == 3


# ----------------------------------------------------------------------
# Metrics accounting
# ----------------------------------------------------------------------


class TestMetrics:
    def test_registry_reconciles_with_requests_made(self, workload, server):
        _, queries = workload
        metrics = GatewayMetrics()
        with HttpGateway(
            server, batch_window=0.0, metrics=metrics
        ) as gateway:
            for i in range(3):
                status, _, _ = _post(
                    gateway.port, "/query", {"query": queries[i].tolist(), "k": 2}
                )
                assert status == 200
            assert _get(gateway.port, "/healthz")[0] == 200
            assert _get(gateway.port, "/status")[0] == 200
            assert _post(gateway.port, "/query", {"bad": 1})[0] == 400
            _get(gateway.port, "/metrics")
            _, snap, _ = _get(gateway.port, "/metrics")

        query = snap["endpoints"]["query"]
        assert query["count"] == 4
        assert query["statuses"] == {"200": 3, "400": 1}
        assert snap["endpoints"]["healthz"]["statuses"] == {"200": 1}
        assert snap["endpoints"]["status"]["statuses"] == {"200": 1}
        # The second /metrics read sees exactly the first one recorded.
        assert snap["endpoints"]["metrics"]["count"] == 1
        assert snap["requests_total"] == 4 + 1 + 1 + 1
        assert snap["shed_total"] == 0
        assert snap["queue_depth"] == 0
        assert snap["batch"]["count"] == 3  # the 400 never reached the batcher
        latency = query["latency_seconds"]
        assert latency["count"] == 4
        assert 0 <= latency["p50"] <= latency["p90"] <= latency["p99"]
        assert latency["sum"] > 0

    def test_histogram_quantiles_interpolate_and_saturate(self):
        h = Histogram((1.0, 2.0, 4.0))
        assert h.quantile(0.5) == 0.0  # empty
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.count == 4 and h.sum == pytest.approx(6.5)
        # Rank 2 of 4 lands mid-bucket (1, 2]: interpolated inside it.
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert 2.0 <= h.quantile(0.99) <= 4.0
        h.observe(1000.0)  # overflow bucket
        assert h.quantile(1.0) == 4.0  # saturates at the last bound
        snap = h.snapshot()
        assert snap["buckets"]["le_inf"] == 1
        assert snap["max"] == 1000.0
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_counter_and_bad_depth_probe(self):
        c = Counter()
        c.add()
        c.add(4)
        assert c.value == 5
        m = GatewayMetrics()
        m.set_queue_depth_probe(lambda: 1 / 0)
        m.set_connections_probe(lambda: -7)
        snap = m.snapshot()
        # A raising probe clamps its gauge and counts the failure; a
        # negative sample is clamped too — dashboards doing arithmetic
        # on the gauges must never see a sentinel.
        assert snap["queue_depth"] == 0
        assert snap["connections"]["open"] == 0
        assert snap["probe_errors_total"] == 1
        assert m.snapshot()["probe_errors_total"] == 2


# ----------------------------------------------------------------------
# Health and lifecycle
# ----------------------------------------------------------------------


class TestHealth:
    def test_healthz_tracks_reload_generations(self, snapshot_path, server):
        with HttpGateway(server, batch_window=0.0) as gateway:
            status, body, _ = _get(gateway.port, "/healthz")
            assert (status, body["ok"]) == (200, True)
            generation = body["generation"]
            server.reload(snapshot_path)
            status, body, _ = _get(gateway.port, "/healthz")
            assert (status, body["ok"]) == (200, True)
            assert body["generation"] == generation + 1

    def test_healthz_503_when_stopped_or_broken(self, snapshot_path, workload):
        stopped = SnapshotServer(snapshot_path)  # never started
        with HttpGateway(stopped, batch_window=0.0) as gateway:
            status, body, _ = _get(gateway.port, "/healthz")
            assert (status, body["ok"]) == (503, False)

        class _Broken:
            dim = workload[0].shape[1]

            def status(self):
                return {
                    "serving": False,
                    "generation": 3,
                    "broken": "worker 0 (pid 1) died",
                }

        with HttpGateway(_Broken(), batch_window=0.0) as gateway:
            status, body, _ = _get(gateway.port, "/healthz")
            assert status == 503
            assert body["broken"] == "worker 0 (pid 1) died"

    def test_query_on_stopped_server_is_503_not_hang(self, snapshot_path, workload):
        _, queries = workload
        stopped = SnapshotServer(snapshot_path)
        with HttpGateway(stopped, batch_window=0.0) as gateway:
            status, body, _ = _post(
                gateway.port, "/query", {"query": queries[0].tolist(), "k": 2}
            )
            assert status == 503
            assert "not serving" in body["error"]

    def test_status_carries_gateway_block(self, gateway, server):
        status, body, _ = _get(gateway.port, "/status")
        assert status == 200
        assert body["serving"] is True
        block = body["gateway"]
        assert block["address"] == gateway.address
        assert block["max_batch"] == gateway.max_batch
        assert block["queue_limit"] == gateway.queue_limit
        assert block["mutable"] is False

    def test_lifecycle_double_start_and_conflicting_bind(self, server):
        gateway = HttpGateway(server).start()
        try:
            with pytest.raises(GatewayError, match="already started"):
                gateway.start()
            with pytest.raises(GatewayError, match="could not listen"):
                HttpGateway(server, port=gateway.port).start()
        finally:
            gateway.close()
        gateway.close()  # idempotent
        # A closed gateway can be started again (fresh port).
        reopened = gateway.start()
        try:
            assert _get(reopened.port, "/healthz")[0] == 200
        finally:
            gateway.close()

    def test_constructor_validation(self, server):
        with pytest.raises(ValueError, match="batch_window"):
            HttpGateway(server, batch_window=-1)
        with pytest.raises(ValueError, match="max_batch"):
            HttpGateway(server, max_batch=0)
        with pytest.raises(ValueError, match="queue_limit"):
            HttpGateway(server, queue_limit=0)


# ----------------------------------------------------------------------
# Protocol edges
# ----------------------------------------------------------------------


class TestProtocol:
    def test_unknown_path_and_wrong_methods(self, gateway):
        assert _get(gateway.port, "/nope")[0] == 404
        assert _get(gateway.port, "/query")[0] == 405
        assert _post(gateway.port, "/healthz", {})[0] == 405
        assert _post(gateway.port, "/metrics", {})[0] == 405

    def test_malformed_bodies_are_400(self, gateway, workload):
        _, queries = workload
        q = queries[0].tolist()
        cases = [
            {"k": 2},  # neither query nor queries
            {"query": q, "queries": [q], "k": 2},  # both
            {"query": q, "k": 0},  # bad k
            {"query": q, "k": True},  # bool is not an int here
            {"query": [[1.0, 2.0]], "k": 2},  # nested single query
            {"query": q[:-1], "k": 2},  # wrong dimensionality
            {"queries": [], "k": 2},  # empty batch
            {"query": ["a"] * len(q), "k": 2},  # non-numeric
            {"query": [float("nan")] * len(q), "k": 2},  # non-finite
        ]
        for payload in cases:
            status, body, _ = _post(gateway.port, "/query", payload)
            assert status == 400, payload
            assert "error" in body
        conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            conn.request("POST", "/query", body="{not json")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_raw_protocol_violations(self, gateway):
        assert b"400" in _raw(gateway.port, b"NONSENSE\r\n\r\n").split(b"\r\n")[0]
        assert (
            b"411"
            in _raw(
                gateway.port, b"POST /query HTTP/1.1\r\nHost: x\r\n\r\n"
            ).split(b"\r\n")[0]
        )
        # chunked is supported now; anything else stays 501.
        assert (
            b"501"
            in _raw(
                gateway.port,
                b"POST /query HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
            ).split(b"\r\n")[0]
        )

    def test_chunked_request_bodies(self, gateway, workload):
        _, queries = workload
        payload = json.dumps({"query": queries[0].tolist(), "k": 2}).encode()

        def chunked(body: bytes, size: int) -> bytes:
            pieces = [body[i : i + size] for i in range(0, len(body), size)]
            framed = b"".join(
                b"%x\r\n%s\r\n" % (len(p), p) for p in pieces
            )
            return (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
                + framed
                + b"0\r\n\r\n"
            )

        # A body split across many small chunks parses and answers 200.
        response = _raw(gateway.port, chunked(payload, 7))
        assert b"200" in response.split(b"\r\n")[0]
        assert b'"results"' in response
        # Chunk extensions are tolerated, trailers are discarded.
        exotic = (
            b"POST /query HTTP/1.1\r\nHost: x\r\n"
            b"Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
            + b"%x;ext=1\r\n%s\r\n" % (len(payload), payload)
            + b"0\r\nX-Trailer: ignored\r\n\r\n"
        )
        assert b"200" in _raw(gateway.port, exotic).split(b"\r\n")[0]
        # Malformed chunk size is a 400, not a hang or a 500.
        garbage = (
            b"POST /query HTTP/1.1\r\nHost: x\r\n"
            b"Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
            b"zz\r\n"
        )
        assert b"400" in _raw(gateway.port, garbage).split(b"\r\n")[0]

    def test_chunked_body_hits_the_413_cap_without_buffering(
        self, workload, server
    ):
        with HttpGateway(server, batch_window=0.0, max_body_bytes=64) as gateway:
            # Declared chunk sizes alone trip the cap: the data bytes for
            # the oversized chunk are never sent, yet the refusal arrives.
            request = (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
                b"1000\r\n"
            )
            assert b"413" in _raw(gateway.port, request).split(b"\r\n")[0]

    def test_oversized_body_is_413(self, workload, server):
        _, queries = workload
        with HttpGateway(server, batch_window=0.0, max_body_bytes=64) as gateway:
            status, body, _ = _post(
                gateway.port, "/query", {"queries": queries.tolist(), "k": 2}
            )
            assert status == 413

    def test_keep_alive_reuses_one_connection(self, gateway, workload):
        _, queries = workload
        conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            for i in range(3):
                conn.request(
                    "POST",
                    "/query",
                    body=json.dumps({"query": queries[i].tolist(), "k": 2}),
                )
                response = conn.getresponse()
                assert response.status == 200
                response.read()  # drain so the connection can be reused
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Resilience: deadlines, connection lifecycle, drain, request counting
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_x_timeout_ms_answers_504_within_twice_the_budget(
        self, workload, fake_server
    ):
        """A stuck backend must not hold a deadlined request hostage:
        the gateway itself fails it with 504 on time, and serving
        resumes once the backend unblocks."""
        _, queries = workload
        fake_server.release.clear()
        with HttpGateway(fake_server, batch_window=0.0) as gateway:
            started = time.monotonic()
            status, body, _ = _request(
                gateway.port, "POST", "/query",
                {"query": queries[0].tolist(), "k": 2},
                headers={"X-Timeout-Ms": "300"},
            )
            elapsed = time.monotonic() - started
            assert status == 504
            assert "deadline" in body["error"]
            assert elapsed < 0.6, f"504 took {elapsed:.2f}s for a 0.3s budget"
            fake_server.release.set()
            status, _, _ = _post(
                gateway.port, "/query", {"query": queries[1].tolist(), "k": 2}
            )
            assert status == 200
            snap = gateway.metrics.snapshot()
            assert snap["deadline_exceeded_total"] == 1
            assert snap["endpoints"]["query"]["statuses"]["504"] == 1

    def test_default_timeout_applies_without_a_header(
        self, workload, fake_server
    ):
        _, queries = workload
        fake_server.release.clear()
        with HttpGateway(fake_server, batch_window=0.0,
                         default_timeout=0.3) as gateway:
            status, body, _ = _post(
                gateway.port, "/query", {"query": queries[0].tolist(), "k": 2}
            )
            assert status == 504
            fake_server.release.set()

    def test_generous_budget_is_invisible(self, workload, snapshot_path,
                                          gateway):
        _, queries = workload
        expected = load_index(snapshot_path).query_batch(queries[:1], k=3)
        status, body, _ = _request(
            gateway.port, "POST", "/query",
            {"query": queries[0].tolist(), "k": 3},
            headers={"X-Timeout-Ms": "30000"},
        )
        assert status == 200
        assert _results_match(body["results"], expected)

    def test_invalid_timeout_header_is_400(self, workload, gateway):
        _, queries = workload
        payload = {"query": queries[0].tolist(), "k": 2}
        for bad in ("nope", "-5", "0", "inf"):
            status, body, _ = _request(
                gateway.port, "POST", "/query", payload,
                headers={"X-Timeout-Ms": bad},
            )
            assert status == 400, bad
            assert "X-Timeout-Ms" in body["error"]

    def test_server_side_deadline_maps_to_504_not_503(self, workload):
        """A typed DeadlineExceeded from the engine is a deadline miss
        (504), not a serving failure (503) — even though the exception
        subclasses ServerError."""
        from repro.serve import DeadlineExceeded

        _, queries = workload

        class _Expired:
            dim = queries.shape[1]

            def query_batch(self, queries, k=1, timeout=None):
                raise DeadlineExceeded("request spent its budget")

            def status(self):
                return {"serving": True, "generation": 1, "broken": None}

        with HttpGateway(_Expired(), batch_window=0.0) as gateway:
            status, body, _ = _request(
                gateway.port, "POST", "/query",
                {"query": queries[0].tolist(), "k": 2},
                headers={"X-Timeout-Ms": "5000"},
            )
            assert status == 504
            # The engine's own typed message is surfaced verbatim.
            assert "spent its budget" in body["error"]

    def test_retry_after_hint_tracks_observed_batch_latency(self, server):
        with HttpGateway(server, batch_window=0.002, max_batch=8) as gateway:
            # Cold gateway: nothing observed yet, fall back to a small
            # constant derived from the batch window.
            assert gateway._retry_after_hint() == 1
            for _ in range(10):
                gateway.metrics.batch_latency.observe(2.0)
            # p50 ~ 1.75s (bucket interpolation), one batch of backlog.
            assert gateway._retry_after_hint() == 2
            # Dispatched-but-unanswered requests count as backlog even
            # though they are invisible to queue.qsize().
            gateway._dispatched = 16
            assert gateway._retry_after_hint() == 4  # 2 batches x ~1.75s
            gateway._dispatched = 0
            for _ in range(50):
                gateway.metrics.batch_latency.observe(100.0)
            # Saturated histogram still clamps into [1, 60].
            assert 1 <= gateway._retry_after_hint() <= 60


class TestConnectionLifecycle:
    def test_idle_connections_are_reaped(self, server):
        with HttpGateway(server, batch_window=0.0,
                         idle_timeout=0.3) as gateway:
            with socket.create_connection(
                ("127.0.0.1", gateway.port), timeout=10.0
            ) as idle:
                idle.settimeout(10.0)
                assert idle.recv(1) == b"", "idle connection was not closed"
            snap = gateway.metrics.snapshot()
            assert snap["connections"]["reaped_idle"] >= 1

    def test_connection_cap_evicts_least_recently_active(self, server):
        with HttpGateway(server, batch_window=0.0,
                         max_connections=1) as gateway:
            first = socket.create_connection(
                ("127.0.0.1", gateway.port), timeout=10.0
            )
            try:
                first.settimeout(10.0)
                time.sleep(0.1)  # let the loop register the connection
                with socket.create_connection(
                    ("127.0.0.1", gateway.port), timeout=10.0
                ):
                    # Admitting the second evicts the idle first.
                    assert first.recv(1) == b"", "over-cap connection survived"
            finally:
                first.close()
            snap = gateway.metrics.snapshot()
            assert snap["connections"]["reaped_overflow"] >= 1

    def test_open_connections_are_reported(self, gateway):
        _, snap, _ = _get(gateway.port, "/metrics")
        # The probing connection itself is open at snapshot time.
        assert snap["connections"]["open"] >= 1

    def test_status_reports_the_lifecycle_knobs(self, workload, fake_server):
        with HttpGateway(fake_server, batch_window=0.0, default_timeout=1.5,
                         idle_timeout=7.0, max_connections=9) as gateway:
            _, body, _ = _get(gateway.port, "/status")
            block = body["gateway"]
            assert block["default_timeout_seconds"] == 1.5
            assert block["idle_timeout_seconds"] == 7.0
            assert block["max_connections"] == 9
            assert block["draining"] is False

    def test_lifecycle_constructor_validation(self, server):
        with pytest.raises(ValueError, match="default_timeout"):
            HttpGateway(server, default_timeout=0)
        with pytest.raises(ValueError, match="idle_timeout"):
            HttpGateway(server, idle_timeout=0)
        with pytest.raises(ValueError, match="max_connections"):
            HttpGateway(server, max_connections=0)
        with pytest.raises(ValueError, match="drain_timeout"):
            HttpGateway(server, drain_timeout=-1)


class TestGracefulDrain:
    def test_inflight_request_finishes_during_drain(self, workload,
                                                    snapshot_path,
                                                    fake_server):
        """close() stops admitting but lets the admitted request finish:
        the client gets its exact answer, not a reset."""
        _, queries = workload
        index = load_index(snapshot_path)
        fake_server.release.clear()
        gateway = HttpGateway(fake_server, batch_window=0.0).start()
        outcome = {}

        def post_one():
            outcome["answer"] = _post(
                gateway.port, "/query",
                {"query": queries[0].tolist(), "k": 2}, timeout=60.0,
            )

        thread = threading.Thread(target=post_one)
        thread.start()
        assert fake_server.entered.wait(30)
        closer = threading.Thread(target=gateway.close)
        closer.start()
        time.sleep(0.1)
        fake_server.release.set()
        closer.join(30)
        thread.join(30)
        status, body, _ = outcome["answer"]
        assert status == 200
        assert _results_match(
            body["results"], index.query_batch(queries[0][None, :], k=2)
        )
        assert gateway.metrics.snapshot()["drain_seconds"] is not None


class TestRequestCounting:
    def test_on_request_counts_engine_work_only(self, workload, snapshot_path,
                                                server):
        """The hook fires for requests that reached the engine (200/504
        on the work verbs), not for probes or rejected input — the rule
        serve --max-requests counts by."""
        _, queries = workload
        counted = []
        with HttpGateway(server, batch_window=0.0,
                         on_request=counted.append) as gateway:
            assert _post(gateway.port, "/query",
                         {"query": queries[0].tolist(), "k": 2})[0] == 200
            assert _post(gateway.port, "/query", {"bad": 1})[0] == 400
            assert _get(gateway.port, "/healthz")[0] == 200
            assert _get(gateway.port, "/status")[0] == 200
            assert _post(gateway.port, "/insert",
                         {"point": [0.0] * 12})[0] == 403
        assert counted == ["query"]


# ----------------------------------------------------------------------
# Mutations over HTTP
# ----------------------------------------------------------------------


@pytest.fixture()
def mutable_setup(tmp_path):
    data = gaussian_mixture(400, 8, n_clusters=3, seed=11)
    path = str(tmp_path / "mutable.npz")
    save_index(DBLSH(c=1.5, l_spaces=3, k_per_space=6, t=16, seed=0,
                     auto_initial_radius=True).fit(data), path)
    server = MutableSnapshotServer(path, compact_threshold=0)
    server.start()
    yield data, server
    server.close()


class TestMutableHttp:
    def test_insert_query_delete_roundtrip(self, mutable_setup):
        data, server = mutable_setup
        with HttpGateway(server, batch_window=0.0) as gateway:
            point = (data.mean(axis=0) + 5.0).tolist()
            status, body, _ = _post(gateway.port, "/insert", {"point": point})
            assert status == 200
            new_id = body["id"]
            assert new_id >= data.shape[0]

            status, body, _ = _post(
                gateway.port, "/query", {"query": point, "k": 1}
            )
            assert status == 200
            assert body["results"][0]["ids"] == [new_id]
            assert body["results"][0]["distances"] == [0.0]

            status, body, _ = _post(gateway.port, "/delete", {"id": new_id})
            assert (status, body["deleted"]) == (200, True)
            status, body, _ = _post(gateway.port, "/delete", {"id": new_id})
            assert (status, body["deleted"]) == (200, False)

            status, body, _ = _post(
                gateway.port, "/query", {"query": point, "k": 1}
            )
            assert status == 200
            assert body["results"][0]["ids"] != [new_id]

            status, body, _ = _post(gateway.port, "/compact", {})
            assert status == 200
            assert body["compacted"] is True

            # Each acked mutation recorded its group-fsync wait time.
            snap = _get(gateway.port, "/metrics")[1]
            ack = snap["mutation_ack_latency_seconds"]
            assert ack["count"] == 3  # 1 insert + 2 deletes
            assert ack["sum"] > 0

    def test_mutation_validation_errors(self, mutable_setup):
        _, server = mutable_setup
        with HttpGateway(server, batch_window=0.0) as gateway:
            assert _post(gateway.port, "/insert", {})[0] == 400
            assert _post(gateway.port, "/insert", {"point": [1.0]})[0] == 400
            assert _post(gateway.port, "/delete", {})[0] == 400
            assert _post(gateway.port, "/delete", {"id": "x"})[0] == 400
            status, body, _ = _post(gateway.port, "/delete", {"id": 10**9})
            assert status == 400
            assert "out of range" in body["error"]
            assert _get(gateway.port, "/status")[1]["gateway"]["mutable"] is True

    def test_read_only_serves_refuse_mutations_with_403(self, gateway, snapshot_path):
        # Plain SnapshotServer: the verbs do not exist -> 403.
        status, body, _ = _post(gateway.port, "/insert", {"point": [0.0] * 12})
        assert status == 403
        assert "read-only" in body["error"]
        assert _post(gateway.port, "/delete", {"id": 1})[0] == 403
        assert _post(gateway.port, "/compact", {})[0] == 403
        # Mutable-capable server running read_only: still 403.
        server = MutableSnapshotServer(snapshot_path, read_only=True)
        server.start()
        try:
            with HttpGateway(server, batch_window=0.0) as ro_gateway:
                status, body, _ = _post(
                    ro_gateway.port, "/insert", {"point": [0.0] * 12}
                )
                assert status == 403
                assert "read-only" in body["error"]
        finally:
            server.close()
