"""Tests for DBLSH.query_batch and save/load persistence."""

from __future__ import annotations

import pytest

from repro import DBLSH
from repro.data.generators import gaussian_mixture


@pytest.fixture(scope="module")
def fitted():
    data = gaussian_mixture(300, 16, n_clusters=6, seed=0)
    index = DBLSH(
        c=1.5, l_spaces=3, k_per_space=5, t=16, seed=0, auto_initial_radius=True
    ).fit(data)
    return data, index


class TestQueryBatch:
    def test_matches_single_queries(self, fitted):
        data, index = fitted
        queries = data[:4] + 0.05
        batch = index.query_batch(queries, k=5)
        singles = [index.query(q, k=5) for q in queries]
        assert [r.ids for r in batch] == [r.ids for r in singles]

    def test_single_row_input(self, fitted):
        data, index = fitted
        results = index.query_batch(data[0], k=3)
        assert len(results) == 1
        assert results[0].neighbors[0].id == 0


class TestPersistence:
    def test_roundtrip_identical_answers(self, fitted, tmp_path):
        data, index = fitted
        path = str(tmp_path / "index.npz")
        index.save(path)
        restored = DBLSH.load(path)
        assert restored.describe() == index.describe()
        for q in (data[:5] + 0.1):
            assert restored.query(q, k=5).ids == index.query(q, k=5).ids

    def test_save_requires_fit(self, tmp_path):
        with pytest.raises(RuntimeError, match="fit"):
            DBLSH().save(str(tmp_path / "x.npz"))

    def test_restored_index_supports_add(self, fitted, tmp_path):
        data, index = fitted
        path = str(tmp_path / "index.npz")
        index.save(path)
        restored = DBLSH.load(path)
        isolated = data.mean(axis=0) + 300.0
        restored.add(isolated[None, :])
        result = restored.query(isolated, k=1)
        assert result.neighbors[0].id == data.shape[0]

    def test_parameters_preserved(self, fitted, tmp_path):
        data, index = fitted
        path = str(tmp_path / "index.npz")
        index.save(path)
        restored = DBLSH.load(path)
        assert restored.params is not None and index.params is not None
        assert restored.params.w0 == index.params.w0
        assert restored.params.k_per_space == index.params.k_per_space
        assert restored.params.l_spaces == index.params.l_spaces
        assert restored.initial_radius == pytest.approx(index.initial_radius)
