"""Hot-reload tests: snapshot generations flip without dropping anything.

The reload contract of :meth:`repro.serve.SnapshotServer.reload`:

* the new generation may have a **different shard count** (and point
  count, and budget mode) — the worker pool is rebuilt to match;
* a reload **mid-query** never disturbs the in-flight request: it
  answers from the generation it checked out, then the old workers
  retire (drained, not killed under the request);
* a reload to a **corrupt/junk file** or a snapshot written under a
  different **format version** is refused with
  :class:`~repro.io.SnapshotError`, and one of different
  **dimensionality** with :class:`~repro.serve.ServerError` — in every
  refusal case the old generation keeps serving;
* answers always stay bit-identical to ``load_index().query_batch()``
  on whichever generation answered;
* the CLI surfaces the same machinery as ``serve --watch`` (mtime poll)
  and the ``reload`` protocol verb (exercised in
  ``tests/test_serve_concurrency.py``).
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from repro import ShardedDBLSH
from repro.data.generators import gaussian_mixture
from repro.io import SnapshotError, load_index, save_index
from repro.serve import ServerError, SnapshotServer

COMMON = dict(
    c=1.5, l_spaces=3, k_per_space=6, t=32, seed=0, auto_initial_radius=True
)
DIM = 12


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _assert_all_dead(pids, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while any(_alive(pid) for pid in pids):
        assert time.monotonic() < deadline, (
            f"orphan worker processes: {[p for p in pids if _alive(p)]}"
        )
        time.sleep(0.05)


def _same(results, expected) -> bool:
    return len(results) == len(expected) and all(
        r.ids == e.ids and r.distances == e.distances
        for r, e in zip(results, expected)
    )


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(23)
    return rng.standard_normal((6, DIM))


@pytest.fixture(scope="module")
def snapshots(tmp_path_factory):
    """Two generations over *different* data (same dim), so answers
    attribute a response to its generation unambiguously."""
    root = tmp_path_factory.mktemp("reload")
    data_a = gaussian_mixture(800, DIM, n_clusters=5, seed=31)
    data_b = gaussian_mixture(1000, DIM, n_clusters=7, seed=37)
    path_a = str(root / "gen_a.npz")
    path_b = str(root / "gen_b.npz")
    save_index(ShardedDBLSH(shards=2, **COMMON).fit(data_a), path_a)
    save_index(ShardedDBLSH(shards=3, **COMMON).fit(data_b), path_b)
    return path_a, path_b


@pytest.fixture(scope="module")
def expected(snapshots, queries):
    path_a, path_b = snapshots
    return (
        load_index(path_a).query_batch(queries, k=5),
        load_index(path_b).query_batch(queries, k=5),
    )


class TestReloadFlip:
    def test_reload_to_different_shard_count(self, snapshots, queries, expected):
        path_a, path_b = snapshots
        expected_a, expected_b = expected
        with SnapshotServer(path_a) as server:
            assert (server.generation, server.num_shards) == (1, 2)
            assert _same(server.query_batch(queries, k=5), expected_a)
            old_pids = server.worker_pids
            info = server.reload(path_b)
            assert info["generation"] == 2
            assert info["shards"] == 3
            assert server.num_shards == 3
            assert server.num_points == 1000
            assert _same(server.query_batch(queries, k=5), expected_b)
            # The retired generation drains immediately (nothing was in
            # flight) — its workers must not linger behind the new pool.
            _assert_all_dead(old_pids)
            new_pids = server.worker_pids
        _assert_all_dead(new_pids)

    def test_reload_same_path_picks_up_overwrite(self, snapshots, queries,
                                                 expected, tmp_path):
        path_a, path_b = snapshots
        expected_a, expected_b = expected
        path = str(tmp_path / "live.npz")
        with open(path_a, "rb") as src, open(path, "wb") as dst:
            dst.write(src.read())
        with SnapshotServer(path) as server:
            assert _same(server.query_batch(queries, k=5), expected_a)
            with open(path_b, "rb") as src, open(path, "wb") as dst:
                dst.write(src.read())
            info = server.reload()  # no argument: re-read the served path
            assert info["generation"] == 2
            assert _same(server.query_batch(queries, k=5), expected_b)

    def test_close_start_resumes_reloaded_snapshot(self, snapshots, queries,
                                                   expected):
        """After a reload, close()/start() must come back serving the
        reloaded snapshot — not silently revert to the constructor-time
        path."""
        path_a, path_b = snapshots
        _, expected_b = expected
        server = SnapshotServer(path_a).start()
        try:
            server.reload(path_b)
            server.close()
            server.start()
            assert server.num_shards == 3
            assert server.path == path_b
            assert _same(server.query_batch(queries, k=5), expected_b)
        finally:
            server.close()

    def test_reload_mid_query_answers_from_old_generation(
            self, snapshots, queries, expected, monkeypatch):
        path_a, path_b = snapshots
        expected_a, expected_b = expected
        # Arm gen 1's shard-0 worker to stall its first query long
        # enough for the reload to flip underneath it.
        monkeypatch.setenv("REPRO_SERVE_FAULT", "sleep-on-query:0:0:0.6")
        server = SnapshotServer(path_a, start_timeout=30,
                                query_timeout=30).start()
        monkeypatch.delenv("REPRO_SERVE_FAULT")  # gen 2 spawns clean
        old_pids = server.worker_pids
        box = {}
        try:
            thread = threading.Thread(
                target=lambda: box.update(got=server.query_batch(queries, k=5))
            )
            thread.start()
            deadline = time.monotonic() + 10
            while server.status()["inflight"] < 1:
                assert time.monotonic() < deadline, "query never checked out"
                time.sleep(0.01)
            info = server.reload(path_b)  # flips while the query sleeps
            assert info["generation"] == 2
            thread.join(timeout=30)
            assert not thread.is_alive()
            # The in-flight request answered from the generation it
            # started on — not the one serving by the time it finished.
            assert _same(box["got"], expected_a)
            # ... and the old pool drained after it: no orphans.
            _assert_all_dead(old_pids)
            assert _same(server.query_batch(queries, k=5), expected_b)
        finally:
            server.close()


class TestReloadRefusals:
    def test_corrupt_file_keeps_old_generation(self, snapshots, queries,
                                               expected, tmp_path):
        path_a, _ = snapshots
        expected_a, _ = expected
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"definitely not a snapshot")
        with SnapshotServer(path_a) as server:
            pids = server.worker_pids
            with pytest.raises(SnapshotError):
                server.reload(str(junk))
            assert server.generation == 1
            assert server.worker_pids == pids  # same pool, untouched
            assert _same(server.query_batch(queries, k=5), expected_a)

    def test_version_mismatch_refused(self, snapshots, queries, expected,
                                      tmp_path):
        path_a, _ = snapshots
        expected_a, _ = expected
        # The version is faked by editing npz internals, so start from an
        # npz copy of the (arena-container) serving snapshot.
        as_npz = str(tmp_path / "as_npz.npz")
        save_index(load_index(path_a), as_npz, format="npz")
        with np.load(as_npz) as archive:
            arrays = {key: archive[key] for key in archive.files}
        header = json.loads(bytes(arrays.pop("header")).decode())
        header["version"] = 999
        arrays["header"] = np.bytes_(json.dumps(header).encode())
        stale = str(tmp_path / "version999.npz")
        np.savez(stale, **arrays)
        with SnapshotServer(path_a) as server:
            with pytest.raises(SnapshotError, match="version"):
                server.reload(stale)
            assert server.generation == 1
            assert _same(server.query_batch(queries, k=5), expected_a)

    def test_dimensionality_mismatch_refused(self, snapshots, queries,
                                             expected, tmp_path):
        path_a, _ = snapshots
        expected_a, _ = expected
        other = gaussian_mixture(500, DIM + 3, n_clusters=4, seed=41)
        path_other = str(tmp_path / "wider.npz")
        save_index(ShardedDBLSH(shards=2, **COMMON).fit(other), path_other)
        with SnapshotServer(path_a) as server:
            with pytest.raises(ServerError, match=f"{DIM}-d"):
                server.reload(path_other)
            assert server.generation == 1
            assert _same(server.query_batch(queries, k=5), expected_a)

    def test_reload_before_start_refused(self, snapshots):
        path_a, path_b = snapshots
        server = SnapshotServer(path_a)
        with pytest.raises(ServerError, match="not serving"):
            server.reload(path_b)


class TestWatch:
    def test_serve_watch_reloads_on_overwrite(self, snapshots, queries,
                                              expected, tmp_path):
        from multiprocessing.connection import Client

        from repro.cli import main
        from repro.serve.protocol import AUTHKEY, decode_result

        path_a, path_b = snapshots
        expected_a, expected_b = expected
        live = str(tmp_path / "watched.npz")
        with open(path_a, "rb") as src, open(live, "wb") as dst:
            dst.write(src.read())
        sock = str(tmp_path / "watch.sock")
        rc_box = []
        thread = threading.Thread(
            target=lambda: rc_box.append(main(
                ["serve", "--index", live, "--listen", sock,
                 "--watch", "--watch-interval", "0.1"]
            )),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 30
        while not os.path.exists(sock):
            assert time.monotonic() < deadline
            time.sleep(0.05)
        with Client(sock, authkey=AUTHKEY) as conn:
            conn.send(("query_batch", queries, 5))
            status, wires = conn.recv()
            assert status == "ok"
            assert _same([decode_result(w) for w in wires], expected_a)
            # Overwrite the watched file; the watcher must flip within
            # a few poll intervals.
            with open(path_b, "rb") as src, open(live, "wb") as dst:
                dst.write(src.read())
            deadline = time.monotonic() + 30
            while True:
                conn.send(("status",))
                status, info = conn.recv()
                assert status == "ok"
                if info["generation"] >= 2:
                    break
                assert time.monotonic() < deadline, "watcher never reloaded"
                time.sleep(0.05)
            assert info["shards"] == 3
            conn.send(("query_batch", queries, 5))
            status, wires = conn.recv()
            assert status == "ok"
            assert _same([decode_result(w) for w in wires], expected_b)
            conn.send(("shutdown",))
            conn.recv()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert rc_box == [0]
