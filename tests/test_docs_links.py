"""Documentation hygiene: every relative link in README/docs must resolve.

Runs the same checker CI uses (``tools/check_docs_links.py``), so moving
or renaming a file referenced by the documentation fails the tier-1
suite instead of surfacing as a dead link after merge.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_all_relative_doc_links_resolve():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docs_links.py"),
         str(REPO_ROOT)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, f"broken documentation links:\n{proc.stderr}"


def test_docs_pages_exist():
    """The README links a docs/ tree; pin the pages this repo promises."""
    for page in ("architecture.md", "benchmarks.md"):
        assert (REPO_ROOT / "docs" / page).is_file(), f"docs/{page} missing"
