"""Tests for repro.serve: parity across transports, server lifecycle.

The serving layer's contract has two halves:

* **answers** — a served snapshot returns exactly what the same snapshot
  returns when loaded in process (shared merge planner, different
  transport), for single queries, batches, and both scatter paths
  (inline pipe payloads and shared-memory blocks);
* **lifecycle** — start/close are explicit and safe (double-start
  refused, query-before-start refused, close idempotent, restart after
  close works), and failure surfaces as a prompt
  :class:`~repro.serve.ServerError` instead of a hang: a killed worker
  is reported with its exit code within the query timeout, and a closed
  server leaves no worker processes behind.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import DBLSH, ShardedDBLSH
from repro.core.plan import merge_shard_results
from repro.core.result import Neighbor, QueryResult
from repro.io import load_index, save_index
from repro.serve import ServerError, SnapshotServer
from repro.serve.protocol import decode_result, encode_result
from repro.data.generators import gaussian_mixture

COMMON = dict(
    c=1.5, l_spaces=3, k_per_space=6, t=32, seed=0, auto_initial_radius=True
)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _serve_and_sleep(path, conn):
    """Child-process helper: start a server, report worker pids, hang."""
    from repro.serve import SnapshotServer

    server = SnapshotServer(path).start()
    conn.send(server.worker_pids)
    time.sleep(60)  # until SIGKILLed by the test


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(1200, 16, n_clusters=6, seed=3)
    rng = np.random.default_rng(7)
    queries = data[rng.choice(1200, 8, replace=False)] + 0.02
    return data, queries


@pytest.fixture(scope="module")
def snapshot_path(workload, tmp_path_factory):
    data, _ = workload
    path = str(tmp_path_factory.mktemp("serve") / "sharded.npz")
    save_index(ShardedDBLSH(shards=2, **COMMON).fit(data), path)
    return path


@pytest.fixture(scope="module")
def server(snapshot_path):
    server = SnapshotServer(snapshot_path, start_timeout=30, query_timeout=30)
    server.start()
    yield server
    server.close()


class TestParity:
    """Served answers == in-process answers on the same snapshot."""

    def test_batch_matches_inprocess_load(self, workload, snapshot_path, server):
        _, queries = workload
        expected = load_index(snapshot_path).query_batch(queries, k=5)
        got = server.query_batch(queries, k=5)
        assert [r.ids for r in got] == [r.ids for r in expected]
        assert [r.distances for r in got] == [r.distances for r in expected]

    def test_single_query_matches_batch(self, workload, server):
        _, queries = workload
        batch = server.query_batch(queries, k=3)
        singles = [server.query(q, k=3) for q in queries]
        assert [r.ids for r in singles] == [r.ids for r in batch]

    def test_matches_unsharded_sets(self, workload, server):
        data, queries = workload
        unsharded = DBLSH(**COMMON).fit(data)
        for q, got in zip(queries, server.query_batch(queries, k=5)):
            assert set(got.ids) == set(unsharded.query(q, k=5).ids)

    def test_shm_and_inline_payloads_agree(self, snapshot_path, workload):
        _, queries = workload
        with SnapshotServer(snapshot_path, shm_min_bytes=0) as shm_server:
            via_shm = shm_server.query_batch(queries, k=5)
        with SnapshotServer(snapshot_path, shm_min_bytes=1 << 40) as pipe_server:
            via_pipe = pipe_server.query_batch(queries, k=5)
        assert [r.ids for r in via_shm] == [r.ids for r in via_pipe]
        assert [r.distances for r in via_shm] == [r.distances for r in via_pipe]

    def test_unsharded_snapshot_served_as_single_worker(self, workload, tmp_path):
        data, queries = workload
        index = DBLSH(**COMMON).fit(data)
        path = str(tmp_path / "single.npz")
        save_index(index, path)
        expected = index.query_batch(queries, k=4)
        with SnapshotServer(path) as server:
            assert server.num_shards == 1
            got = server.query_batch(queries, k=4)
        assert [r.ids for r in got] == [r.ids for r in expected]

    def test_merged_stats_aggregate_work(self, workload, server):
        _, queries = workload
        result = server.query(queries[0], k=5)
        assert result.stats.candidates_verified > 0
        assert result.stats.window_queries >= server.num_shards
        assert result.stats.hash_evaluations == server.num_hash_functions
        assert result.stats.terminated_by

    def test_empty_batch(self, server):
        assert server.query_batch(np.empty((0, server.dim)), k=3) == []


class TestLifecycle:
    def test_query_before_start(self, snapshot_path):
        server = SnapshotServer(snapshot_path)
        with pytest.raises(ServerError, match="not serving"):
            server.query(np.zeros(server.dim), k=1)

    def test_double_start(self, snapshot_path):
        server = SnapshotServer(snapshot_path).start()
        try:
            with pytest.raises(ServerError, match="already started"):
                server.start()
        finally:
            server.close()

    def test_close_idempotent_and_restartable(self, snapshot_path, workload):
        _, queries = workload
        server = SnapshotServer(snapshot_path).start()
        server.close()
        server.close()  # second close is a no-op
        with pytest.raises(ServerError, match="not serving"):
            server.query_batch(queries, k=1)
        server.start()  # a closed server can come back
        try:
            assert server.query(queries[0], k=1).neighbors
        finally:
            server.close()

    def test_clean_shutdown_leaves_no_orphans(self, snapshot_path):
        server = SnapshotServer(snapshot_path).start()
        pids = server.worker_pids
        assert len(pids) == 2 and all(_alive(pid) for pid in pids)
        server.close()
        deadline = time.monotonic() + 5.0
        while any(_alive(pid) for pid in pids):
            assert time.monotonic() < deadline, f"orphan workers: {pids}"
            time.sleep(0.05)

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="POSIX only")
    def test_sigkilled_coordinator_leaves_no_orphan_workers(self, snapshot_path):
        """SIGKILL skips every graceful path (daemon reaping, close()):
        workers must notice the dead coordinator via pipe EOF and exit."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        coordinator = ctx.Process(
            target=_serve_and_sleep, args=(snapshot_path, child_conn)
        )
        coordinator.start()
        child_conn.close()
        try:
            assert parent_conn.poll(30), "coordinator never started serving"
            worker_pids = parent_conn.recv()
            assert len(worker_pids) == 2
            os.kill(coordinator.pid, 9)
            coordinator.join(10)
            deadline = time.monotonic() + 10
            while any(_alive(pid) for pid in worker_pids):
                assert time.monotonic() < deadline, (
                    f"workers orphaned after coordinator SIGKILL: {worker_pids}"
                )
                time.sleep(0.05)
        finally:
            if coordinator.is_alive():
                coordinator.kill()
                coordinator.join(5)

    def test_context_manager(self, snapshot_path, workload):
        _, queries = workload
        with SnapshotServer(snapshot_path) as server:
            pids = server.worker_pids
            assert server.serving
            assert server.query(queries[0], k=1).neighbors
        assert not server.serving
        assert not any(_alive(pid) for pid in pids)

    def test_invalid_k(self, server):
        with pytest.raises(ValueError, match="k must be"):
            server.query_batch(np.zeros((1, server.dim)), k=0)

    def test_wrong_dim_rejected_in_coordinator(self, server):
        with pytest.raises(ValueError, match="dimension"):
            server.query_batch(np.zeros((2, server.dim + 3)), k=1)

    def test_bad_snapshot_rejected_eagerly(self, tmp_path):
        from repro.io import SnapshotError

        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"not a snapshot at all")
        with pytest.raises(SnapshotError):
            SnapshotServer(str(junk))

    def test_invalid_timeouts(self, snapshot_path):
        with pytest.raises(ValueError, match="timeout"):
            SnapshotServer(snapshot_path, query_timeout=0)


class TestFailureSurfacing:
    """A dead or silent worker must raise promptly — never hang.

    These tests pin the **fail-fast** configuration (``max_retries=0``):
    a worker death surfaces as a prompt :class:`ServerError` and breaks
    the server.  The default configuration instead supervises — restarts
    the dead worker and re-scatters once — which is pinned by
    ``tests/test_serve_faults.py``.
    """

    def test_killed_worker_surfaces_within_timeout(self, snapshot_path, workload):
        _, queries = workload
        server = SnapshotServer(
            snapshot_path, query_timeout=10, max_retries=0
        ).start()
        try:
            os.kill(server.worker_pids[1], 9)
            started = time.monotonic()
            with pytest.raises(ServerError, match="worker 1"):
                server.query_batch(queries, k=3)
            assert time.monotonic() - started < 10.0
        finally:
            server.close()

    def test_broken_server_refuses_further_queries(self, snapshot_path, workload):
        _, queries = workload
        server = SnapshotServer(
            snapshot_path, query_timeout=10, max_retries=0
        ).start()
        try:
            os.kill(server.worker_pids[0], 9)
            with pytest.raises(ServerError):
                server.query_batch(queries, k=3)
            with pytest.raises(ServerError, match="broken"):
                server.query_batch(queries, k=3)
        finally:
            server.close()

    def test_crash_then_restart_recovers(self, snapshot_path, workload):
        _, queries = workload
        server = SnapshotServer(
            snapshot_path, query_timeout=10, max_retries=0
        ).start()
        try:
            baseline = server.query_batch(queries, k=3)
            os.kill(server.worker_pids[0], 9)
            with pytest.raises(ServerError):
                server.query_batch(queries, k=3)
            server.close()
            server.start()
            again = server.query_batch(queries, k=3)
            assert [r.ids for r in again] == [r.ids for r in baseline]
        finally:
            server.close()

    def test_ping_detects_dead_worker(self, snapshot_path):
        server = SnapshotServer(snapshot_path, query_timeout=10).start()
        try:
            assert server.ping() >= 0.0
            os.kill(server.worker_pids[0], 9)
            with pytest.raises(ServerError):
                server.ping()
        finally:
            server.close()

    def test_invalid_max_retries(self, snapshot_path):
        with pytest.raises(ValueError, match="max_retries"):
            SnapshotServer(snapshot_path, max_retries=-1)


class TestProtocol:
    def test_result_roundtrip(self):
        result = QueryResult(neighbors=[Neighbor(3, 0.5), Neighbor(9, 1.25)])
        result.stats.candidates_verified = 17
        result.stats.terminated_by = "radius"
        back = decode_result(encode_result(result))
        assert back.neighbors == result.neighbors
        assert back.stats == result.stats

    def test_decode_tolerates_stats_schema_skew(self):
        """A peer with a different QueryStats vintage must not shift
        counters into the wrong slots: fields travel by name."""
        result = QueryResult(neighbors=[Neighbor(1, 2.0)])
        result.stats.rounds = 4
        ids, dists, stats = encode_result(result)
        stats = dict(stats)
        stats["counter_from_the_future"] = 7  # newer peer: ignored
        del stats["window_queries"]  # older peer: default kept
        back = decode_result((ids, dists, stats))
        assert back.stats.rounds == 4
        assert back.stats.window_queries == 0

    def test_planner_merge_maps_local_ids_to_global(self):
        a = QueryResult(neighbors=[Neighbor(0, 1.0), Neighbor(2, 3.0)])
        b = QueryResult(neighbors=[Neighbor(1, 2.0)])
        merged = merge_shard_results([a, b], offsets=[0, 100], k=3,
                                     elapsed=0.0, hash_evaluations=5)
        assert [n.id for n in merged.neighbors] == [0, 101, 2]
        assert merged.stats.hash_evaluations == 5

    def test_planner_rejects_ragged_shard_batches(self):
        """A transport bug delivering mismatched per-shard batch sizes
        must fail loud, not zip-truncate into plausible results."""
        from repro.core.plan import merge_shard_batches

        full = [QueryResult(neighbors=[Neighbor(0, 1.0)])] * 2
        short = [QueryResult(neighbors=[Neighbor(1, 2.0)])]
        with pytest.raises(ValueError, match="ragged"):
            merge_shard_batches([full, short], offsets=[0, 10], k=1,
                                elapsed_per_query=0.0)


class TestCLI:
    """The serve/query commands speak the wire protocol end to end."""

    def test_serve_and_query_over_unix_socket(self, snapshot_path, tmp_path, capsys):
        import threading

        from repro.cli import main

        sock = str(tmp_path / "serve.sock")
        rc_box = []
        thread = threading.Thread(
            target=lambda: rc_box.append(main(
                ["serve", "--index", snapshot_path, "--listen", sock,
                 "--max-requests", "1"]
            )),
            daemon=True,
        )
        thread.start()
        rc = main([
            "query", "--server", sock, "--dataset", "audio",
            "--scale", "0.02", "--queries", "4", "--k", "3",
            "--connect-timeout", "30", "--shutdown",
        ])
        thread.join(timeout=60)
        assert not thread.is_alive()
        # The snapshot is 16-d but the audio stand-in is 192-d: the serve
        # side reports a clean dimension error (and keeps serving — a bad
        # query must not kill the server), the client exits nonzero and
        # its --shutdown stops the serve loop.
        out = capsys.readouterr()
        assert rc == 1
        assert "dimension" in out.err

    def test_query_round_trip_with_matching_dims(self, workload, tmp_path, capsys):
        import threading

        from repro.cli import main

        # Build server-side snapshot from the same registry stand-in the
        # query command samples, so dimensions line up.
        out_npz = str(tmp_path / "audio.npz")
        assert main(["save", "--dataset", "audio", "--scale", "0.02",
                     "--t", "8", "--queries", "4", "--shards", "2",
                     "--out", out_npz]) == 0
        sock = str(tmp_path / "round.sock")
        rc_box = []
        thread = threading.Thread(
            target=lambda: rc_box.append(main(
                ["serve", "--index", out_npz, "--listen", sock,
                 "--max-requests", "1"]
            )),
            daemon=True,
        )
        thread.start()
        # --shutdown against a server that stops on its own after this
        # very request (--max-requests 1 closes the connection first):
        # the client must still print its table and exit 0, not
        # traceback on the EOF of the shutdown round trip.
        rc = main([
            "query", "--server", sock, "--dataset", "audio",
            "--scale", "0.02", "--queries", "4", "--k", "3",
            "--connect-timeout", "30", "--shutdown",
        ])
        thread.join(timeout=60)
        assert rc == 0
        assert rc_box == [0]
        out = capsys.readouterr().out
        assert "Served answers" in out
        assert "served 1 request(s)" in out


class TestCLIFailurePaths:
    def test_serve_cleans_stale_socket_and_restarts(self, snapshot_path,
                                                    tmp_path, capsys):
        import socket
        import threading

        from repro.cli import main

        sock_path = str(tmp_path / "stale.sock")
        # Simulate an unclean exit: a bound-but-dead socket file.
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(sock_path)
        dead.close()
        assert os.path.exists(sock_path)
        rc_box = []
        thread = threading.Thread(
            target=lambda: rc_box.append(main(
                ["serve", "--index", snapshot_path, "--listen", sock_path,
                 "--max-requests", "0"]
            )),
            daemon=True,
        )
        thread.start()
        thread.join(timeout=30)
        assert rc_box == [0], capsys.readouterr().err

    def test_serve_refuses_nonloopback_tcp_with_default_authkey(
            self, snapshot_path, capsys):
        """The default key is public and the protocol is pickle: binding
        beyond loopback with it would be remote code execution."""
        from repro.cli import main

        rc = main(["serve", "--index", snapshot_path,
                   "--listen", "0.0.0.0:17007"])
        assert rc == 1
        assert "REPRO_SERVE_AUTHKEY" in capsys.readouterr().err

    def test_serve_refuses_non_socket_listen_path(self, snapshot_path,
                                                  tmp_path, capsys):
        from repro.cli import main

        plain = tmp_path / "not-a-socket"
        plain.write_text("precious data")
        rc = main(["serve", "--index", snapshot_path,
                   "--listen", str(plain), "--max-requests", "0"])
        assert rc == 1
        assert "not a socket" in capsys.readouterr().err
        assert plain.read_text() == "precious data"  # never clobbered

    def test_serve_survives_half_open_connections(self, snapshot_path,
                                                  tmp_path):
        """A probe that connects and vanishes mid-handshake (port scanner,
        the stale-socket check of a second serve) must not kill the loop."""
        import socket
        import threading

        from multiprocessing.connection import Client

        from repro.cli import main
        from repro.serve.protocol import AUTHKEY

        sock_path = str(tmp_path / "probe.sock")
        rc_box = []
        thread = threading.Thread(
            target=lambda: rc_box.append(main(
                ["serve", "--index", snapshot_path, "--listen", sock_path]
            )),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 30
        while not os.path.exists(sock_path):
            assert time.monotonic() < deadline
            time.sleep(0.05)
        for _ in range(3):  # hammer the handshake window
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.connect(sock_path)
            probe.close()
        with Client(sock_path, authkey=AUTHKEY) as conn:
            # Malformed payloads are rejected per-request, never fatal.
            for bad in ("not-a-tuple", (), ("query_batch",),
                        ("query_batch", ["a", ["b", "c"]], "x")):
                conn.send(bad)
                status, detail = conn.recv()
                assert status == "error", (bad, detail)
            conn.send(("describe",))
            status, described = conn.recv()
            assert status == "ok" and "SnapshotServer" in described
            conn.send(("shutdown",))
            conn.recv()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert rc_box == [0]

    def test_serve_exits_nonzero_when_server_breaks(self, snapshot_path,
                                                    tmp_path, capsys,
                                                    monkeypatch):
        import threading

        from repro.cli import main

        def boom(self, queries, k=1):
            raise ServerError("worker 0 (pid 0) died")

        monkeypatch.setattr(SnapshotServer, "query_batch", boom)
        sock = str(tmp_path / "broken.sock")
        rc_box = []
        thread = threading.Thread(
            target=lambda: rc_box.append(main(
                ["serve", "--index", snapshot_path, "--listen", sock]
            )),
            daemon=True,
        )
        thread.start()
        rc = main([
            "query", "--server", sock, "--dataset", "audio",
            "--scale", "0.02", "--queries", "2", "--k", "1",
            "--connect-timeout", "30",
        ])
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert rc == 1  # client saw the error reply
        assert rc_box == [1]  # serve exited nonzero, not "clean shutdown"
        assert "serving failed" in capsys.readouterr().err


class TestEvalRunner:
    def test_evaluate_server_reports_sane_metrics(self, snapshot_path, workload):
        from repro.eval import evaluate_server

        _, queries = workload
        result = evaluate_server(snapshot_path, queries, k=5,
                                 dataset_name="toy")
        assert result.method == "DB-LSH-serve[2p]"
        assert result.recall > 0.5
        assert result.candidates_per_query > 0
        assert result.build_seconds > 0  # worker start-up time

    def test_evaluate_server_with_supplied_ground_truth(self, snapshot_path,
                                                        workload):
        from repro.data.groundtruth import exact_knn
        from repro.eval import evaluate_server

        data, queries = workload
        gt_ids, gt_dists = exact_knn(queries, data, 5)
        result = evaluate_server(snapshot_path, queries, k=5,
                                 gt_ids=gt_ids, gt_dists=gt_dists)
        # The report still carries real workload shape even though the
        # stored coordinates were never read on this path.
        assert (result.n, result.dim) == data.shape
        assert result.recall > 0.5

    def test_evaluate_server_with_concurrent_clients(self, snapshot_path,
                                                     workload):
        from repro.eval import evaluate_server

        _, queries = workload
        solo = evaluate_server(snapshot_path, queries, k=5,
                               dataset_name="toy")
        fanned = evaluate_server(snapshot_path, queries, k=5,
                                 dataset_name="toy", clients=3)
        assert fanned.method == "DB-LSH-serve[2p]x3c"
        # Chunked-and-reassembled answers carry the same quality as the
        # single-client batch (same server, same snapshot).
        assert fanned.recall == solo.recall
        assert fanned.ratio == solo.ratio

    def test_evaluate_server_rejects_unbatched_concurrent_clients(
            self, snapshot_path, workload):
        from repro.eval import evaluate_server

        _, queries = workload
        with pytest.raises(ValueError, match="clients"):
            evaluate_server(snapshot_path, queries, k=5, clients=2,
                            batch=False)
