"""Tests for the dataset hardness diagnostics (§VI-B3 quantifiers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.analysis import (
    hardness_report,
    local_intrinsic_dimensionality,
    relative_contrast,
)
from repro.data.generators import (
    gaussian_mixture,
    low_intrinsic_dim,
    scaled_heavy_tailed,
    uniform_hypercube,
)


class TestRelativeContrast:
    def test_clustered_beats_uniform(self):
        """Clustered data has far higher contrast than uniform data."""
        clustered = gaussian_mixture(
            1500, 32, n_clusters=10, cluster_std=0.5, center_spread=20.0, seed=0
        )
        uniform = uniform_hypercube(1500, 32, seed=0)
        assert relative_contrast(clustered) > relative_contrast(uniform)

    def test_uniform_high_dim_approaches_one(self):
        """The curse of dimensionality: contrast shrinks as d grows."""
        low_d = uniform_hypercube(1200, 4, seed=1)
        high_d = uniform_hypercube(1200, 256, seed=1)
        assert relative_contrast(high_d) < relative_contrast(low_d)

    def test_contrast_at_least_one(self):
        data = gaussian_mixture(500, 16, seed=2)
        assert relative_contrast(data) >= 1.0

    def test_scale_invariant(self):
        data = gaussian_mixture(500, 16, seed=3)
        a = relative_contrast(data)
        b = relative_contrast(data * 100.0)
        assert a == pytest.approx(b, rel=1e-9)

    def test_needs_three_points(self):
        with pytest.raises(ValueError, match="at least 3"):
            relative_contrast(np.zeros((2, 4)))

    def test_all_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            relative_contrast(np.ones((50, 4)))


class TestLID:
    def test_recovers_low_intrinsic_dimension(self):
        """LID of a noiseless 5-flat in R^64 is ~5, not 64."""
        data = low_intrinsic_dim(2000, 64, intrinsic_dim=5, noise=0.0, seed=0)
        lid = local_intrinsic_dimensionality(data, k=20)
        assert 2.0 < lid < 12.0

    def test_full_dimensional_gaussian_has_higher_lid(self):
        flat = low_intrinsic_dim(1500, 32, intrinsic_dim=4, noise=0.0, seed=1)
        full = np.random.default_rng(1).standard_normal((1500, 32))
        assert local_intrinsic_dimensionality(full, k=20) > (
            local_intrinsic_dimensionality(flat, k=20)
        )

    def test_validation(self):
        data = np.random.default_rng(0).standard_normal((30, 4))
        with pytest.raises(ValueError, match="k must be >= 2"):
            local_intrinsic_dimensionality(data, k=1)
        with pytest.raises(ValueError, match="need more than"):
            local_intrinsic_dimensionality(data, k=30)


class TestHardnessReport:
    def test_nus_standin_is_hardest(self):
        """The paper's §VI-B3 explanation: NUS's complex distribution has
        the worst relative contrast among descriptor stand-ins."""
        easy = gaussian_mixture(
            1200, 64, n_clusters=20, cluster_std=1.0, center_spread=8.0, seed=0
        )
        hard = scaled_heavy_tailed(1200, 64, tail=1.2, seed=0)
        easy_report = hardness_report(easy)
        hard_report = hardness_report(hard)
        assert hard_report.relative_contrast < easy_report.relative_contrast

    def test_report_fields(self):
        data = gaussian_mixture(400, 16, seed=4)
        report = hardness_report(data, sample=50)
        assert report.sample_size == 50
        assert report.mean_distance > report.mean_nn_distance > 0
        row = report.row()
        assert set(row) == {"relative_contrast", "lid", "mean_dist", "mean_nn_dist"}
