"""End-to-end deadline and hung-worker watchdog tests (`repro.serve`).

The resilience contract under test:

* every query either answers — bit-identical to
  ``load_index(path).query_batch(...)`` — or fails with the *typed*
  :class:`~repro.serve.DeadlineExceeded` within its budget;
* a worker that hangs mid-query is SIGKILLed by the watchdog and
  restarted from the immutable shard snapshot; under
  ``hang_policy="retry"`` the request is re-dispatched and still
  answers exactly, under ``hang_policy="fail"`` the caller gets the
  typed error within 2x its deadline and the *next* request answers
  exactly (lazy revival keeps the failure path fast);
* a hang never marks the server broken — the snapshot is immutable, so
  a fresh worker serves correctly; broken stays reserved for
  unrecoverable death-retry exhaustion;
* requests that expire while *waiting for dispatch* fail typed without
  ever touching a worker (the FIFO ticket lock honors deadlines).

Hangs are injected with the one-shot ``hang-on-query`` spec of the
``REPRO_SERVE_FAULT`` hook documented in :mod:`repro.serve.worker`,
aimed at a deterministic (shard, spawn) incarnation.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import ShardedDBLSH
from repro.data.generators import gaussian_mixture
from repro.io import load_index, save_index
from repro.serve import (
    DeadlineExceeded,
    MutableSnapshotServer,
    ServerError,
    SnapshotServer,
)

COMMON = dict(
    c=1.5, l_spaces=3, k_per_space=6, t=32, seed=0, auto_initial_radius=True
)


def _same(results, expected) -> bool:
    return len(results) == len(expected) and all(
        r.ids == e.ids and r.distances == e.distances
        for r, e in zip(results, expected)
    )


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(900, 12, n_clusters=5, seed=21)
    rng = np.random.default_rng(23)
    queries = data[rng.choice(900, 6, replace=False)] + 0.02
    return data, queries


@pytest.fixture(scope="module")
def snapshot_path(workload, tmp_path_factory):
    data, _ = workload
    path = str(tmp_path_factory.mktemp("deadline") / "sharded.npz")
    save_index(ShardedDBLSH(shards=2, **COMMON).fit(data), path)
    return path


@pytest.fixture(scope="module")
def expected(workload, snapshot_path):
    _, queries = workload
    return load_index(snapshot_path).query_batch(queries, k=5)


class TestValidation:
    def test_hang_policy_is_validated_at_construction(self, snapshot_path):
        with pytest.raises(ValueError, match="hang_policy"):
            SnapshotServer(snapshot_path, hang_policy="panic")

    def test_timeout_must_be_positive(self, workload, snapshot_path):
        _, queries = workload
        with SnapshotServer(snapshot_path, mp_context="fork") as server:
            for bad in (0, -1, -0.5):
                with pytest.raises(ValueError, match="timeout"):
                    server.query_batch(queries, k=5, timeout=bad)
            with pytest.raises(ValueError, match="timeout"):
                server.query(queries[0], k=5, timeout=0)

    def test_status_reports_the_resilience_counters(self, snapshot_path):
        with SnapshotServer(snapshot_path, mp_context="fork",
                            hang_policy="fail") as server:
            status = server.status()
        assert status["hang_policy"] == "fail"
        assert status["hang_kills"] == 0
        assert status["deadline_hits"] == 0


class TestFifoLockDeadline:
    def test_expired_waiter_abandons_and_is_skipped_on_release(self):
        from repro.serve.server import _FifoLock

        lock = _FifoLock()
        assert lock.acquire()  # ticket 0: held for the whole test
        # Ticket 1 arrives already out of budget: it must give up
        # instead of waiting, leaving an abandoned ticket behind.
        assert not lock.acquire(deadline=time.monotonic() - 0.01)
        acquired = threading.Event()

        def waiter():
            assert lock.acquire(deadline=time.monotonic() + 30.0)
            acquired.set()
            lock.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()  # FIFO: ticket 2 waits behind 0
        lock.release()  # serving advances 0 -> skips abandoned 1 -> 2
        assert acquired.wait(5.0), "release() never skipped the abandoned ticket"
        thread.join(timeout=5.0)


class TestWatchdogFaultMatrix:
    """Every fault hook x hang policy: the caller sees an exact answer
    or the typed deadline error — never a hang, never an untyped crash."""

    @pytest.mark.parametrize("policy", ["retry", "fail"])
    @pytest.mark.parametrize("fault", ["die-on-query", "sleep-on-query",
                                       "hang-on-query"])
    def test_fault_times_policy(self, fault, policy, workload, snapshot_path,
                                expected, monkeypatch):
        _, queries = workload
        arg = ":0.2" if fault == "sleep-on-query" else ""
        monkeypatch.setenv("REPRO_SERVE_FAULT", f"{fault}:1:0{arg}")
        with SnapshotServer(snapshot_path, mp_context="fork",
                            query_timeout=1.0, hang_policy=policy) as server:
            if fault == "hang-on-query" and policy == "fail":
                with pytest.raises(DeadlineExceeded):
                    server.query_batch(queries, k=5)
                assert server.hang_kills_total == 1
            else:
                # die: supervision restarts and re-dispatches; sleep:
                # 0.2s < the 1s silence bound, the answer just arrives;
                # hang+retry: watchdog kill, revive, exact answer.
                results = server.query_batch(queries, k=5)
                assert _same(results, expected)
                if fault == "hang-on-query":
                    assert server.hang_kills_total == 1
            monkeypatch.delenv("REPRO_SERVE_FAULT")
            # Recovery invariant, every cell: the next request answers
            # bit-identically and the server reports itself serving.
            assert _same(server.query_batch(queries, k=5), expected)
            status = server.status()
            assert status["serving"] and status["broken"] is None


class TestHangFailDeadlineBound:
    def test_typed_failure_lands_within_twice_the_budget(
            self, workload, snapshot_path, expected, monkeypatch):
        _, queries = workload
        monkeypatch.setenv("REPRO_SERVE_FAULT", "hang-on-query:0:0")
        budget = 0.8
        with SnapshotServer(snapshot_path, mp_context="fork",
                            query_timeout=120.0,
                            hang_policy="fail") as server:
            before = set(server.worker_pids)
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded):
                server.query_batch(queries, k=5, timeout=budget)
            elapsed = time.monotonic() - started
            assert elapsed < 2 * budget, (
                f"typed failure took {elapsed:.2f}s for a {budget}s budget"
            )
            assert server.hang_kills_total == 1
            assert server.deadline_hits_total >= 1
            monkeypatch.delenv("REPRO_SERVE_FAULT")
            # The killed worker is revived lazily: the next request
            # restarts it and answers exactly.
            assert _same(server.query_batch(queries, k=5), expected)
            after = set(server.worker_pids)
            assert after != before, "the hung worker was never replaced"
            assert server.restarts_total >= 1

    def test_deadline_under_retry_policy_still_fails_typed(
            self, workload, snapshot_path, expected, monkeypatch):
        """With the budget spent there is nothing left to retry with:
        even hang_policy='retry' must answer the typed error."""
        _, queries = workload
        monkeypatch.setenv("REPRO_SERVE_FAULT", "hang-on-query:0:0")
        with SnapshotServer(snapshot_path, mp_context="fork",
                            query_timeout=120.0,
                            hang_policy="retry") as server:
            with pytest.raises(DeadlineExceeded):
                server.query_batch(queries, k=5, timeout=0.5)
            monkeypatch.delenv("REPRO_SERVE_FAULT")
            assert _same(server.query_batch(queries, k=5), expected)

    def test_generous_deadline_is_invisible(self, workload, snapshot_path,
                                            expected):
        _, queries = workload
        with SnapshotServer(snapshot_path, mp_context="fork") as server:
            assert _same(server.query_batch(queries, k=5, timeout=60.0),
                         expected)
            assert server.deadline_hits_total == 0


class TestHangRetryExhaustion:
    def test_replacement_that_also_hangs_exhausts_the_retry(
            self, workload, snapshot_path, expected, monkeypatch):
        _, queries = workload
        monkeypatch.setenv("REPRO_SERVE_FAULT",
                           "hang-on-query:0:0,hang-on-query:0:1")
        with SnapshotServer(snapshot_path, mp_context="fork",
                            query_timeout=0.5,
                            hang_policy="retry") as server:
            with pytest.raises(DeadlineExceeded):
                server.query_batch(queries, k=5)
            assert server.hang_kills_total == 2
            # Unlike death-retry exhaustion, hang exhaustion does NOT
            # break the server: the snapshot is immutable, a fresh
            # worker (spawn 2, unarmed) serves exactly.
            monkeypatch.delenv("REPRO_SERVE_FAULT")
            assert _same(server.query_batch(queries, k=5), expected)
            status = server.status()
            assert status["serving"] and status["broken"] is None


class TestQueueExpiry:
    def test_request_expiring_in_the_dispatch_queue_fails_typed(
            self, workload, snapshot_path, expected, monkeypatch):
        """A slow head-of-line request must not drag short-deadline
        waiters past their budgets: they fail in the queue, typed."""
        _, queries = workload
        monkeypatch.setenv("REPRO_SERVE_FAULT", "sleep-on-query:0:0:0.6")
        outcomes = {}
        with SnapshotServer(snapshot_path, mp_context="fork") as server:
            def head():
                outcomes["head"] = server.query_batch(queries, k=5)

            def waiter():
                try:
                    server.query_batch(queries, k=5, timeout=0.15)
                except DeadlineExceeded as exc:
                    outcomes["waiter"] = str(exc)

            head_thread = threading.Thread(target=head)
            head_thread.start()
            time.sleep(0.15)  # the head owns dispatch before the waiter queues
            waiter_thread = threading.Thread(target=waiter)
            waiter_thread.start()
            head_thread.join(timeout=30.0)
            waiter_thread.join(timeout=30.0)
            assert _same(outcomes["head"], expected)
            assert "waiting for dispatch" in outcomes["waiter"]
            # The expired waiter never reached a worker: no kills.
            assert server.hang_kills_total == 0


class TestMutablePassThrough:
    def test_mutable_server_honors_the_deadline(self, workload, snapshot_path,
                                                expected, tmp_path,
                                                monkeypatch):
        _, queries = workload
        wal = str(tmp_path / "deadline.wal")
        # Armed before the server exists: the fault spec is read by the
        # worker incarnation at startup, not per query.
        monkeypatch.setenv("REPRO_SERVE_FAULT", "hang-on-query:0:0")
        with MutableSnapshotServer(snapshot_path, wal_path=wal,
                                   mp_context="fork", query_timeout=120.0,
                                   hang_policy="fail") as server:
            with pytest.raises(DeadlineExceeded):
                server.query_batch(queries, k=5, timeout=0.5)
            monkeypatch.delenv("REPRO_SERVE_FAULT")
            assert _same(server.query_batch(queries, k=5), expected)
            assert _same(server.query_batch(queries, k=5, timeout=60.0),
                         expected)


class TestDieStaysServerError:
    def test_death_retry_exhaustion_is_not_a_deadline(self, workload,
                                                      snapshot_path,
                                                      monkeypatch):
        """die-twice keeps its existing typed failure: ServerError (and a
        broken server), never misreported as a deadline problem."""
        _, queries = workload
        monkeypatch.setenv("REPRO_SERVE_FAULT",
                           "die-on-query:0:0,die-on-query:0:1")
        with SnapshotServer(snapshot_path, mp_context="fork") as server:
            with pytest.raises(ServerError) as excinfo:
                server.query_batch(queries, k=5)
            assert not isinstance(excinfo.value, DeadlineExceeded)
            assert server.status()["broken"] is not None
