"""Method-specific behaviour tests for each baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    C2LSH,
    E2LSH,
    FBLSH,
    LCCSLSH,
    LSBForest,
    MultiProbeLSH,
    PMLSH,
    QALSH,
    R2LSH,
    SRS,
    VHP,
)
from repro.baselines.multiprobe import perturbation_sets
from repro.data.generators import gaussian_mixture


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(
        400, 16, n_clusters=6, cluster_std=1.0, center_spread=8.0, seed=11
    )


class TestFBLSH:
    def test_validation(self):
        with pytest.raises(ValueError, match="c must be > 1"):
            FBLSH(c=1.0)

    def test_index_size_matches_kl(self, data):
        method = FBLSH(k_per_space=4, l_spaces=6, seed=0).fit(data)
        assert method.num_hash_functions == 24

    def test_round_tables_cached(self, data):
        method = FBLSH(
            k_per_space=4, l_spaces=3, seed=0, auto_initial_radius=True
        ).fit(data)
        first = method._round_tables(0)
        assert method._round_tables(0) is first

    def test_hash_boundary_misses_relative_to_dblsh(self, data):
        """The point of the ablation: with the same K*L budget FB-LSH's
        fixed buckets cannot beat DB-LSH's query-centric ones on recall."""
        from repro import DBLSH
        from repro.data.groundtruth import exact_knn
        from repro.eval.metrics import recall

        rng = np.random.default_rng(3)
        queries = data[rng.choice(400, 12, replace=False)] + 0.2 * rng.standard_normal(
            (12, 16)
        )
        gt_ids, _ = exact_knn(queries, data, 10)

        def mean_recall(method):
            method.fit(data)
            return float(
                np.mean(
                    [
                        recall(method.query(q, k=10).ids, gt_ids[i])
                        for i, q in enumerate(queries)
                    ]
                )
            )

        db = mean_recall(
            DBLSH(c=1.5, l_spaces=4, k_per_space=6, t=8, seed=0,
                  auto_initial_radius=True)
        )
        fb = mean_recall(
            FBLSH(c=1.5, k_per_space=6, l_spaces=4, t=8, seed=0,
                  auto_initial_radius=True)
        )
        assert db >= fb - 0.05  # dynamic bucketing never loses meaningfully


class TestE2LSH:
    def test_suits_are_materialised(self, data):
        method = E2LSH(num_radii=4, l_tables=3, k_per_table=5, seed=0).fit(data)
        assert len(method._suits) == 4
        assert len(method._suits[0]) == 3
        assert method.num_hash_functions == 4 * 3 * 5

    def test_index_larger_than_fblsh(self, data):
        """Table I: E2LSH pays M suits; FB-LSH's single suit is M x smaller."""
        e2 = E2LSH(num_radii=8, l_tables=4, k_per_table=5, seed=0).fit(data)
        fb = FBLSH(k_per_space=5, l_spaces=4, seed=0).fit(data)
        assert e2.num_hash_functions == 8 * fb.num_hash_functions

    def test_validation(self):
        with pytest.raises(ValueError, match="c must be > 1"):
            E2LSH(c=0.5)


class TestMultiProbe:
    def test_perturbation_sets_sorted_by_cost(self):
        costs = np.array([0.1, 0.2, 0.5, 0.9])
        sets = perturbation_sets(costs, 10)
        scores = [sum(costs[list(s)]) for s in sets]
        assert scores == sorted(scores)

    def test_perturbation_sets_unique(self):
        costs = np.array([0.1, 0.3, 0.4])
        sets = perturbation_sets(costs, 20)
        assert len(sets) == len(set(sets))

    def test_perturbation_sets_limit(self):
        costs = np.linspace(0.1, 1.0, 6)
        assert len(perturbation_sets(costs, 3)) == 3

    def test_empty_inputs(self):
        assert perturbation_sets(np.array([]), 5) == []
        assert perturbation_sets(np.array([0.1]), 0) == []

    def test_more_probes_more_candidates(self, data):
        few = MultiProbeLSH(l_tables=3, k_per_table=6, num_probes=2,
                            max_candidates=10_000, seed=0).fit(data)
        many = MultiProbeLSH(l_tables=3, k_per_table=6, num_probes=40,
                             max_candidates=10_000, seed=0).fit(data)
        q = data[0] + 0.1
        assert (
            many.query(q, k=5).stats.candidates_verified
            >= few.query(q, k=5).stats.candidates_verified
        )


class TestQALSH:
    def test_collision_threshold_derived(self):
        method = QALSH(c=2.0, m=40, w=2.719)
        assert 1 <= method.l_threshold <= 40

    def test_explicit_collision_ratio(self):
        method = QALSH(m=10, collision_ratio=0.5)
        assert method.l_threshold == 5

    def test_validation(self):
        with pytest.raises(ValueError, match="c must be > 1"):
            QALSH(c=1.0)
        with pytest.raises(ValueError, match="m must be >= 1"):
            QALSH(m=0)
        with pytest.raises(ValueError, match="collision_ratio"):
            QALSH(collision_ratio=1.5)

    def test_budget_bounds_candidates(self, data):
        method = QALSH(m=16, beta=0.02, seed=0, auto_initial_radius=True).fit(data)
        result = method.query(data[0] + 0.05, k=3)
        assert result.stats.candidates_verified <= int(np.ceil(0.02 * 400)) + 3


class TestC2LSH:
    def test_requires_integer_c(self):
        with pytest.raises(ValueError, match="integer c"):
            C2LSH(c=1.5)

    def test_merged_bucket_lookup_matches_rehash(self, data):
        """The searchsorted merge must agree with re-bucketing at width c^s w."""
        method = C2LSH(c=2, m=4, w=1.0, seed=0).fit(data)
        assert method._family is not None and method._base_buckets is not None
        level = 3
        factor = 2**level
        q = data[7] + 0.3
        q_buckets = method._family.hash_one(q)
        for j in range(4):
            q_merged = int(q_buckets[j]) // factor
            keys = method._sorted_keys[j]
            start = int(np.searchsorted(keys, q_merged * factor, side="left"))
            stop = int(np.searchsorted(keys, (q_merged + 1) * factor, side="left"))
            got = set(method._sorted_ids[j][start:stop].tolist())
            expected = set(
                np.flatnonzero(
                    method._base_buckets[:, j] // factor == q_merged
                ).tolist()
            )
            assert got == expected


class TestVHP:
    def test_sphere_filter_tightens_candidates(self, data):
        """VHP's hypersphere must admit no more candidates than pure slab
        counting at the same threshold (QALSH-like behaviour)."""
        q = data[0] + 0.1
        vhp = VHP(m=20, t0=1.4, beta=0.5, collision_ratio=0.3, seed=0,
                  auto_initial_radius=True).fit(data)
        qalsh = QALSH(m=20, w=2.8, beta=0.5, collision_ratio=0.3, seed=0,
                      auto_initial_radius=True).fit(data)
        assert (
            vhp.query(q, k=5).stats.candidates_verified
            <= qalsh.query(q, k=5).stats.candidates_verified + 50
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="t0"):
            VHP(t0=0.0)


class TestR2LSH:
    def test_requires_even_m(self):
        with pytest.raises(ValueError, match="even"):
            R2LSH(m=7)

    def test_spaces_shape(self, data):
        method = R2LSH(m=12, seed=0).fit(data)
        assert method._spaces is not None
        assert method._spaces.shape == (6, 400, 2)


class TestPMLSH:
    def test_budget_bounds_candidates(self, data):
        method = PMLSH(m=10, beta=0.05, seed=0).fit(data)
        result = method.query(data[0] + 500.0, k=2)  # far query: no chi2 stop
        assert result.stats.candidates_verified <= int(np.ceil(0.05 * 400)) + 2

    def test_higher_confidence_means_more_work(self, data):
        q = data[0] + 0.05
        lo = PMLSH(m=10, beta=0.9, confidence=0.5, seed=0).fit(data).query(q, k=5)
        hi = PMLSH(m=10, beta=0.9, confidence=0.999, seed=0).fit(data).query(q, k=5)
        assert hi.stats.candidates_verified >= lo.stats.candidates_verified

    def test_validation(self):
        with pytest.raises(ValueError, match="m must be >= 1"):
            PMLSH(m=0)
        with pytest.raises(ValueError, match="strictly between"):
            PMLSH(confidence=1.0)


class TestSRS:
    def test_tiny_index(self, data):
        method = SRS(m=6, seed=0).fit(data)
        assert method.num_hash_functions == 6  # Table I: the smallest index

    def test_chi2_stop_fires_on_easy_query(self, data):
        method = SRS(m=6, beta=0.9, seed=0).fit(data)
        result = method.query(data[0], k=1)
        assert result.stats.terminated_by in {"chi2_stop", "budget", "exhausted"}
        # A self-query should stop long before scanning beta * n points.
        assert result.stats.candidates_verified < 360


class TestLSBForest:
    def test_zvalues_sorted(self, data):
        method = LSBForest(l_trees=2, m=4, bits_per_dim=8, seed=0).fit(data)
        for tree in method._trees:
            assert tree.zvalues == sorted(tree.zvalues)
            assert len(tree.zvalues) == 400

    def test_more_trees_do_not_reduce_candidates(self, data):
        q = data[0] + 0.1
        few = LSBForest(l_trees=2, m=4, bits_per_dim=8, candidate_factor=30,
                        seed=0).fit(data)
        many = LSBForest(l_trees=6, m=4, bits_per_dim=8, candidate_factor=30,
                         seed=0).fit(data)
        assert (
            many.query(q, k=5).stats.candidates_verified
            >= few.query(q, k=5).stats.candidates_verified
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="bits_per_dim"):
            LSBForest(bits_per_dim=1)


class TestLCCS:
    def test_rotations_built(self, data):
        method = LCCSLSH(m=8, probes=50, seed=0).fit(data)
        assert len(method._rotations) == 8
        for order in method._rotations:
            assert len(order) == 400
            assert order == sorted(order)

    def test_probe_budget(self, data):
        method = LCCSLSH(m=8, probes=60, seed=0).fit(data)
        result = method.query(data[0] + 0.2, k=5)
        assert result.stats.candidates_verified <= 60 + 5

    def test_validation(self):
        with pytest.raises(ValueError, match="m must be >= 2"):
            LCCSLSH(m=1)
        with pytest.raises(ValueError, match="probes"):
            LCCSLSH(probes=0)
