"""Protocol-compliance tests parametrized over every ANN method.

Every method must: find a point's own row on a self-query, return sorted
unique results, be deterministic under a fixed seed, validate inputs, and
populate the work counters.  These are the invariants the evaluation
harness relies on.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np
import pytest

from repro import DBLSH
from repro.baselines import (
    C2LSH,
    E2LSH,
    FBLSH,
    LCCSLSH,
    LSBForest,
    LinearScan,
    MultiProbeLSH,
    PMLSH,
    QALSH,
    R2LSH,
    SRS,
    VHP,
)
from repro.data.generators import gaussian_mixture

#: Factories with smoke-scale parameters (fast builds, decent recall).
METHOD_FACTORIES: Dict[str, Callable] = {
    "DBLSH": lambda: DBLSH(
        c=1.5, l_spaces=4, k_per_space=6, t=16, seed=0, auto_initial_radius=True
    ),
    "LinearScan": LinearScan,
    "FBLSH": lambda: FBLSH(
        c=1.5, k_per_space=4, l_spaces=6, t=16, seed=0, auto_initial_radius=True
    ),
    "E2LSH": lambda: E2LSH(
        c=1.5, w=4.0, k_per_table=6, l_tables=4, num_radii=8, seed=0,
        auto_initial_radius=True,
    ),
    "MultiProbeLSH": lambda: MultiProbeLSH(
        k_per_table=6, l_tables=3, num_probes=12, max_candidates=200, seed=0
    ),
    "QALSH": lambda: QALSH(c=1.5, m=20, w=2.0, beta=0.1, seed=0,
                           auto_initial_radius=True),
    "C2LSH": lambda: C2LSH(c=2, m=20, w=1.0, beta=0.1, seed=0, auto_scale=True),
    "VHP": lambda: VHP(c=1.5, m=20, t0=1.4, beta=0.1, seed=0,
                       auto_initial_radius=True),
    "R2LSH": lambda: R2LSH(c=1.5, m=20, beta=0.1, seed=0, auto_initial_radius=True),
    "PMLSH": lambda: PMLSH(m=12, beta=0.1, seed=0),
    "SRS": lambda: SRS(c=1.5, m=6, beta=0.1, seed=0),
    "LSBForest": lambda: LSBForest(
        c=2.0, l_trees=4, m=6, bits_per_dim=8, candidate_factor=40, seed=0
    ),
    "LCCSLSH": lambda: LCCSLSH(m=10, probes=150, seed=0),
}

_DATASET = gaussian_mixture(
    500, 24, n_clusters=8, cluster_std=1.0, center_spread=8.0, seed=7
)
_FITTED_CACHE: Dict[str, object] = {}


@pytest.fixture(scope="module")
def dataset() -> np.ndarray:
    return _DATASET


def fitted(name: str):
    """Build-once cache of fitted methods (fitting is the slow part)."""
    if name not in _FITTED_CACHE:
        _FITTED_CACHE[name] = METHOD_FACTORIES[name]().fit(_DATASET)
    return _FITTED_CACHE[name]


@pytest.mark.parametrize("name", list(METHOD_FACTORIES))
class TestProtocol:
    def test_self_query_finds_itself(self, name, dataset):
        result = fitted(name).query(dataset[17], k=1)
        assert len(result) >= 1
        assert result.neighbors[0].id == 17
        assert result.neighbors[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_results_sorted_and_unique(self, name, dataset):
        result = fitted(name).query(dataset[3] + 0.01, k=8)
        assert result.distances == sorted(result.distances)
        assert len(set(result.ids)) == len(result.ids)

    def test_k_validation(self, name, dataset):
        with pytest.raises(ValueError, match="k must be >= 1"):
            fitted(name).query(dataset[0], k=0)

    def test_query_dim_validation(self, name, dataset):
        with pytest.raises(ValueError, match="dimension"):
            fitted(name).query(np.zeros(dataset.shape[1] + 1), k=1)

    def test_query_before_fit(self, name, dataset):
        fresh = METHOD_FACTORIES[name]()
        with pytest.raises(RuntimeError, match="fit"):
            fresh.query(dataset[0], k=1)

    def test_stats_counters(self, name, dataset):
        result = fitted(name).query(dataset[0], k=3)
        assert result.stats.candidates_verified >= 1
        assert result.stats.distance_computations >= result.stats.candidates_verified
        assert result.stats.elapsed_seconds > 0.0

    def test_build_seconds_recorded(self, name, dataset):
        assert fitted(name).build_seconds > 0.0

    def test_ids_within_dataset(self, name, dataset):
        result = fitted(name).query(dataset[0] + 0.2, k=10)
        assert all(0 <= i < dataset.shape[0] for i in result.ids)


@pytest.mark.parametrize("name", ["DBLSH", "FBLSH", "QALSH", "PMLSH", "SRS"])
def test_seed_determinism(name, dataset):
    """Same seed, same data => identical neighbor lists."""
    q = dataset[0] + 0.05
    a = METHOD_FACTORIES[name]().fit(dataset).query(q, k=5)
    b = METHOD_FACTORIES[name]().fit(dataset).query(q, k=5)
    assert a.ids == b.ids
    assert a.distances == pytest.approx(b.distances)


def test_dblsh_recall_on_clustered_data(dataset):
    """DB-LSH must be near-perfect on easy, well-clustered data."""
    from repro.data.groundtruth import exact_knn
    from repro.eval.metrics import recall

    rng = np.random.default_rng(0)
    queries = dataset[rng.choice(500, 8, replace=False)] + 0.05
    gt_ids, _ = exact_knn(queries, dataset, 10)
    method = fitted("DBLSH")
    values = []
    for qi, q in enumerate(queries):
        result = method.query(q, k=10)
        values.append(recall(result.ids, gt_ids[qi]))
    assert float(np.mean(values)) >= 0.8
