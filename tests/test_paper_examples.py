"""Tests that pin the paper's worked examples and stated guarantees.

* Example 1 / Fig. 1 — the (r, c)-NN case analysis on the 12-point set;
* Observation 1 — scale invariance of the dynamic family;
* Lemma 1 — the E1/E2 probability bounds, checked empirically;
* Remark 2 — the budget 2tL trade-off;
* Table I qualitative claims — index sizes across methods.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBLSH, derive_parameters
from repro.data.generators import planted_neighbors
from repro.hashing.compound import CompoundHasher
from repro.hashing.probability import collision_probability_dynamic


class TestExample1Semantics:
    """Definition 2's three cases on a planted configuration.

    Mirrors Example 1: at small r nothing is returned, at intermediate r
    the result is undefined (anything goes), and once r reaches the
    planted distance a point within c * r must come back.
    """

    @pytest.fixture(scope="class")
    def setup(self):
        data, queries = planted_neighbors(
            300, 16, n_queries=6, planted_distance=2.0, background_distance=40.0,
            seed=21,
        )
        index = DBLSH(c=1.5, l_spaces=6, k_per_space=4, t=16, seed=3,
                      initial_radius=1.0).fit(data)
        return data, queries, index

    def test_case_2_small_radius_returns_nothing(self, setup):
        _, queries, index = setup
        # r = 0.1: no point within c * r = 0.15 exists -> must return nothing.
        empties = sum(index.range_query(q, radius=0.1).is_empty() for q in queries)
        assert empties == len(queries)

    def test_case_1_large_radius_returns_a_point(self, setup):
        _, queries, index = setup
        # r = 2.5 >= planted distance 2.0: a point within c * r = 3.75 must
        # be returned with probability >= 1/2 - 1/e; our L makes it near 1.
        hits = 0
        for q in queries:
            result = index.range_query(q, radius=2.5)
            if result.neighbors and result.neighbors[0].distance <= 1.5 * 2.5:
                hits += 1
        assert hits >= len(queries) - 1

    def test_c_ann_driver_finds_planted(self, setup):
        _, queries, index = setup
        for q in queries:
            result = index.query(q, k=1)
            # Theorem 1: c^2-approximate; exact NN distance is 2.0.
            assert result.neighbors[0].distance <= (1.5**2) * 2.0 + 1e-9


class TestObservation1:
    def test_collision_probability_scale_free(self):
        """p(r; w0 r) == p(1; w0) for any r (Eq. 5)."""
        w0 = 9.0
        reference = float(collision_probability_dynamic(1.0, w0))
        for r in [1e-3, 0.1, 1.0, 7.3, 1e4]:
            assert float(collision_probability_dynamic(r, w0 * r)) == pytest.approx(
                reference, rel=1e-12
            )

    @pytest.mark.slow
    def test_empirical_window_scale_invariance(self):
        """Window membership of a pair at distance r in buckets of width
        w0 * r is distributed identically across r."""
        rng = np.random.default_rng(0)
        dim, trials, w0 = 24, 3000, 4.0
        hasher = CompoundHasher(dim, l_spaces=1, k_per_space=trials, seed=5)
        base = rng.standard_normal(dim)
        direction = rng.standard_normal(dim)
        direction /= np.linalg.norm(direction)
        rates = []
        for r in [0.5, 1.0, 4.0]:
            other = base + r * direction
            h1 = hasher.project_query(base)[0]
            h2 = hasher.project_query(other)[0]
            rates.append(float(np.mean(np.abs(h1 - h2) <= w0 * r / 2.0)))
        assert max(rates) - min(rates) < 0.05


class TestLemma1:
    @pytest.mark.slow
    def test_e1_bound_holds_empirically(self):
        """A point at distance exactly r falls in some window with
        probability >= 1 - 1/e under the derived K and L."""
        n, t = 5000, 16
        params = derive_parameters(n, c=1.5, t=t)
        rng = np.random.default_rng(2)
        dim = 24
        trials, hits = 120, 0
        for trial in range(trials):
            hasher = CompoundHasher(
                dim, params.l_spaces, params.k_per_space, seed=trial
            )
            q = rng.standard_normal(dim)
            direction = rng.standard_normal(dim)
            direction /= np.linalg.norm(direction)
            o = q + direction  # distance exactly r = 1
            hq = hasher.project_query(q)
            ho = hasher.project_query(o)
            inside = np.all(np.abs(hq - ho) <= params.w0 / 2.0, axis=1)
            if inside.any():
                hits += 1
        assert hits / trials >= (1 - 1 / np.e) - 0.10  # sampling slack

    def test_k_and_l_grow_with_n(self):
        small = derive_parameters(1_000, c=1.5)
        large = derive_parameters(1_000_000, c=1.5)
        assert large.k_per_space > small.k_per_space
        assert large.l_spaces >= small.l_spaces


class TestRemark2:
    def test_budget_scales_with_t(self):
        a = derive_parameters(10_000, t=4, l_spaces=5, k_per_space=10)
        b = derive_parameters(10_000, t=32, l_spaces=5, k_per_space=10)
        assert b.candidate_budget_base == 8 * a.candidate_budget_base

    def test_larger_t_smaller_theoretical_index(self):
        a = derive_parameters(100_000, t=1)
        b = derive_parameters(100_000, t=100)
        assert b.k_per_space < a.k_per_space


class TestTableIIndexSizes:
    """Qualitative index-size ordering from Table I, via hash-function
    counts on a common dataset."""

    def test_ordering(self):
        from repro.baselines import E2LSH, PMLSH, QALSH, SRS
        from repro.data.generators import gaussian_mixture

        data = gaussian_mixture(300, 16, seed=0)
        db = DBLSH(l_spaces=5, k_per_space=10, seed=0).fit(data)
        e2 = E2LSH(num_radii=10, l_tables=5, k_per_table=10, seed=0).fit(data)
        qalsh = QALSH(m=40, seed=0).fit(data)
        srs = SRS(m=6, seed=0).fit(data)
        pm = PMLSH(m=15, seed=0).fit(data)
        # E2LSH pays the M-fold blow-up; SRS/PM-LSH have the tiny O(n) end.
        assert e2.num_hash_functions == 10 * db.num_hash_functions
        assert srs.num_hash_functions < pm.num_hash_functions
        assert pm.num_hash_functions < qalsh.num_hash_functions
        assert qalsh.num_hash_functions <= db.num_hash_functions
