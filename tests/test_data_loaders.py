"""Roundtrip tests for the fvecs/ivecs readers and writers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loaders import read_fvecs, read_ivecs, write_fvecs, write_ivecs


class TestFvecs:
    def test_roundtrip(self, tmp_path, rng):
        path = str(tmp_path / "points.fvecs")
        original = rng.standard_normal((20, 8)).astype(np.float32)
        write_fvecs(path, original)
        loaded = read_fvecs(path)
        assert loaded.shape == (20, 8)
        assert loaded.dtype == np.float64
        np.testing.assert_allclose(loaded, original, atol=1e-6)

    def test_limit(self, tmp_path, rng):
        path = str(tmp_path / "points.fvecs")
        write_fvecs(path, rng.standard_normal((20, 8)))
        loaded = read_fvecs(path, limit=5)
        assert loaded.shape == (5, 8)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_fvecs(str(tmp_path / "missing.fvecs"))

    def test_corrupt_size(self, tmp_path):
        path = str(tmp_path / "bad.fvecs")
        np.array([3, 0], dtype=np.int32).tofile(path)  # header says 3, body 1
        with pytest.raises(ValueError, match="not a multiple"):
            read_fvecs(path)

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.fvecs")
        open(path, "wb").close()
        with pytest.raises(ValueError, match="empty"):
            read_fvecs(path)

    def test_inconsistent_dims(self, tmp_path):
        path = str(tmp_path / "mixed.fvecs")
        # Two records claiming different dimensionalities but same stride.
        rec = np.array([2, 0, 0, 3, 0, 0], dtype=np.int32)
        rec.tofile(path)
        with pytest.raises(ValueError, match="inconsistent"):
            read_fvecs(path)


class TestIvecs:
    def test_roundtrip(self, tmp_path, rng):
        path = str(tmp_path / "ids.ivecs")
        original = rng.integers(0, 1000, size=(15, 10)).astype(np.int32)
        write_ivecs(path, original)
        loaded = read_ivecs(path)
        assert loaded.dtype == np.int64
        np.testing.assert_array_equal(loaded, original)

    def test_negative_values_roundtrip(self, tmp_path):
        path = str(tmp_path / "neg.ivecs")
        original = np.array([[-5, 3], [7, -2]], dtype=np.int32)
        write_ivecs(path, original)
        np.testing.assert_array_equal(read_ivecs(path), original)
