"""Termination-reason coverage: every stop condition fires when it should.

Each method reports how its query ended (``stats.terminated_by``); the
paper's correctness arguments (Lemma 2) hinge on these conditions, so
each is exercised deliberately: exhausted budgets, satisfied radii,
exhausted datasets and the patience extension.
"""

from __future__ import annotations

import pytest

from repro import DBLSH
from repro.baselines import FBLSH, PMLSH, QALSH, SRS
from repro.data.generators import gaussian_mixture, planted_neighbors


@pytest.fixture(scope="module")
def clustered():
    return gaussian_mixture(600, 16, n_clusters=8, cluster_std=1.0,
                            center_spread=8.0, seed=3)


class TestDBLSHTermination:
    def test_radius_stop_on_easy_query(self, clustered):
        """A self-query finds distance 0 <= c*r immediately: radius stop."""
        index = DBLSH(l_spaces=3, k_per_space=5, t=500, seed=0,
                      auto_initial_radius=True).fit(clustered)
        result = index.query(clustered[0], k=1)
        assert result.stats.terminated_by == "radius"

    def test_budget_stop_with_tiny_t(self, clustered):
        """t = 1 exhausts 2tL + k candidates before quality is reached."""
        index = DBLSH(l_spaces=3, k_per_space=2, t=1, seed=0,
                      auto_initial_radius=True).fit(clustered)
        far = clustered.mean(axis=0) + 3.0
        result = index.query(far, k=10)
        assert result.stats.terminated_by == "budget"
        assert result.stats.candidates_verified <= 2 * 1 * 3 + 10

    def test_exhausted_stop_with_huge_budget(self):
        """With more budget than points the driver must notice coverage."""
        data = gaussian_mixture(50, 8, n_clusters=2, seed=1)
        index = DBLSH(l_spaces=2, k_per_space=3, t=10_000, seed=0,
                      auto_initial_radius=True).fit(data)
        far = data.mean(axis=0) + 100.0
        result = index.query(far, k=60)  # k > n, unattainable quality
        assert result.stats.terminated_by == "exhausted"
        assert result.stats.candidates_verified == 50

    def test_patience_stop(self, clustered):
        index = DBLSH(l_spaces=3, k_per_space=4, t=10_000, seed=0,
                      auto_initial_radius=True, patience=5).fit(clustered)
        far = clustered.mean(axis=0) + 50.0
        result = index.query(far, k=5)
        assert result.stats.terminated_by in {"patience", "radius"}

    def test_range_query_no_result(self):
        data, queries = planted_neighbors(200, 8, n_queries=1,
                                          planted_distance=5.0,
                                          background_distance=50.0, seed=0)
        index = DBLSH(l_spaces=3, k_per_space=4, seed=0).fit(data)
        result = index.range_query(queries[0], radius=0.001)
        assert result.stats.terminated_by == "no_result"
        assert result.is_empty()


class TestBaselineTermination:
    def test_fblsh_reasons(self, clustered):
        method = FBLSH(k_per_space=4, l_spaces=4, t=1, seed=0,
                       auto_initial_radius=True).fit(clustered)
        result = method.query(clustered.mean(axis=0), k=10)
        assert result.stats.terminated_by in {"budget", "radius", "exhausted",
                                              "max_rounds"}

    def test_qalsh_budget(self, clustered):
        method = QALSH(m=12, beta=0.01, seed=0,
                       auto_initial_radius=True).fit(clustered)
        result = method.query(clustered.mean(axis=0) + 2.0, k=10)
        assert result.stats.terminated_by in {"budget", "radius"}

    def test_pmlsh_chi2_stop_on_self_query(self, clustered):
        method = PMLSH(m=12, beta=0.9, confidence=0.9, seed=0).fit(clustered)
        result = method.query(clustered[0], k=1)
        assert result.stats.terminated_by == "chi2_stop"

    def test_pmlsh_exhausted_on_tiny_data(self):
        data = gaussian_mixture(20, 8, seed=0)
        method = PMLSH(m=8, beta=0.999, confidence=0.999999, seed=0).fit(data)
        result = method.query(data.mean(axis=0), k=25)
        assert result.stats.terminated_by in {"exhausted", "budget"}

    def test_srs_budget_on_adversarial_query(self, clustered):
        method = SRS(m=6, beta=0.02, p_tau=0.999999, seed=0).fit(clustered)
        result = method.query(clustered.mean(axis=0), k=10)
        assert result.stats.terminated_by in {"budget", "chi2_stop"}


class TestWorkAccounting:
    def test_rounds_increase_for_farther_queries(self, clustered):
        index = DBLSH(l_spaces=3, k_per_space=5, t=16, seed=0,
                      auto_initial_radius=True).fit(clustered)
        near = index.query(clustered[0], k=1).stats.rounds
        far = index.query(clustered.mean(axis=0) + 30.0, k=1).stats.rounds
        assert far >= near

    def test_final_radius_tracks_schedule(self, clustered):
        index = DBLSH(l_spaces=3, k_per_space=5, t=16, seed=0,
                      auto_initial_radius=True).fit(clustered)
        result = index.query(clustered[0], k=1)
        expected = index.initial_radius * (1.5 ** (result.stats.rounds - 1))
        assert result.stats.final_radius == pytest.approx(expected)

    def test_window_queries_counted(self, clustered):
        index = DBLSH(l_spaces=4, k_per_space=5, t=16, seed=0,
                      auto_initial_radius=True).fit(clustered)
        result = index.query(clustered[0], k=1)
        # At most L windows per round; at least one window was opened.
        assert 1 <= result.stats.window_queries <= 4 * result.stats.rounds
