"""Tests for the DBLSH index: construction, queries, guarantees, backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBLSH
from repro.data.generators import gaussian_mixture, planted_neighbors


def small_index(data, **kwargs) -> DBLSH:
    defaults = dict(
        c=1.5, l_spaces=4, k_per_space=6, t=16, seed=0, auto_initial_radius=True
    )
    defaults.update(kwargs)
    return DBLSH(**defaults).fit(data)


class TestConstruction:
    def test_invalid_c(self):
        with pytest.raises(ValueError, match="c must be > 1"):
            DBLSH(c=1.0)

    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="backend"):
            DBLSH(backend="btree")

    def test_invalid_patience(self):
        with pytest.raises(ValueError, match="patience"):
            DBLSH(patience=0)

    def test_query_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            DBLSH().query(np.zeros(4))

    def test_fit_returns_self(self, small_clustered):
        index = DBLSH(l_spaces=2, k_per_space=4, seed=0)
        assert index.fit(small_clustered) is index

    def test_default_w0_is_4c2(self, small_clustered):
        index = small_index(small_clustered, c=1.5)
        assert index.params is not None
        assert index.params.w0 == pytest.approx(9.0)

    def test_describe(self, small_clustered):
        index = small_index(small_clustered)
        text = index.describe()
        assert "K=6" in text and "L=4" in text and "rstar" in text
        assert DBLSH().describe() == "DBLSH(unfitted)"

    def test_index_size_accounting(self, small_clustered):
        index = small_index(small_clustered)
        assert index.num_hash_functions == 24
        assert index.index_size_floats() == small_clustered.shape[0] * 24
        assert index.num_points == small_clustered.shape[0]
        assert index.build_seconds > 0.0


class TestQuery:
    def test_self_query_finds_itself(self, small_clustered):
        index = small_index(small_clustered)
        for i in [0, 11, 57]:
            result = index.query(small_clustered[i], k=1)
            assert result.neighbors[0].id == i
            assert result.neighbors[0].distance == pytest.approx(0.0)

    def test_k_results_sorted(self, small_clustered):
        index = small_index(small_clustered)
        result = index.query(small_clustered[0], k=8)
        dists = result.distances
        assert dists == sorted(dists)
        assert len(set(result.ids)) == len(result.ids)

    def test_invalid_k(self, small_clustered):
        index = small_index(small_clustered)
        with pytest.raises(ValueError, match="k must be >= 1"):
            index.query(small_clustered[0], k=0)

    def test_wrong_query_dim(self, small_clustered):
        index = small_index(small_clustered)
        with pytest.raises(ValueError, match="dimension"):
            index.query(np.zeros(3))

    def test_determinism(self, small_clustered):
        a = small_index(small_clustered).query(small_clustered[3], k=5)
        b = small_index(small_clustered).query(small_clustered[3], k=5)
        assert a.ids == b.ids

    def test_stats_populated(self, small_clustered):
        index = small_index(small_clustered)
        result = index.query(small_clustered[0], k=5)
        stats = result.stats
        assert stats.candidates_verified > 0
        assert stats.hash_evaluations == index.num_hash_functions
        assert stats.rounds >= 1
        assert stats.terminated_by in {"budget", "radius", "patience", "exhausted"}
        assert stats.elapsed_seconds > 0.0

    def test_budget_respected(self, small_clustered):
        index = small_index(small_clustered, t=2)
        assert index.params is not None
        k = 3
        result = index.query(small_clustered[0] + 100.0, k=k)
        assert result.stats.candidates_verified <= index.params.budget(k)

    def test_each_candidate_verified_once(self, small_clustered):
        # The seen-set: candidates never exceed the dataset size even when
        # windows at several radii all contain everything.
        index = small_index(small_clustered, t=10_000)
        result = index.query(small_clustered[0], k=5)
        assert result.stats.candidates_verified <= small_clustered.shape[0]

    def test_query_far_from_data_terminates(self, small_clustered):
        index = small_index(small_clustered)
        far = small_clustered[0] + 1e6
        result = index.query(far, k=3)
        assert len(result) >= 1  # eventually the window covers everything

    def test_tiny_dataset(self):
        data = np.array([[0.0, 0.0], [10.0, 10.0]])
        index = DBLSH(l_spaces=2, k_per_space=2, seed=0).fit(data)
        result = index.query(np.array([0.5, 0.5]), k=2)
        assert sorted(result.ids) == [0, 1]


class TestRcNNGuarantee:
    def test_planted_neighbor_is_found(self):
        """(r, c)-NN with r >= planted distance must return a point within
        c * r (Definition 2 case 1) with constant probability; with our
        L and budget the failure probability is tiny."""
        data, queries = planted_neighbors(
            400, 32, n_queries=8, planted_distance=1.0, background_distance=25.0, seed=3
        )
        index = DBLSH(
            c=2.0, l_spaces=6, k_per_space=4, t=16, seed=1, initial_radius=1.0
        ).fit(data)
        hits = 0
        for qi, q in enumerate(queries):
            result = index.range_query(q, radius=1.2)
            if result.neighbors and result.neighbors[0].distance <= 2.0 * 1.2:
                hits += 1
        assert hits >= 6  # succeeds with overwhelming probability

    def test_range_query_empty_when_nothing_near(self):
        data, queries = planted_neighbors(
            300, 16, n_queries=4, planted_distance=5.0, background_distance=50.0, seed=0
        )
        index = DBLSH(c=1.5, l_spaces=4, k_per_space=6, seed=0).fit(data)
        # radius far below the planted distance: nothing within c * r.
        result = index.range_query(queries[0], radius=0.01)
        assert result.is_empty()

    def test_range_query_validation(self, small_clustered):
        index = small_index(small_clustered)
        with pytest.raises(ValueError, match="radius"):
            index.range_query(small_clustered[0], radius=0.0)
        with pytest.raises(ValueError, match="k must be >= 1"):
            index.range_query(small_clustered[0], radius=1.0, k=0)


class TestCANNGuarantee:
    def test_c2_approximation_holds(self):
        """Theorem 1: the returned point is a c^2-ANN with probability
        >= 1/2 - 1/e; across queries the empirical rate must clear it."""
        data = gaussian_mixture(800, 24, n_clusters=10, seed=5)
        index = DBLSH(
            c=1.5, l_spaces=6, k_per_space=6, t=16, seed=2, auto_initial_radius=True
        ).fit(data)
        rng = np.random.default_rng(7)
        queries = data[rng.choice(800, 20, replace=False)] + 0.1 * rng.standard_normal(
            (20, 24)
        )
        successes = 0
        for q in queries:
            result = index.query(q, k=1)
            true_nn = np.linalg.norm(data - q, axis=1).min()
            if result.neighbors[0].distance <= (1.5**2) * true_nn + 1e-9:
                successes += 1
        assert successes / len(queries) >= 0.5 - 1 / np.e


class TestBackends:
    @pytest.mark.parametrize("backend", ["rstar", "rstar-insert", "kdtree", "grid"])
    def test_backends_work(self, backend):
        data = gaussian_mixture(250, 16, n_clusters=5, seed=1)
        index = DBLSH(
            c=1.5, l_spaces=3, k_per_space=4, seed=0, backend=backend,
            auto_initial_radius=True,
        ).fit(data)
        result = index.query(data[0], k=3)
        assert result.neighbors[0].id == 0

    def test_backends_equivalent_candidates(self):
        """All backends answer the same window queries, so with identical
        projections the returned neighbors must coincide."""
        data = gaussian_mixture(300, 16, n_clusters=6, seed=2)
        results = {}
        for backend in ["rstar", "kdtree"]:
            index = DBLSH(
                c=1.5, l_spaces=3, k_per_space=4, seed=9, backend=backend,
                auto_initial_radius=True, t=1000,
            ).fit(data)
            results[backend] = index.query(data[5], k=5).ids
        assert results["rstar"] == results["kdtree"]


class TestAdd:
    def test_add_then_query(self):
        data = gaussian_mixture(200, 8, n_clusters=4, seed=0)
        index = DBLSH(l_spaces=3, k_per_space=4, seed=0, auto_initial_radius=True).fit(
            data
        )
        # An isolated point: its projection sits at the window centre of a
        # self-query, so it is found in round 1 at distance 0 — no earlier
        # candidate can satisfy Algorithm 1's distance condition first.
        new_point = data.mean(axis=0) + 500.0
        index.add(new_point[None, :])
        assert index.num_points == 201
        result = index.query(new_point, k=1)
        assert result.neighbors[0].id == 200
        assert result.neighbors[0].distance == pytest.approx(0.0)

    def test_add_requires_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            DBLSH().add(np.zeros((1, 4)))

    def test_add_requires_rstar(self):
        data = gaussian_mixture(100, 8, seed=0)
        index = DBLSH(l_spaces=2, k_per_space=3, backend="kdtree", seed=0).fit(data)
        with pytest.raises(NotImplementedError):
            index.add(np.zeros((1, 8)))

    def test_add_dim_mismatch(self):
        data = gaussian_mixture(100, 8, seed=0)
        index = DBLSH(l_spaces=2, k_per_space=3, seed=0).fit(data)
        with pytest.raises(ValueError, match="dimension"):
            index.add(np.zeros((1, 9)))


class TestEarlyTermination:
    def test_patience_reduces_work(self):
        data = gaussian_mixture(1000, 16, n_clusters=8, seed=4)
        q = data[0] + 0.05
        patient = DBLSH(
            l_spaces=4, k_per_space=5, seed=0, auto_initial_radius=True, t=500
        ).fit(data)
        impatient = DBLSH(
            l_spaces=4, k_per_space=5, seed=0, auto_initial_radius=True, t=500,
            patience=20,
        ).fit(data)
        full = patient.query(q, k=5)
        quick = impatient.query(q, k=5)
        assert quick.stats.candidates_verified <= full.stats.candidates_verified
        # The nearest point is found immediately either way.
        assert quick.neighbors[0].id == full.neighbors[0].id
