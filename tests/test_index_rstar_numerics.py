"""Regression tests: R*-tree insertion at theory-derived (huge) K.

With theory-faithful parameters (``k_per_space=None``) small datasets can
derive K in the thousands (n=2500, t=16 gives K≈1869), and K-dimensional
MBR *area products* overflow float64 long before that — the ROADMAP open
item observed inf/NaN keys turning the split/reinsert heuristics
pathological (~14 s per insert).  The fix compares areas in the log
domain once the linear products overflow and caps the split axis sweep,
so inserts stay finite-keyed and O(K).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import DBLSH
from repro.core.params import derive_parameters
from repro.data.generators import gaussian_mixture
from repro.index.rstar import RStarTree, _finite_max, _log_areas


class TestLogDomainHelpers:
    def test_log_areas_matches_linear_products(self):
        rng = np.random.default_rng(0)
        extents = rng.uniform(0.1, 3.0, size=(5, 7))
        np.testing.assert_allclose(
            np.exp(_log_areas(extents)), np.prod(extents, axis=1), rtol=1e-12
        )

    def test_log_areas_zero_extent_is_minus_inf(self):
        extents = np.array([[1.0, 0.0, 2.0], [1.0, 1.0, 1.0]])
        logs = _log_areas(extents)
        assert logs[0] == -np.inf
        assert logs[1] == pytest.approx(0.0)

    def test_finite_max(self):
        assert _finite_max(np.array([-np.inf, 1.5, 0.5])) == 1.5
        assert _finite_max(np.array([-np.inf, -np.inf])) == 0.0


class TestLargeKInsert:
    """The n=2500, t=16 regression regime from the ROADMAP open item."""

    def test_theory_derived_k_is_in_overflow_regime(self):
        params = derive_parameters(2500, t=16)
        # Area products over this many dimensions overflow float64 for any
        # extent scale bounded away from 1; this pins the regime the
        # remaining tests exercise.
        assert params.k_per_space > 700

    def test_inserts_stay_finite_and_structurally_valid(self):
        params = derive_parameters(2500, t=16)
        k = params.k_per_space
        rng = np.random.default_rng(0)
        points = rng.standard_normal((150, k))
        tree = RStarTree(k, max_entries=8)
        with warnings.catch_warnings():
            # Any overflow/invalid-value warning inside the insert
            # heuristics is the regression this test guards against.
            warnings.simplefilter("error", RuntimeWarning)
            for point_id, point in enumerate(points):
                tree.insert(point_id, point)
        assert tree.stats.splits > 0  # the heuristics actually ran
        tree.check_invariants()
        assert np.sort(tree.all_ids()).tolist() == list(range(150))
        window = tree.window_query(np.full(k, -50.0), np.full(k, 50.0))
        assert np.sort(window).tolist() == list(range(150))

    def test_dblsh_insert_backend_with_theory_parameters(self):
        data = gaussian_mixture(150, 12, n_clusters=3, seed=0)
        index = DBLSH(
            backend="rstar-insert", k_per_space=None, l_spaces=2, t=16,
            max_entries=8, seed=0, auto_initial_radius=True,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            index.fit(data)
        assert index.params is not None and index.params.k_per_space > 50
        result = index.query(data[0], k=5)
        assert result.neighbors[0].id == 0
        assert all(np.isfinite(n.distance) for n in result.neighbors)
