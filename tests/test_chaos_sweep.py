"""Tier-1 + slow coverage for tools/chaos_sweep.py.

The chaos sweep is CI-critical code (its report feeds the bench gates),
so it is tested like any other module.  Tier-1 runs the smoke sweep —
one deterministic iteration per scenario, seconds — and pins that its
report satisfies its own gate checker.  The slow tier runs the seeded
200-iteration sweep the issue asks for: every admitted request
terminates with an answer or a typed error and the server returns to
ready, across every fault combination the RNG deals.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import chaos_sweep  # noqa: E402
import check_bench_gates as gates  # noqa: E402


def _assert_invariants(report: dict) -> None:
    inv = report["invariants"]
    assert inv["all_requests_terminated"], inv["undetermined_requests"]
    assert inv["answers_bit_identical"], inv["mismatches"]
    assert inv["server_ready_after_each_iteration"], inv["not_ready"]
    assert inv["deadline_overruns"] == []
    assert inv["acked_mutations_survived"], inv["wal_failures"]
    assert inv["zero_orphans"], inv["orphan_pids"]


def test_smoke_sweep_holds_every_invariant(capsys):
    report = chaos_sweep.run_sweep(iterations=0, seed=0, mp_context="fork",
                                   smoke=True)
    _assert_invariants(report)
    # Smoke mode covers every scenario exactly once.
    assert all(runs == 1 for runs in report["scenarios"].values()), (
        report["scenarios"]
    )
    # The fault hooks actually fired: hangs were killed, deaths were
    # restarted, and the WAL victim died once at every armed fault
    # point (smoke covers the whole matrix, group/segment kills
    # included).
    assert report["counters"]["watchdog_kills"] >= 2  # hang-retry + hang-fail
    assert report["counters"]["supervision_restarts"] >= 1
    assert (report["counters"]["wal_kills"]
            == len(chaos_sweep.WAL_KILL_POINTS))
    # The report is exactly what the CI gate checker expects.
    assert gates.check_chaos(report) == []


def test_gate_checker_rejects_a_quiet_watchdog():
    """A sweep whose hang scenarios never ran must not pass the gate."""
    report = chaos_sweep.run_sweep(iterations=0, seed=0, mp_context="fork",
                                   smoke=True)
    report["counters"]["watchdog_kills"] = 0
    assert any("watchdog" in v for v in gates.check_chaos(report))


@pytest.mark.slow
def test_seeded_200_iteration_sweep():
    report = chaos_sweep.run_sweep(iterations=200, seed=0, mp_context="fork",
                                   smoke=False)
    _assert_invariants(report)
    assert sum(report["scenarios"].values()) == 200
    # 200 seeded draws over 8 scenarios: every scenario ran.
    assert all(runs > 0 for runs in report["scenarios"].values()), (
        report["scenarios"]
    )
    assert gates.check_chaos(report) == []
