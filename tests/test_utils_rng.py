"""Tests for repro.utils.rng: determinism and stream independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import default_rng, derive_seed, spawn_rngs


class TestDefaultRng:
    def test_same_seed_same_stream(self):
        a = default_rng(7).standard_normal(16)
        b = default_rng(7).standard_normal(16)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = default_rng(7).standard_normal(16)
        b = default_rng(8).standard_normal(16)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert default_rng(gen) is gen

    def test_none_seed_gives_generator(self):
        gen = default_rng(None)
        assert isinstance(gen, np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        a = default_rng(seq).standard_normal(4)
        b = default_rng(np.random.SeedSequence(5)).standard_normal(4)
        np.testing.assert_array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 3)
        draws = [c.standard_normal(8) for c in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_deterministic_across_calls(self):
        a = [c.standard_normal(4) for c in spawn_rngs(42, 2)]
        b = [c.standard_normal(4) for c in spawn_rngs(42, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(9)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2


class TestDeriveSeed:
    def test_none_propagates(self):
        assert derive_seed(None, 1) is None

    def test_salt_changes_stream(self):
        a = default_rng(derive_seed(1, 0)).standard_normal(4)
        b = default_rng(derive_seed(1, 1)).standard_normal(4)
        assert not np.allclose(a, b)

    def test_same_salt_same_stream(self):
        a = default_rng(derive_seed(1, 2, 3)).standard_normal(4)
        b = default_rng(derive_seed(1, 2, 3)).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_rejected(self):
        with pytest.raises(TypeError):
            derive_seed(np.random.default_rng(0), 1)
