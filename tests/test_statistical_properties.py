"""Statistical properties the method designs rest on.

These tests check the *distributional* facts used by PM-LSH, SRS and the
DB-LSH analysis — projection concentration, chi-square scaling, unbiased
distance estimation — with sampling-tolerant assertions.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.hashing.families import GaussianProjectionFamily
from repro.hashing.probability import collision_probability_dynamic


class TestProjectionDistribution:
    def test_projected_difference_is_gaussian_with_tau_scale(self):
        """For points at distance tau, h(o1) - h(o2) ~ N(0, tau^2)."""
        rng = np.random.default_rng(0)
        dim, m = 48, 4000
        family = GaussianProjectionFamily(dim, m, seed=1)
        o1 = rng.standard_normal(dim)
        direction = rng.standard_normal(dim)
        direction /= np.linalg.norm(direction)
        tau = 3.0
        o2 = o1 + tau * direction
        deltas = family.project_one(o1) - family.project_one(o2)
        assert np.std(deltas) == pytest.approx(tau, rel=0.05)
        assert np.mean(deltas) == pytest.approx(0.0, abs=0.15)
        # Normality (rough): Kolmogorov-Smirnov against N(0, tau).
        _, p_value = scipy_stats.kstest(deltas / tau, "norm")
        assert p_value > 0.01

    def test_projected_sq_distance_is_chi2(self):
        """||G(o1) - G(o2)||^2 / tau^2 ~ chi2_m — the PM-LSH/SRS estimator."""
        rng = np.random.default_rng(3)
        dim, m, trials = 32, 12, 800
        tau = 2.0
        samples = []
        for t in range(trials):
            family = GaussianProjectionFamily(dim, m, seed=1000 + t)
            o1 = rng.standard_normal(dim)
            direction = rng.standard_normal(dim)
            direction /= np.linalg.norm(direction)
            o2 = o1 + tau * direction
            delta = family.project_one(o1) - family.project_one(o2)
            samples.append(float(delta @ delta) / tau**2)
        samples_arr = np.asarray(samples)
        # Mean of chi2_m is m; variance is 2m.
        assert samples_arr.mean() == pytest.approx(m, rel=0.1)
        assert samples_arr.var() == pytest.approx(2 * m, rel=0.35)
        _, p_value = scipy_stats.kstest(samples_arr, "chi2", args=(m,))
        assert p_value > 0.01

    def test_projected_distance_orders_like_true_distance(self):
        """Expected projected distance is monotone in true distance — the
        fact that lets MQ methods rank candidates in the projected space."""
        rng = np.random.default_rng(5)
        dim, m = 32, 15
        family = GaussianProjectionFamily(dim, m, seed=9)
        base = rng.standard_normal(dim)
        taus = [0.5, 1.0, 2.0, 4.0, 8.0]
        means = []
        for tau in taus:
            dists = []
            for _ in range(200):
                direction = rng.standard_normal(dim)
                direction /= np.linalg.norm(direction)
                other = base + tau * direction
                delta = family.project_one(base) - family.project_one(other)
                dists.append(float(np.linalg.norm(delta)))
            means.append(np.mean(dists))
        assert all(a < b for a, b in zip(means, means[1:]))


class TestCollisionProbabilityEmpirics:
    @pytest.mark.slow
    def test_window_membership_probability_is_p_to_the_k(self):
        """P(G(o) in W(G(q), w)) = p(tau; w)^K — independence across the
        K functions of a compound hash (used in Lemma 1)."""
        rng = np.random.default_rng(1)
        dim, k_dims, trials = 24, 4, 3000
        tau, w = 1.0, 3.0
        hits = 0
        base = rng.standard_normal(dim)
        direction = rng.standard_normal(dim)
        direction /= np.linalg.norm(direction)
        other = base + tau * direction
        family = GaussianProjectionFamily(dim, k_dims * trials, seed=2)
        h_base = family.project_one(base).reshape(trials, k_dims)
        h_other = family.project_one(other).reshape(trials, k_dims)
        inside = np.all(np.abs(h_base - h_other) <= w / 2.0, axis=1)
        empirical = inside.mean()
        expected = float(collision_probability_dynamic(tau, w)) ** k_dims
        assert empirical == pytest.approx(expected, abs=0.03)
