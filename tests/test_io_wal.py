"""Tests for the write-ahead log (repro.io.wal).

The contract under test is the durability spine of mutable serving:
every acked append is fsync'd and CRC-framed, recovery replays exactly
the durable records, a torn tail is truncated (not fatal) — but only in
the *last* segment — a flipped bit is treated as torn tail, and a log
refuses to replay onto a snapshot generation it was not written against.

On top of the classic single-segment contract this file pins the
segmented layout (rotation at ``segment_bytes``, replay across segment
boundaries, checkpoint rolls deleting folded segments, stale-segment
cleanup, legacy single-file migration) and the group-commit path
(concurrent appends sharing one fsync, acks only after the group's
fsync, the ``mid-group`` and ``between-segment`` kill points).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import struct
import threading
from zlib import crc32

import numpy as np
import pytest

from repro.io import (
    CheckpointRecord,
    DeleteRecord,
    InsertRecord,
    WALError,
    WriteAheadLog,
    wal_present,
)


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "mutations.wal")


def _segments(wal_path):
    """Segment file paths inside the log directory, oldest first."""
    return [
        os.path.join(wal_path, name)
        for name in sorted(os.listdir(wal_path))
        if name.startswith("wal.") and name.endswith(".seg")
    ]


def _last_segment(wal_path):
    return _segments(wal_path)[-1]


class TestRoundtrip:
    def test_records_replay_in_order(self, wal_path, rng):
        points = rng.standard_normal((3, 8))
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0",
                                  next_id=100) as wal:
            wal.append_insert(100, points[0])
            wal.append_delete(7)
            wal.append_insert(101, points[1])
            wal.append_checkpoint("gen1")
            wal.append_insert(102, points[2])

        recovered = WriteAheadLog.open(wal_path)
        assert recovered.snapshot_uid == "gen0"
        assert recovered.next_id == 100
        assert recovered.truncated_bytes == 0
        kinds = [type(r).__name__ for r in recovered.recovered]
        assert kinds == ["InsertRecord", "DeleteRecord", "InsertRecord",
                        "CheckpointRecord", "InsertRecord"]
        inserts = [r for r in recovered.recovered if isinstance(r, InsertRecord)]
        assert [r.id for r in inserts] == [100, 101, 102]
        for record, point in zip(inserts, points):
            assert np.array_equal(record.point, point)
        deletes = [r for r in recovered.recovered if isinstance(r, DeleteRecord)]
        assert deletes == [DeleteRecord(7)]
        checkpoints = [r for r in recovered.recovered
                       if isinstance(r, CheckpointRecord)]
        assert checkpoints == [CheckpointRecord("gen1")]
        recovered.close()

    def test_appends_resume_after_recovery(self, wal_path, rng):
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0") as wal:
            wal.append_insert(0, rng.standard_normal(4))
        with WriteAheadLog.open(wal_path) as wal:
            wal.append_insert(1, rng.standard_normal(4))
        with WriteAheadLog.open(wal_path) as wal:
            assert [r.id for r in wal.recovered] == [0, 1]

    def test_size_grows_monotonically(self, wal_path, rng):
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0") as wal:
            sizes = [wal.append_insert(i, rng.standard_normal(4))
                     for i in range(4)]
        assert sizes == sorted(sizes) and len(set(sizes)) == 4
        assert os.path.getsize(_last_segment(wal_path)) == sizes[-1]

    def test_parent_uid_travels(self, wal_path):
        WriteAheadLog.create(wal_path, snapshot_uid="child",
                             parent_uid="parent").close()
        with WriteAheadLog.open(wal_path) as wal:
            assert wal.parent_uid == "parent"


class TestGroupCommit:
    def test_concurrent_appends_share_fsyncs(self, wal_path):
        """Many mutators inside one window commit with far fewer groups
        than records, and every one of them is durable afterwards."""
        wal = WriteAheadLog.create(wal_path, snapshot_uid="gen0",
                                   group_window=0.005)
        ids = list(range(48))

        def append(i):
            wal.append_insert(i, np.full(4, float(i)))

        threads = [threading.Thread(target=append, args=(i,)) for i in ids]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = wal.stats()
        wal.close()
        assert stats["records_committed"] == len(ids)
        assert stats["groups_committed"] < len(ids)
        with WriteAheadLog.open(wal_path) as back:
            assert sorted(r.id for r in back.recovered) == ids

    def test_ticket_resolves_only_after_group_fsync(self, wal_path):
        wal = WriteAheadLog.create(wal_path, snapshot_uid="gen0",
                                   group_window=0.05)
        ticket = wal.submit_insert(0, np.zeros(4))
        size = ticket.wait(timeout=5.0)
        assert ticket.done() and size == wal.size_bytes
        wal.close()

    def test_group_bytes_flushes_before_the_window(self, wal_path):
        """A byte-full batch must not sit out a long window."""
        wal = WriteAheadLog.create(wal_path, snapshot_uid="gen0",
                                   group_window=30.0, group_bytes=64)
        ticket = wal.submit_insert(0, np.zeros(16))  # > 64 bytes framed
        ticket.wait(timeout=5.0)  # would hang for 30 s without the byte trip
        wal.close()

    def test_close_flushes_pending_groups(self, wal_path):
        wal = WriteAheadLog.create(wal_path, snapshot_uid="gen0",
                                   group_window=30.0)
        tickets = [wal.submit_insert(i, np.zeros(4)) for i in range(3)]
        wal.close()  # must not wait out the 30 s window
        assert all(t.done() for t in tickets)
        with WriteAheadLog.open(wal_path) as back:
            assert [r.id for r in back.recovered] == [0, 1, 2]


class TestSegments:
    def _filled(self, wal_path, rng, n=24, segment_bytes=400):
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0",
                                  segment_bytes=segment_bytes) as wal:
            for i in range(n):
                wal.append_insert(i, rng.standard_normal(6))
            count = wal.segment_count
        return count

    def test_rotation_splits_and_replay_spans_segments(self, wal_path, rng):
        count = self._filled(wal_path, rng)
        assert count > 1
        assert len(_segments(wal_path)) == count
        with WriteAheadLog.open(wal_path) as wal:
            assert [r.id for r in wal.recovered] == list(range(24))
            assert wal.segment_count == count

    def test_appends_resume_in_the_last_segment(self, wal_path, rng):
        self._filled(wal_path, rng)
        with WriteAheadLog.open(wal_path) as wal:
            wal.append_insert(24, rng.standard_normal(6))
        with WriteAheadLog.open(wal_path) as wal:
            assert [r.id for r in wal.recovered] == list(range(25))

    def test_torn_tail_in_last_segment_spares_sealed_segments(
        self, wal_path, rng
    ):
        """A crash tears only the segment being appended: every record
        in the sealed segments before the boundary must survive."""
        self._filled(wal_path, rng)
        last = _last_segment(wal_path)
        with open(last, "r+b") as handle:
            size = os.fstat(handle.fileno()).st_size
            handle.truncate(size - 7)  # mid-record chop
        with WriteAheadLog.open(wal_path) as wal:
            ids = [r.id for r in wal.recovered]
            assert wal.truncated_bytes > 0
            # A contiguous prefix: all sealed-segment records plus the
            # last segment's still-whole records.
            assert ids == list(range(len(ids))) and len(ids) >= 1

    def test_torn_record_inside_a_sealed_segment_is_fatal(self, wal_path, rng):
        """Sealed segments were fsync'd before the next opened: damage
        there lost acked data and must refuse, not silently truncate."""
        self._filled(wal_path, rng)
        sealed = _segments(wal_path)[0]
        with open(sealed, "r+b") as handle:
            size = os.fstat(handle.fileno()).st_size
            handle.truncate(size - 5)
        with pytest.raises(WALError, match="sealed segment"):
            WriteAheadLog.open(wal_path)

    def test_bit_flip_in_last_segment_truncates_from_the_flip(
        self, wal_path, rng
    ):
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0") as wal:
            sizes = [wal.append_insert(i, rng.standard_normal(6))
                     for i in range(4)]
        seg = _last_segment(wal_path)
        with open(seg, "r+b") as handle:
            handle.seek(sizes[1] + 12)
            byte = handle.read(1)
            handle.seek(sizes[1] + 12)
            handle.write(bytes([byte[0] ^ 0x40]))
        with WriteAheadLog.open(wal_path) as wal:
            assert [r.id for r in wal.recovered] == [0, 1]
        assert os.path.getsize(seg) == sizes[1]

    def test_absurd_length_field_is_torn_tail(self, wal_path, rng):
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0") as wal:
            sizes = [wal.append_insert(i, rng.standard_normal(6))
                     for i in range(4)]
        with open(_last_segment(wal_path), "r+b") as handle:
            handle.seek(sizes[2])
            handle.write(struct.pack("<I", 1 << 30))  # bogus frame length
        with WriteAheadLog.open(wal_path) as wal:
            assert [r.id for r in wal.recovered] == [0, 1, 2]

    def test_recovery_is_idempotent(self, wal_path, rng):
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0") as wal:
            sizes = [wal.append_insert(i, rng.standard_normal(6))
                     for i in range(4)]
        with open(_last_segment(wal_path), "r+b") as handle:
            handle.truncate(sizes[-1] - 3)
        WriteAheadLog.open(wal_path).close()
        with WriteAheadLog.open(wal_path) as wal:
            assert wal.truncated_bytes == 0
            assert [r.id for r in wal.recovered] == [0, 1, 2]


class TestCheckpointRoll:
    def test_roll_deletes_folded_segments(self, wal_path, rng):
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0",
                                  segment_bytes=400) as wal:
            for i in range(24):
                wal.append_insert(i, rng.standard_normal(6))
            assert wal.segment_count > 1
            wal.roll_checkpoint(
                "gen1", parent_uid="gen0", next_id=24,
                pending=[InsertRecord(23, np.zeros(6)), DeleteRecord(3)],
            )
            assert wal.segment_count == 1
            assert wal.snapshot_uid == "gen1"
        assert len(_segments(wal_path)) == 1
        with WriteAheadLog.open(wal_path, accept_uids={"gen1"}) as back:
            assert back.recovered[0] == CheckpointRecord("gen1")
            assert [type(r).__name__ for r in back.recovered[1:]] == [
                "InsertRecord", "DeleteRecord"
            ]
            assert back.next_id == 24

    def test_replay_is_idempotent_after_roll(self, wal_path, rng):
        """Opening (and re-opening) after a roll yields exactly the
        checkpoint + pending records — folded history never returns."""
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0") as wal:
            for i in range(8):
                wal.append_insert(i, rng.standard_normal(4))
            wal.roll_checkpoint("gen1", parent_uid="gen0", next_id=8,
                                pending=[InsertRecord(7, np.zeros(4))])
        for _ in range(2):
            with WriteAheadLog.open(wal_path, accept_uids={"gen1"}) as back:
                ids = [r.id for r in back.recovered
                       if isinstance(r, InsertRecord)]
                assert ids == [7]

    def test_stale_pre_checkpoint_segments_are_cleaned_on_open(
        self, wal_path, rng
    ):
        """A crash between the checkpoint fsync and the segment deletes
        leaves folded segments behind; open() must replay from the
        checkpoint segment and delete the stale ones."""
        proc = _spawn(_roll_fault_driver, wal_path)
        acked = _drain_acks(proc)
        assert proc.exitcode == 9
        assert acked == list(range(6))
        # The folded segment survived the crash next to the checkpoint
        # segment: recovery must not replay it.
        assert len(_segments(wal_path)) >= 2
        with WriteAheadLog.open(wal_path, accept_uids={"gen1"}) as back:
            inserts = [r.id for r in back.recovered
                       if isinstance(r, InsertRecord)]
            assert back.recovered[0] == CheckpointRecord("gen1")
            assert inserts == [5]
        assert len(_segments(wal_path)) == 1


class TestLegacyMigration:
    def _write_legacy(self, path, records=((2, 1),)):
        """A pre-segmentation single-file log: magic + header + records."""
        frame = struct.Struct("<II")
        header = json.dumps(
            {"format": "repro-wal", "version": 1, "snapshot_uid": "old",
             "parent_uid": None, "next_id": 3},
            sort_keys=True,
        ).encode()
        with open(path, "wb") as handle:
            handle.write(b"REPROWAL")
            handle.write(frame.pack(len(header), crc32(header)))
            handle.write(header)
            for op, rec_id in records:
                payload = struct.Struct("<BQ").pack(op, rec_id)
                handle.write(frame.pack(len(payload), crc32(payload)))
                handle.write(payload)

    def test_single_file_log_migrates_to_a_directory(self, wal_path):
        self._write_legacy(wal_path)
        assert wal_present(wal_path)
        with WriteAheadLog.open(wal_path, accept_uids={"old"}) as wal:
            assert os.path.isdir(wal_path)
            assert wal.recovered == [DeleteRecord(1)]
            wal.append_insert(3, np.zeros(2))
        with WriteAheadLog.open(wal_path) as wal:
            assert [type(r).__name__ for r in wal.recovered] == [
                "DeleteRecord", "InsertRecord"
            ]

    def test_interrupted_migration_is_finished_on_open(self, wal_path):
        """Crash window: file already linked into the staging directory
        and unlinked, before the final rename."""
        self._write_legacy(wal_path)
        staging = wal_path + ".migrating"
        os.mkdir(staging)
        os.link(wal_path, os.path.join(staging, "wal.000001.seg"))
        os.unlink(wal_path)
        assert wal_present(wal_path)  # mid-migration must not look missing
        with WriteAheadLog.open(wal_path) as wal:
            assert wal.recovered == [DeleteRecord(1)]
        assert os.path.isdir(wal_path) and not os.path.exists(staging)


class TestRejection:
    def test_uid_binding_refused(self, wal_path):
        WriteAheadLog.create(wal_path, snapshot_uid="gen0").close()
        with pytest.raises(WALError, match="refusing to replay"):
            WriteAheadLog.open(wal_path, accept_uids={"other"})
        # Either the bound uid or the parent lineage is acceptable.
        WriteAheadLog.open(wal_path, accept_uids={"gen0", "older"}).close()
        WriteAheadLog.open(wal_path, accept_uids={"new", "gen0"}).close()

    def test_non_wal_file_refused(self, tmp_path):
        junk = str(tmp_path / "junk.wal")
        with open(junk, "wb") as handle:
            handle.write(b"definitely not a log")
        with pytest.raises(WALError, match="not a repro write-ahead log"):
            WriteAheadLog.open(junk)

    def test_corrupt_header_refused(self, wal_path):
        WriteAheadLog.create(wal_path, snapshot_uid="gen0").close()
        with open(_last_segment(wal_path), "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xff")
        with pytest.raises(WALError, match="corrupt WAL header"):
            WriteAheadLog.open(wal_path)

    def test_closed_log_refuses_appends(self, wal_path):
        wal = WriteAheadLog.create(wal_path, snapshot_uid="gen0")
        wal.close()
        with pytest.raises(WALError, match="closed"):
            wal.append_delete(0)


# ----------------------------------------------------------------------
# Kill-point drivers (module-level for spawn picklability)
# ----------------------------------------------------------------------


def _append_under_fault(path, fault, count, conn):
    """Child-process driver: append ``count`` inserts with a fault armed."""
    os.environ["REPRO_WAL_FAULT"] = fault
    acked = []
    wal = WriteAheadLog.create(path, snapshot_uid="gen0")
    for i in range(count):
        wal.append_insert(i, np.full(4, float(i)))
        acked.append(i)
        conn.send(("acked", i))
    conn.send(("done", acked))
    conn.close()


def _mid_group_driver(path, conn):
    """Submit one 4-record group; the armed fault kills the committer
    after half the group is durable — before ANY ticket resolves."""
    os.environ["REPRO_WAL_FAULT"] = "mid-group:0"
    wal = WriteAheadLog.create(path, snapshot_uid="gen0", group_window=0.2)
    tickets = [wal.submit_insert(i, np.full(4, float(i))) for i in range(4)]
    for i, ticket in enumerate(tickets):
        ticket.wait()
        conn.send(("acked", i))
    conn.send(("done", None))
    conn.close()


def _between_segment_driver(path, conn):
    """Append until the first rotation; the armed fault kills right
    after the new segment's header lands, before its first record."""
    os.environ["REPRO_WAL_FAULT"] = "between-segment:0"
    wal = WriteAheadLog.create(path, snapshot_uid="gen0", segment_bytes=300)
    for i in range(12):
        wal.append_insert(i, np.full(4, float(i)))
        conn.send(("acked", i))
    conn.send(("done", None))
    conn.close()


def _roll_fault_driver(path, conn):
    """Roll a checkpoint with the pre-segment-delete kill armed: the
    checkpoint segment is durable, the folded segments never deleted."""
    os.environ["REPRO_WAL_FAULT"] = "pre-segment-delete:0"
    wal = WriteAheadLog.create(path, snapshot_uid="gen0")
    for i in range(6):
        wal.append_insert(i, np.full(4, float(i)))
        conn.send(("acked", i))
    wal.roll_checkpoint("gen1", parent_uid="gen0", next_id=6,
                        pending=[InsertRecord(5, np.full(4, 5.0))])
    conn.send(("done", None))
    conn.close()


def _spawn(target, path):
    ctx = multiprocessing.get_context("spawn")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=target, args=(path, child))
    proc.start()
    child.close()
    proc._test_parent_conn = parent
    return proc


def _drain_acks(proc, timeout=60):
    parent = proc._test_parent_conn
    acked = []
    while True:
        try:
            kind, value = parent.recv()
        except EOFError:
            break
        if kind == "acked":
            acked.append(value)
    proc.join(timeout)
    return acked


class TestFaultInjection:
    """REPRO_WAL_FAULT kills: recovery yields exactly the acked appends."""

    @pytest.mark.parametrize("fault,acked_survive", [
        ("pre-append:2", [0, 1]),   # killed before touching the file
        ("torn:2", [0, 1]),         # killed after half the record hit disk
        ("post-fsync:2", [0, 1]),   # durable but never acked
    ])
    def test_kill_mid_append(self, tmp_path, fault, acked_survive):
        path = str(tmp_path / "fault.wal")
        ctx = multiprocessing.get_context("spawn")
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_append_under_fault,
                           args=(path, fault, 4, child))
        proc.start()
        child.close()
        acked = []
        while True:
            try:
                kind, value = parent.recv()
            except EOFError:
                break
            if kind == "acked":
                acked.append(value)
        proc.join(30)
        assert proc.exitcode == 9  # died at the armed fault point
        assert acked == acked_survive

        with WriteAheadLog.open(path) as wal:
            recovered = [r.id for r in wal.recovered]
        # Every acked append survived; at most the one in-flight,
        # fsync'd-but-unacked record may additionally appear.
        assert recovered[: len(acked)] == acked
        assert len(recovered) <= len(acked) + 1
        if fault.startswith(("pre-append", "torn")):
            assert recovered == acked  # exactly the acked appends

    def test_kill_mid_group_acks_nothing_durable_prefix_tolerated(
        self, tmp_path
    ):
        """A partially-fsynced group: no ticket ever resolved, so no
        client was acked — recovery may surface the durable prefix, and
        every acked (= none) mutation survives."""
        path = str(tmp_path / "group.wal")
        proc = _spawn(_mid_group_driver, path)
        acked = _drain_acks(proc)
        assert proc.exitcode == 9
        assert acked == []  # the fault fires before any ack
        with WriteAheadLog.open(path) as wal:
            recovered = [r.id for r in wal.recovered]
        # Half of the 4-record group (its written prefix) is durable.
        assert recovered == [0, 1]

    def test_kill_between_segments_loses_nothing_acked(self, tmp_path):
        """Death right after a rotation makes the fresh header durable:
        every record acked before the boundary replays; the empty new
        segment is a valid (if bare) tail."""
        path = str(tmp_path / "boundary.wal")
        proc = _spawn(_between_segment_driver, path)
        acked = _drain_acks(proc)
        assert proc.exitcode == 9
        assert len(acked) >= 1
        with WriteAheadLog.open(path) as wal:
            recovered = [r.id for r in wal.recovered]
            assert recovered == acked  # nothing acked was lost
            wal.append_insert(len(acked), np.zeros(4))  # appends resume
