"""Tests for the write-ahead log (repro.io.wal).

The contract under test is the durability spine of mutable serving:
every acked append is fsync'd and CRC-framed, recovery replays exactly
the durable records, a torn tail is truncated (not fatal), a flipped
bit is treated as torn tail, and a log refuses to replay onto a
snapshot generation it was not written against.
"""

from __future__ import annotations

import multiprocessing
import os
import struct

import numpy as np
import pytest

from repro.io import (
    CheckpointRecord,
    DeleteRecord,
    InsertRecord,
    WALError,
    WriteAheadLog,
)


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "mutations.wal")


class TestRoundtrip:
    def test_records_replay_in_order(self, wal_path, rng):
        points = rng.standard_normal((3, 8))
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0",
                                  next_id=100) as wal:
            wal.append_insert(100, points[0])
            wal.append_delete(7)
            wal.append_insert(101, points[1])
            wal.append_checkpoint("gen1")
            wal.append_insert(102, points[2])

        recovered = WriteAheadLog.open(wal_path)
        assert recovered.snapshot_uid == "gen0"
        assert recovered.next_id == 100
        assert recovered.truncated_bytes == 0
        kinds = [type(r).__name__ for r in recovered.recovered]
        assert kinds == ["InsertRecord", "DeleteRecord", "InsertRecord",
                        "CheckpointRecord", "InsertRecord"]
        inserts = [r for r in recovered.recovered if isinstance(r, InsertRecord)]
        assert [r.id for r in inserts] == [100, 101, 102]
        for record, point in zip(inserts, points):
            assert np.array_equal(record.point, point)
        deletes = [r for r in recovered.recovered if isinstance(r, DeleteRecord)]
        assert deletes == [DeleteRecord(7)]
        checkpoints = [r for r in recovered.recovered
                       if isinstance(r, CheckpointRecord)]
        assert checkpoints == [CheckpointRecord("gen1")]
        recovered.close()

    def test_appends_resume_after_recovery(self, wal_path, rng):
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0") as wal:
            wal.append_insert(0, rng.standard_normal(4))
        with WriteAheadLog.open(wal_path) as wal:
            wal.append_insert(1, rng.standard_normal(4))
        with WriteAheadLog.open(wal_path) as wal:
            assert [r.id for r in wal.recovered] == [0, 1]

    def test_size_grows_monotonically(self, wal_path, rng):
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0") as wal:
            sizes = [wal.append_insert(i, rng.standard_normal(4))
                     for i in range(4)]
        assert sizes == sorted(sizes) and len(set(sizes)) == 4
        assert os.path.getsize(wal_path) == sizes[-1]

    def test_parent_uid_travels(self, wal_path):
        WriteAheadLog.create(wal_path, snapshot_uid="child",
                             parent_uid="parent").close()
        with WriteAheadLog.open(wal_path) as wal:
            assert wal.parent_uid == "parent"


class TestTornTail:
    def _sizes(self, wal_path, rng, n=4):
        with WriteAheadLog.create(wal_path, snapshot_uid="gen0") as wal:
            return [wal.append_insert(i, rng.standard_normal(6))
                    for i in range(n)]

    def test_half_written_tail_record_is_truncated(self, wal_path, rng):
        sizes = self._sizes(wal_path, rng)
        # Chop the file mid-way through the last record: exactly the
        # state a kill between write() and fsync() leaves behind.
        torn = (sizes[-2] + sizes[-1]) // 2
        with open(wal_path, "r+b") as handle:
            handle.truncate(torn)
        with WriteAheadLog.open(wal_path) as wal:
            assert [r.id for r in wal.recovered] == [0, 1, 2]
            assert wal.truncated_bytes == torn - sizes[-2]
        assert os.path.getsize(wal_path) == sizes[-2]

    def test_bit_flip_truncates_from_the_flip(self, wal_path, rng):
        sizes = self._sizes(wal_path, rng)
        # Flip one payload bit inside record 2: its CRC fails, so it and
        # everything after it are discarded as torn tail.
        with open(wal_path, "r+b") as handle:
            handle.seek(sizes[1] + 12)
            byte = handle.read(1)
            handle.seek(sizes[1] + 12)
            handle.write(bytes([byte[0] ^ 0x40]))
        with WriteAheadLog.open(wal_path) as wal:
            assert [r.id for r in wal.recovered] == [0, 1]
        assert os.path.getsize(wal_path) == sizes[1]

    def test_absurd_length_field_is_torn_tail(self, wal_path, rng):
        sizes = self._sizes(wal_path, rng)
        with open(wal_path, "r+b") as handle:
            handle.seek(sizes[2])
            handle.write(struct.pack("<I", 1 << 30))  # bogus frame length
        with WriteAheadLog.open(wal_path) as wal:
            assert [r.id for r in wal.recovered] == [0, 1, 2]

    def test_recovery_is_idempotent(self, wal_path, rng):
        sizes = self._sizes(wal_path, rng)
        with open(wal_path, "r+b") as handle:
            handle.truncate(sizes[-1] - 3)
        WriteAheadLog.open(wal_path).close()
        with WriteAheadLog.open(wal_path) as wal:
            assert wal.truncated_bytes == 0
            assert [r.id for r in wal.recovered] == [0, 1, 2]


class TestRejection:
    def test_uid_binding_refused(self, wal_path):
        WriteAheadLog.create(wal_path, snapshot_uid="gen0").close()
        with pytest.raises(WALError, match="refusing to replay"):
            WriteAheadLog.open(wal_path, accept_uids={"other"})
        # Either the bound uid or the parent lineage is acceptable.
        WriteAheadLog.open(wal_path, accept_uids={"gen0", "older"}).close()
        WriteAheadLog.open(wal_path, accept_uids={"new", "gen0"}).close()

    def test_non_wal_file_refused(self, tmp_path):
        junk = str(tmp_path / "junk.wal")
        with open(junk, "wb") as handle:
            handle.write(b"definitely not a log")
        with pytest.raises(WALError, match="not a repro write-ahead log"):
            WriteAheadLog.open(junk)

    def test_corrupt_header_refused(self, wal_path):
        WriteAheadLog.create(wal_path, snapshot_uid="gen0").close()
        with open(wal_path, "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xff")
        with pytest.raises(WALError, match="corrupt WAL header"):
            WriteAheadLog.open(wal_path)

    def test_closed_log_refuses_appends(self, wal_path):
        wal = WriteAheadLog.create(wal_path, snapshot_uid="gen0")
        wal.close()
        with pytest.raises(WALError, match="closed"):
            wal.append_delete(0)


def _append_under_fault(path, fault, count, conn):
    """Child-process driver: append ``count`` inserts with a fault armed."""
    os.environ["REPRO_WAL_FAULT"] = fault
    acked = []
    wal = WriteAheadLog.create(path, snapshot_uid="gen0")
    for i in range(count):
        wal.append_insert(i, np.full(4, float(i)))
        acked.append(i)
        conn.send(("acked", i))
    conn.send(("done", acked))
    conn.close()


class TestFaultInjection:
    """REPRO_WAL_FAULT kills: recovery yields exactly the acked appends."""

    @pytest.mark.parametrize("fault,acked_survive", [
        ("pre-append:2", [0, 1]),   # killed before touching the file
        ("torn:2", [0, 1]),         # killed after half the record hit disk
        ("post-fsync:2", [0, 1]),   # durable but never acked
    ])
    def test_kill_mid_append(self, tmp_path, fault, acked_survive):
        path = str(tmp_path / "fault.wal")
        ctx = multiprocessing.get_context("spawn")
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_append_under_fault,
                           args=(path, fault, 4, child))
        proc.start()
        child.close()
        acked = []
        while True:
            try:
                kind, value = parent.recv()
            except EOFError:
                break
            if kind == "acked":
                acked.append(value)
        proc.join(30)
        assert proc.exitcode == 9  # died at the armed fault point
        assert acked == acked_survive

        with WriteAheadLog.open(path) as wal:
            recovered = [r.id for r in wal.recovered]
        # Every acked append survived; at most the one in-flight,
        # fsync'd-but-unacked record may additionally appear.
        assert recovered[: len(acked)] == acked
        assert len(recovered) <= len(acked) + 1
        if fault.startswith(("pre-append", "torn")):
            assert recovered == acked  # exactly the acked appends
