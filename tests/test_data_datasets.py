"""Tests for the dataset registry and its Table III correspondence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import DATASET_REGISTRY, make_dataset, registry_table

#: The paper's Table III, used to pin the registry's real-counterpart data.
PAPER_TABLE_III = {
    "audio": (54_387, 192),
    "mnist": (60_000, 784),
    "cifar": (60_000, 1024),
    "trevi": (101_120, 4096),
    "nus": (269_648, 500),
    "deep1m": (1_000_000, 256),
    "gist": (1_000_000, 960),
    "sift10m": (10_000_000, 128),
    "tiny80m": (79_302_017, 384),
    "sift100m": (100_000_000, 128),
}


class TestRegistry:
    def test_all_ten_paper_datasets_present(self):
        assert set(DATASET_REGISTRY) == set(PAPER_TABLE_III)

    @pytest.mark.parametrize("name", sorted(PAPER_TABLE_III))
    def test_paper_counts_recorded(self, name):
        spec = DATASET_REGISTRY[name]
        paper_n, paper_d = PAPER_TABLE_III[name]
        assert spec.paper_cardinality == paper_n
        assert spec.paper_dim == paper_d
        # The stand-in keeps the exact ambient dimensionality.
        assert spec.dim == paper_d

    def test_stand_in_sizes_are_laptop_scale(self):
        for spec in DATASET_REGISTRY.values():
            assert 1_000 <= spec.cardinality <= 50_000

    def test_registry_table_renders(self):
        table = registry_table()
        assert "audio" in table and "sift100m" in table
        assert "Paper n" in table

    def test_describe(self):
        text = DATASET_REGISTRY["gist"].describe()
        assert "gist" in text and "960" in text


class TestMakeDataset:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            make_dataset("imagenet")

    def test_shapes_and_query_removal(self):
        ds = make_dataset("audio", n_queries=50, seed=0)
        assert ds.queries.shape == (50, 192)
        assert ds.data.shape[0] == DATASET_REGISTRY["audio"].cardinality
        assert ds.dim == 192
        assert ds.name == "audio"

    def test_determinism(self):
        a = make_dataset("audio", n_queries=10, seed=0)
        b = make_dataset("audio", n_queries=10, seed=0)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.queries, b.queries)

    def test_scale_factor(self):
        full = make_dataset("audio", n_queries=10, seed=0)
        half = make_dataset("audio", n_queries=10, seed=0, scale=0.5)
        assert half.n == pytest.approx(full.n * 0.5, rel=0.01)

    def test_queries_not_in_data(self):
        ds = make_dataset("audio", n_queries=20, seed=0)
        # Exact row matches between queries and data must not exist.
        for q in ds.queries[:5]:
            assert not np.any(np.all(ds.data == q, axis=1))

    def test_validation(self):
        with pytest.raises(ValueError, match="n_queries"):
            make_dataset("audio", n_queries=0)
        with pytest.raises(ValueError, match="scale"):
            make_dataset("audio", scale=0.0)
