"""Cross-module integration tests: registry -> index -> metrics pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBLSH
from repro.baselines import FBLSH, LinearScan, PMLSH
from repro.data.datasets import make_dataset
from repro.data.groundtruth import exact_knn
from repro.eval.metrics import overall_ratio, recall
from repro.eval.runner import run_comparison

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def audio_like():
    # A thinned-down registry dataset keeps the integration suite quick.
    return make_dataset("audio", n_queries=10, seed=0, scale=0.25)


class TestRegistryToQueryPipeline:
    def test_end_to_end_quality(self, audio_like):
        ds = audio_like
        index = DBLSH(
            c=1.5, l_spaces=5, k_per_space=8, t=16, seed=0, auto_initial_radius=True
        ).fit(ds.data)
        gt_ids, gt_dists = exact_knn(ds.queries, ds.data, 10)
        recalls, ratios = [], []
        for qi, q in enumerate(ds.queries):
            result = index.query(q, k=10)
            recalls.append(recall(result.ids, gt_ids[qi]))
            ratios.append(overall_ratio(result.distances, gt_dists[qi]))
        assert float(np.mean(recalls)) >= 0.7
        assert float(np.mean(ratios)) <= 1.1

    def test_work_is_sublinear(self, audio_like):
        ds = audio_like
        index = DBLSH(
            c=1.5, l_spaces=5, k_per_space=8, t=16, seed=0, auto_initial_radius=True
        ).fit(ds.data)
        result = index.query(ds.queries[0], k=10)
        # The candidate budget, not n, bounds the verification work.
        assert result.stats.candidates_verified < ds.n / 2

    def test_comparison_harness_end_to_end(self, audio_like):
        ds = audio_like
        methods = [
            LinearScan(),
            DBLSH(c=1.5, l_spaces=4, k_per_space=8, seed=0, auto_initial_radius=True),
            FBLSH(c=1.5, k_per_space=8, l_spaces=4, seed=0, auto_initial_radius=True),
            PMLSH(m=12, beta=0.1, seed=0),
        ]
        results = run_comparison(
            methods, ds.data, ds.queries[:5], k=10, dataset_name=ds.name
        )
        by_name = {r.method: r for r in results}
        assert by_name["LinearScan"].recall == pytest.approx(1.0)
        # Every LSH method does less distance work than the scan.
        for name in ["DBLSH", "FB-LSH", "PM-LSH"]:
            assert (
                by_name[name].distance_computations_per_query
                < by_name["LinearScan"].distance_computations_per_query
            )


class TestScalingBehaviour:
    def test_candidates_scale_sublinearly(self):
        """Doubling n must not double DB-LSH's verified candidates (the
        budget is n-independent; only tree traversal grows ~log n)."""
        from repro.data.generators import gaussian_mixture

        counts = []
        for n in [1000, 4000]:
            data = gaussian_mixture(n, 32, n_clusters=16, seed=1)
            index = DBLSH(
                c=1.5, l_spaces=4, k_per_space=8, t=16, seed=0,
                auto_initial_radius=True,
            ).fit(data)
            rng = np.random.default_rng(2)
            qs = data[rng.choice(n, 5, replace=False)] + 0.05
            total = sum(index.query(q, k=10).stats.candidates_verified for q in qs)
            counts.append(total / 5)
        assert counts[1] < counts[0] * 2.5

    def test_recall_stable_across_scale(self):
        from repro.data.generators import gaussian_mixture

        recalls = []
        for n in [1000, 3000]:
            data = gaussian_mixture(n, 32, n_clusters=16, seed=1)
            index = DBLSH(
                c=1.5, l_spaces=4, k_per_space=8, t=16, seed=0,
                auto_initial_radius=True,
            ).fit(data)
            rng = np.random.default_rng(2)
            qs = data[rng.choice(n, 8, replace=False)] + 0.05
            gt_ids, _ = exact_knn(qs, data, 10)
            recalls.append(
                float(
                    np.mean(
                        [
                            recall(index.query(q, k=10).ids, gt_ids[i])
                            for i, q in enumerate(qs)
                        ]
                    )
                )
            )
        # Fig. 6's observation: accuracy depends on the distribution, not n.
        assert abs(recalls[0] - recalls[1]) < 0.25


class TestHighDimensional:
    def test_trevi_like_dimensionality(self):
        """4096-dimensional points exercise the full projection path."""
        ds = make_dataset("trevi", n_queries=3, seed=0, scale=0.1)
        index = DBLSH(
            c=1.5, l_spaces=3, k_per_space=8, seed=0, auto_initial_radius=True
        ).fit(ds.data)
        result = index.query(ds.queries[0], k=5)
        assert len(result) == 5
        gt_ids, _ = exact_knn(ds.queries[:1], ds.data, 5)
        assert recall(result.ids, gt_ids[0]) >= 0.4
