"""Tests for the versioned index snapshots (repro.io)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import DBLSH, ShardedDBLSH
from repro.data.generators import gaussian_mixture
from repro.io import (
    SNAPSHOT_VERSION,
    SnapshotError,
    load_index,
    read_header,
    save_index,
)


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(600, 16, n_clusters=6, seed=0)
    queries = data[:8] + 0.05
    return data, queries


@pytest.fixture(scope="module")
def fitted(workload):
    data, _ = workload
    return DBLSH(
        c=1.5, l_spaces=4, k_per_space=8, t=32, seed=0, auto_initial_radius=True
    ).fit(data)


class TestRoundtrip:
    def test_identical_query_results(self, workload, fitted, tmp_path):
        _, queries = workload
        path = str(tmp_path / "index.npz")
        save_index(fitted, path)
        restored = load_index(path)
        assert isinstance(restored, DBLSH)
        assert restored.describe() == fitted.describe()
        for q in queries:
            before = fitted.query(q, k=7)
            after = restored.query(q, k=7)
            assert after.ids == before.ids
            assert after.distances == pytest.approx(before.distances)

    def test_zero_rebuild_on_rstar_backend(self, workload, fitted, tmp_path):
        """Loading adopts the frozen arrays; no pointer tree is built."""
        _, queries = workload
        path = str(tmp_path / "index.npz")
        save_index(fitted, path)
        restored = load_index(path)
        assert all(flat is not None for flat in restored._flat_tables)
        assert all(table is None for table in restored._tables)
        restored.query(queries[0], k=3)  # queries run off the flat arrays
        assert all(table is None for table in restored._tables)

    def test_batch_queries_after_load(self, workload, fitted, tmp_path):
        _, queries = workload
        path = str(tmp_path / "index.npz")
        save_index(fitted, path)
        restored = load_index(path)
        batch = restored.query_batch(queries, k=5)
        assert [r.ids for r in batch] == [fitted.query(q, k=5).ids for q in queries]

    def test_non_flat_backend_roundtrip(self, workload, tmp_path):
        data, queries = workload
        index = DBLSH(
            backend="kdtree", l_spaces=3, k_per_space=6, t=32, seed=1,
            auto_initial_radius=True,
        ).fit(data)
        path = str(tmp_path / "kdtree.npz")
        save_index(index, path)
        restored = load_index(path)
        assert not read_header(path)["index"]["has_flat"]
        for q in queries[:3]:
            assert restored.query(q, k=5).ids == index.query(q, k=5).ids

    def test_header_is_inspectable(self, fitted, tmp_path):
        path = str(tmp_path / "index.npz")
        save_index(fitted, path, format="npz")
        header = read_header(path)
        assert header["version"] == SNAPSHOT_VERSION
        assert header["kind"] == "dblsh"
        assert header["index"]["n"] == fitted.num_points
        assert header["index"]["k_per_space"] == fitted.params.k_per_space


class TestArrayNativeRoundtrip:
    """Snapshots of array-built indexes (fit never made a pointer tree)."""

    def test_save_does_not_materialize_pointer_trees(self, workload, tmp_path):
        data, queries = workload
        index = DBLSH(
            l_spaces=4, k_per_space=8, t=32, seed=0, auto_initial_radius=True
        ).fit(data)
        assert all(table is None for table in index._tables)
        path = str(tmp_path / "array.npz")
        save_index(index, path)
        # Saving an already-frozen index must not rebuild pointer trees.
        assert all(table is None for table in index._tables)
        restored = load_index(path)
        assert restored.builder == "array"
        batch = restored.query_batch(queries, k=5)
        assert [r.ids for r in batch] == [
            r.ids for r in index.query_batch(queries, k=5)
        ]

    def test_flat_arrays_survive_roundtrip_byte_identical(self, workload, tmp_path):
        data, _ = workload
        index = DBLSH(
            l_spaces=3, k_per_space=6, t=32, seed=2, auto_initial_radius=True
        ).fit(data)
        path = str(tmp_path / "bytes.npz")
        save_index(index, path)
        restored = load_index(path)
        for flat_before, flat_after in zip(index._flat_tables, restored._flat_tables):
            a, b = flat_before.to_arrays(), flat_after.to_arrays()
            assert set(a) == set(b)
            assert all(np.array_equal(a[key], b[key]) for key in a)

    def test_pointer_builder_survives_roundtrip(self, workload, tmp_path):
        data, queries = workload
        index = DBLSH(
            builder="pointer", l_spaces=3, k_per_space=6, t=32, seed=0,
            auto_initial_radius=True,
        ).fit(data)
        path = str(tmp_path / "pointer.npz")
        save_index(index, path)
        restored = load_index(path)
        assert restored.builder == "pointer"
        assert restored.describe() == index.describe()
        assert restored.query(queries[0], k=5).ids == index.query(queries[0], k=5).ids

    def test_compressed_snapshot_loads_identically(self, workload, fitted, tmp_path):
        _, queries = workload
        plain = str(tmp_path / "plain.npz")
        packed = str(tmp_path / "packed.npz")
        save_index(fitted, plain)
        save_index(fitted, packed, compress=True)
        from_plain = load_index(plain)
        from_packed = load_index(packed)
        for q in queries[:4]:
            assert from_plain.query(q, k=5).ids == from_packed.query(q, k=5).ids


class TestShardedRoundtrip:
    def test_identical_query_results(self, workload, tmp_path):
        data, queries = workload
        index = ShardedDBLSH(
            shards=3, l_spaces=4, k_per_space=8, t=32, seed=0,
            auto_initial_radius=True,
        ).fit(data)
        path = str(tmp_path / "sharded.npz")
        save_index(index, path)
        restored = load_index(path)
        assert isinstance(restored, ShardedDBLSH)
        assert restored.describe() == index.describe()
        assert restored.shard_offsets == index.shard_offsets
        for q in queries:
            assert restored.query(q, k=5).ids == index.query(q, k=5).ids

    def test_split_budget_and_parent_t_survive_roundtrip(self, workload, tmp_path):
        data, queries = workload
        index = ShardedDBLSH(
            shards=3, l_spaces=3, k_per_space=6, t=32, seed=0, budget="split",
            auto_initial_radius=True,
        ).fit(data)
        path = str(tmp_path / "split.npz")
        save_index(index, path)
        restored = load_index(path)
        assert restored.budget == "split"
        assert restored.t == 32
        assert restored.shard_t == index.shard_t
        assert restored.describe() == index.describe()
        for q in queries[:4]:
            assert restored.query(q, k=5).ids == index.query(q, k=5).ids

    def test_class_load_helpers_enforce_kind(self, workload, fitted, tmp_path):
        data, _ = workload
        sharded_path = str(tmp_path / "sharded.npz")
        ShardedDBLSH(shards=2, l_spaces=3, k_per_space=6, t=16, seed=0).fit(
            data
        ).save(sharded_path)
        flat_path = str(tmp_path / "flat.npz")
        save_index(fitted, flat_path)
        with pytest.raises(SnapshotError, match="ShardedDBLSH snapshot"):
            DBLSH.load(sharded_path)
        with pytest.raises(SnapshotError, match="DBLSH snapshot"):
            ShardedDBLSH.load(flat_path)


class TestRejection:
    def test_version_mismatch_rejected(self, fitted, tmp_path):
        path = str(tmp_path / "future.npz")
        save_index(fitted, path, format="npz")
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
        header = json.loads(bytes(payload.pop("header")).decode())
        header["version"] = SNAPSHOT_VERSION + 1
        np.savez(path, header=np.bytes_(json.dumps(header).encode()), **payload)
        with pytest.raises(SnapshotError, match="version"):
            load_index(path)

    def test_non_snapshot_npz_rejected(self, tmp_path):
        path = str(tmp_path / "random.npz")
        np.savez(path, data=np.zeros((3, 2)))
        with pytest.raises(SnapshotError, match="not a"):
            load_index(path)
        with pytest.raises(SnapshotError, match="not a"):
            read_header(path)

    def test_unfitted_index_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="fit"):
            save_index(DBLSH(), str(tmp_path / "x.npz"))

    def test_unknown_object_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="cannot snapshot"):
            save_index(object(), str(tmp_path / "x.npz"))


class TestEvaluateSnapshot:
    def test_runner_evaluates_loaded_index(self, workload, fitted, tmp_path):
        from repro.eval import evaluate_snapshot

        data, queries = workload
        path = str(tmp_path / "eval.npz")
        save_index(fitted, path)
        result = evaluate_snapshot(path, queries, k=5, dataset_name="snap")
        assert result.dataset == "snap"
        assert result.n == data.shape[0]
        assert result.recall > 0.5
        assert result.candidates_per_query > 0

    def test_header_payload_mismatch_rejected(self, fitted, tmp_path):
        # A member altered after save is caught by its CRC32 before the
        # shape validation can even run.
        path = str(tmp_path / "mismatch.npz")
        save_index(fitted, path, format="npz")
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["tensor"] = payload["tensor"][:-1]  # drop one space
        np.savez(path, **payload)
        with pytest.raises(SnapshotError, match="failed its checksum"):
            load_index(path)

    def test_header_payload_mismatch_rejected_without_checksums(
        self, fitted, tmp_path
    ):
        # Snapshots written before per-member checksums existed fall
        # back to the header-vs-payload shape validation.
        path = str(tmp_path / "mismatch-old.npz")
        save_index(fitted, path, format="npz")
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
        header = json.loads(bytes(payload.pop("header")).decode())
        del header["checksums"]
        payload["tensor"] = payload["tensor"][:-1]  # drop one space
        np.savez(
            path, header=np.bytes_(json.dumps(header).encode()), **payload
        )
        with pytest.raises(SnapshotError, match="disagrees with its header"):
            load_index(path)

    def test_missing_payload_member_rejected(self, fitted, tmp_path):
        path = str(tmp_path / "truncated.npz")
        save_index(fitted, path, format="npz")
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
        del payload["flat0.meta"]
        np.savez(path, **payload)
        with pytest.raises(SnapshotError, match="missing snapshot payload"):
            load_index(path)

    def test_truncated_member_names_itself_and_sizes(self, fitted, tmp_path):
        # A member whose stored bytes end early (half-copied file, torn
        # download) is reported with its name and expected-vs-recovered
        # sizes, not as a cryptic numpy/zipfile traceback.
        import zipfile

        path = str(tmp_path / "shortmember.npz")
        save_index(fitted, path, format="npz")
        with zipfile.ZipFile(path) as archive:
            members = {name: archive.read(name) for name in archive.namelist()}
        victim = "tensor.npy"
        with zipfile.ZipFile(path, "w") as archive:
            for name, blob in members.items():
                if name == victim:
                    info = zipfile.ZipInfo(name)
                    info.file_size = len(blob)  # header promises full size
                    with archive.open(info, "w") as out:
                        out.write(blob[: len(blob) // 2])  # ...bytes end early
                else:
                    archive.writestr(name, blob)
        with pytest.raises(SnapshotError, match="'tensor'.*truncated or corrupt"):
            load_index(path)
        with pytest.raises(SnapshotError, match=r"expected \d+ bytes"):
            load_index(path)

    def test_crash_mid_save_leaves_old_snapshot_intact(
        self, workload, fitted, tmp_path, monkeypatch
    ):
        # save_index writes to a temp file and renames; a failure at the
        # rename (the last possible instant) must leave the previous
        # snapshot byte-identical and clean up the temp file.
        import os as os_module

        _, queries = workload
        path = str(tmp_path / "stable.npz")
        save_index(fitted, path)
        before_bytes = open(path, "rb").read()

        real_replace = os_module.replace

        def exploding_replace(src, dst):
            if dst == path:
                raise OSError("disk full at the worst moment")
            return real_replace(src, dst)

        monkeypatch.setattr("repro.io.snapshot.os.replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            save_index(fitted, path)
        monkeypatch.undo()
        assert open(path, "rb").read() == before_bytes
        assert [p for p in os_module.listdir(tmp_path) if ".tmp." in p] == []
        restored = load_index(path)
        assert restored.query(queries[0], k=5).ids == fitted.query(
            queries[0], k=5
        ).ids

    def test_numpy_integer_seed_survives_roundtrip(self, workload, tmp_path):
        data, _ = workload
        index = DBLSH(l_spaces=3, k_per_space=6, t=16, seed=np.int64(7)).fit(data)
        path = str(tmp_path / "npseed.npz")
        save_index(index, path)
        restored = load_index(path)
        assert restored.seed == 7
        assert read_header(path)["index"]["seed"] == 7
