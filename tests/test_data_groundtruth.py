"""Tests for blocked exact k-NN ground truth."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.groundtruth import exact_knn, pairwise_distances_blocked


class TestPairwiseDistances:
    def test_matches_naive(self, rng):
        data = rng.standard_normal((50, 8))
        queries = rng.standard_normal((7, 8))
        got = pairwise_distances_blocked(queries, data, block=3)
        naive = np.linalg.norm(queries[:, None, :] - data[None, :, :], axis=2)
        np.testing.assert_allclose(got, naive, atol=1e-9)

    def test_block_size_irrelevant(self, rng):
        data = rng.standard_normal((40, 4))
        queries = rng.standard_normal((11, 4))
        a = pairwise_distances_blocked(queries, data, block=1)
        b = pairwise_distances_blocked(queries, data, block=1000)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_zero_distance_clamped(self):
        data = np.array([[1.0, 1.0]])
        got = pairwise_distances_blocked(data, data)
        assert got[0, 0] == 0.0

    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError, match="dimension"):
            pairwise_distances_blocked(rng.standard_normal((2, 3)),
                                       rng.standard_normal((4, 5)))

    def test_bad_block(self, rng):
        with pytest.raises(ValueError, match="block"):
            pairwise_distances_blocked(np.zeros((1, 2)), np.zeros((1, 2)), block=0)


class TestExactKnn:
    def test_matches_argsort(self, rng):
        data = rng.standard_normal((80, 6))
        queries = rng.standard_normal((9, 6))
        ids, dists = exact_knn(queries, data, k=5)
        assert ids.shape == (9, 5)
        for qi in range(9):
            brute = np.linalg.norm(data - queries[qi], axis=1)
            expected = np.argsort(brute, kind="stable")[:5]
            np.testing.assert_allclose(dists[qi], np.sort(brute)[:5], atol=1e-9)
            assert set(ids[qi].tolist()) == set(expected.tolist())

    def test_distances_ascending(self, rng):
        data = rng.standard_normal((60, 4))
        queries = rng.standard_normal((5, 4))
        _, dists = exact_knn(queries, data, k=10)
        assert np.all(np.diff(dists, axis=1) >= 0)

    def test_k_clamped_to_n(self, rng):
        data = rng.standard_normal((3, 4))
        ids, dists = exact_knn(rng.standard_normal((2, 4)), data, k=10)
        assert ids.shape == (2, 3)

    def test_k_must_be_positive(self, rng):
        with pytest.raises(ValueError, match="k must be >= 1"):
            exact_knn(np.zeros((1, 2)), np.zeros((2, 2)), k=0)

    def test_self_query(self, rng):
        data = rng.standard_normal((30, 5))
        ids, dists = exact_knn(data[:3], data, k=1)
        assert ids[:, 0].tolist() == [0, 1, 2]
        np.testing.assert_allclose(dists[:, 0], 0.0, atol=1e-9)

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=8))
    @settings(max_examples=20)
    def test_property_sizes(self, n, k):
        rng = np.random.default_rng(n * 100 + k)
        data = rng.standard_normal((n, 3))
        ids, dists = exact_knn(rng.standard_normal((2, 3)), data, k=k)
        assert ids.shape == (2, min(k, n))
        assert np.all(np.diff(dists, axis=1) >= 0)
