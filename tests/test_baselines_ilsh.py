"""Tests for the I-LSH / EI-LSH incremental-expansion baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ILSH, QALSH
from repro.data.generators import gaussian_mixture


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(
        500, 24, n_clusters=8, cluster_std=1.0, center_spread=8.0, seed=5
    )


class TestBasics:
    def test_self_query(self, data):
        method = ILSH(m=20, beta=0.2, seed=0).fit(data)
        result = method.query(data[9], k=1)
        assert result.neighbors[0].id == 9
        assert result.neighbors[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="c must be > 1"):
            ILSH(c=1.0)
        with pytest.raises(ValueError, match="m must be >= 1"):
            ILSH(m=0)
        with pytest.raises(ValueError, match="collision_ratio"):
            ILSH(collision_ratio=0.0)
        with pytest.raises(ValueError, match="early_stop_scale"):
            ILSH(early_stop_scale=0.0)

    def test_reasonable_recall(self, data):
        from repro.data.groundtruth import exact_knn
        from repro.eval.metrics import recall

        rng = np.random.default_rng(1)
        queries = data[rng.choice(500, 8, replace=False)] + 0.05
        gt_ids, _ = exact_knn(queries, data, 10)
        method = ILSH(m=30, beta=0.2, seed=0).fit(data)
        recalls = [
            recall(method.query(q, k=10).ids, gt_ids[i])
            for i, q in enumerate(queries)
        ]
        assert float(np.mean(recalls)) >= 0.6


class TestIncrementalBehaviour:
    def test_frontier_radius_is_monotone_proxy(self, data):
        """final_radius records the last projected offset visited — it must
        exceed zero and grow with a laxer early stop."""
        strict = ILSH(m=20, beta=0.5, early_stop_scale=0.5, seed=0).fit(data)
        lax = ILSH(m=20, beta=0.5, early_stop_scale=4.0, seed=0).fit(data)
        q = data[0] + 0.1
        r_strict = strict.query(q, k=5)
        r_lax = lax.query(q, k=5)
        assert r_lax.stats.candidates_verified >= r_strict.stats.candidates_verified

    def test_early_stop_reduces_work_vs_plain(self, data):
        plain = ILSH(m=20, beta=0.9, early_stop_scale=None, seed=0).fit(data)
        eager = ILSH(m=20, beta=0.9, early_stop_scale=1.0, seed=0).fit(data)
        q = data[3] + 0.05
        assert (
            eager.query(q, k=5).stats.candidates_verified
            <= plain.query(q, k=5).stats.candidates_verified
        )

    def test_plain_ilsh_exhausts_or_budgets(self, data):
        method = ILSH(m=10, beta=0.02, early_stop_scale=None, seed=0).fit(data)
        result = method.query(data.mean(axis=0), k=5)
        assert result.stats.terminated_by in {"budget", "exhausted"}

    def test_incremental_touches_fewer_points_than_round_based(self, data):
        """The motivation of I-LSH: minimal enlargements surface the same
        neighbors with no round overshoot.  Compare collision work against
        QALSH at the same m and budget."""
        q = data[7] + 0.05
        ilsh = ILSH(m=20, beta=0.1, collision_ratio=0.3, seed=0).fit(data)
        qalsh = QALSH(m=20, w=2.719, beta=0.1, collision_ratio=0.3, seed=0,
                      auto_initial_radius=True).fit(data)
        r_i = ilsh.query(q, k=5)
        r_q = qalsh.query(q, k=5)
        # Both find the near neighborhood...
        assert r_i.neighbors[0].distance <= r_q.neighbors[0].distance * 1.5 + 1e-9
        # ...and I-LSH verifies no more candidates than the round-based
        # expansion at matched parameters.
        assert r_i.stats.candidates_verified <= r_q.stats.candidates_verified * 1.5
