"""Tests for the two LSH families and the compound hasher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.compound import CompoundHasher
from repro.hashing.families import (
    GaussianProjectionFamily,
    PStableHashFamily,
    projection_tensor,
)
from repro.hashing.probability import collision_probability_dynamic


class TestGaussianProjectionFamily:
    def test_shapes(self):
        family = GaussianProjectionFamily(16, 4, seed=0)
        points = np.random.default_rng(0).standard_normal((10, 16))
        assert family.project(points).shape == (10, 4)
        assert family.project_one(points[0]).shape == (4,)

    def test_project_one_consistent_with_batch(self):
        family = GaussianProjectionFamily(8, 3, seed=1)
        point = np.arange(8, dtype=float)
        np.testing.assert_allclose(
            family.project_one(point), family.project(point[None, :])[0]
        )

    def test_linearity(self):
        family = GaussianProjectionFamily(8, 3, seed=2)
        a = np.random.default_rng(3).standard_normal(8)
        b = np.random.default_rng(4).standard_normal(8)
        np.testing.assert_allclose(
            family.project_one(a + b),
            family.project_one(a) + family.project_one(b),
            atol=1e-12,
        )

    def test_collides_predicate(self):
        family = GaussianProjectionFamily(4, 2, seed=0)
        h1 = np.array([0.0, 0.0])
        h2 = np.array([0.9, 2.1])
        mask = family.collides(h1, h2, w=2.0)
        np.testing.assert_array_equal(mask, [True, False])

    def test_seed_determinism(self):
        a = GaussianProjectionFamily(8, 3, seed=5).vectors
        b = GaussianProjectionFamily(8, 3, seed=5).vectors
        np.testing.assert_array_equal(a, b)

    def test_dimension_mismatch_raises(self):
        family = GaussianProjectionFamily(8, 3, seed=0)
        with pytest.raises(ValueError, match="dimension"):
            family.project(np.zeros((2, 9)))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            GaussianProjectionFamily(0, 3)
        with pytest.raises(ValueError):
            GaussianProjectionFamily(3, 0)

    @pytest.mark.slow
    def test_two_stability(self):
        """Projected differences follow N(0, tau^2): empirical collision
        rates must match Eq. 4 within sampling error."""
        rng = np.random.default_rng(0)
        dim, trials = 32, 4000
        family = GaussianProjectionFamily(dim, trials, seed=1)
        o1 = rng.standard_normal(dim)
        direction = rng.standard_normal(dim)
        direction /= np.linalg.norm(direction)
        for tau, w in [(1.0, 2.0), (2.0, 2.0), (1.0, 6.0)]:
            o2 = o1 + tau * direction
            h1, h2 = family.project_one(o1), family.project_one(o2)
            empirical = float(np.mean(np.abs(h1 - h2) <= w / 2.0))
            expected = float(collision_probability_dynamic(tau, w))
            assert empirical == pytest.approx(expected, abs=0.03)


class TestPStableHashFamily:
    def test_hash_is_integer_grid(self):
        family = PStableHashFamily(8, 4, w=2.0, seed=0)
        points = np.random.default_rng(1).standard_normal((20, 8))
        buckets = family.hash(points)
        assert buckets.dtype == np.int64
        raw = family.raw_project(points)
        np.testing.assert_array_equal(buckets, np.floor(raw / 2.0).astype(np.int64))

    def test_offsets_in_range(self):
        family = PStableHashFamily(8, 16, w=3.0, seed=2)
        assert np.all(family.offsets >= 0.0)
        assert np.all(family.offsets < 3.0)

    def test_rehash_merges_buckets(self):
        family = PStableHashFamily(4, 2, w=1.0, seed=0)
        ids = np.array([[4, -3], [5, -4]])
        merged = family.rehash(ids, 2)
        np.testing.assert_array_equal(merged, [[2, -2], [2, -2]])

    def test_rehash_factor_one_is_identity(self):
        family = PStableHashFamily(4, 2, w=1.0, seed=0)
        ids = np.array([[7, -9]])
        np.testing.assert_array_equal(family.rehash(ids, 1), ids)

    def test_rehash_rejects_zero(self):
        family = PStableHashFamily(4, 2, w=1.0, seed=0)
        with pytest.raises(ValueError):
            family.rehash(np.array([1]), 0)

    def test_hash_one_matches_batch(self):
        family = PStableHashFamily(6, 3, w=1.5, seed=3)
        point = np.random.default_rng(0).standard_normal(6)
        np.testing.assert_array_equal(
            family.hash_one(point), family.hash(point[None, :])[0]
        )

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            PStableHashFamily(4, 2, w=0.0)


class TestCompoundHasher:
    def test_projection_shapes(self):
        hasher = CompoundHasher(dim=16, l_spaces=3, k_per_space=5, seed=0)
        points = np.random.default_rng(0).standard_normal((7, 16))
        all_proj = hasher.project_all(points)
        assert all_proj.shape == (3, 7, 5)
        assert hasher.project_query(points[0]).shape == (3, 5)
        assert hasher.num_functions == 15

    def test_query_projection_consistent(self):
        hasher = CompoundHasher(dim=8, l_spaces=2, k_per_space=4, seed=1)
        points = np.random.default_rng(2).standard_normal((5, 8))
        all_proj = hasher.project_all(points)
        q_proj = hasher.project_query(points[3])
        np.testing.assert_allclose(q_proj, all_proj[:, 3, :], atol=1e-12)

    def test_spaces_are_independent(self):
        hasher = CompoundHasher(dim=8, l_spaces=2, k_per_space=4, seed=1)
        assert not np.allclose(hasher.tensor[0], hasher.tensor[1])

    def test_dimension_mismatch(self):
        hasher = CompoundHasher(dim=8, l_spaces=2, k_per_space=4, seed=1)
        with pytest.raises(ValueError, match="dimension"):
            hasher.project_query(np.zeros(7))
        with pytest.raises(ValueError, match="dimension"):
            hasher.project_all(np.zeros((3, 7)))

    def test_projection_tensor_shape_and_seed(self):
        a = projection_tensor(10, 3, 4, seed=7)
        b = projection_tensor(10, 3, 4, seed=7)
        assert a.shape == (3, 4, 10)
        np.testing.assert_array_equal(a, b)

    def test_projection_tensor_invalid(self):
        with pytest.raises(ValueError):
            projection_tensor(10, 0, 4)
