"""Tests for the collision-probability math (Eq. 2, Eq. 4, Lemma 3).

These pin the analytical core of the paper: closed forms are checked
against direct numeric quadrature, the LSH property p1 > p2 is verified,
and Lemma 3's alpha = 4.746 at gamma = 2 is reproduced to 3 decimals.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.probability import (
    alpha_for_gamma,
    collision_probability_dynamic,
    collision_probability_dynamic_numeric,
    collision_probability_static,
    collision_probability_static_numeric,
    gamma_for_w0,
    optimal_rho_curves,
    rho_dynamic,
    rho_ratio_bound,
    rho_star_bound,
    rho_static,
    xi,
)

positive = st.floats(min_value=0.05, max_value=50.0)


class TestDynamicProbability:
    def test_zero_distance_is_certain(self):
        assert collision_probability_dynamic(0.0, 4.0) == pytest.approx(1.0)

    def test_monotone_decreasing_in_tau(self):
        taus = np.linspace(0.1, 20.0, 50)
        probs = collision_probability_dynamic(taus, 4.0)
        assert np.all(np.diff(probs) < 0)

    def test_monotone_increasing_in_w(self):
        # Stay below erf saturation (p == 1.0 in float64) so strictness holds.
        widths = np.linspace(0.1, 8.0, 50)
        probs = collision_probability_dynamic(1.0, widths)
        assert np.all(np.diff(probs) > 0)

    @given(positive, positive)
    def test_matches_numeric_integration(self, tau, w):
        closed = float(collision_probability_dynamic(tau, w))
        numeric = collision_probability_dynamic_numeric(tau, w)
        assert closed == pytest.approx(numeric, abs=1e-9)

    def test_observation_1_scale_invariance(self):
        """Eq. 5: p(r; w0 r) is independent of r (Observation 1)."""
        w0 = 9.0
        base = float(collision_probability_dynamic(1.0, w0))
        for r in [0.01, 0.5, 3.0, 100.0]:
            scaled = float(collision_probability_dynamic(r, w0 * r))
            assert scaled == pytest.approx(base, rel=1e-12)

    def test_rejects_negative_tau(self):
        with pytest.raises(ValueError, match="tau"):
            collision_probability_dynamic(-1.0, 2.0)

    def test_rejects_nonpositive_w(self):
        with pytest.raises(ValueError, match="w"):
            collision_probability_dynamic(1.0, 0.0)


class TestStaticProbability:
    def test_zero_distance_is_certain(self):
        assert collision_probability_static(0.0, 4.0) == pytest.approx(1.0)

    def test_monotone_decreasing_in_tau(self):
        taus = np.linspace(0.1, 20.0, 50)
        probs = collision_probability_static(taus, 4.0)
        assert np.all(np.diff(probs) < 0)

    @given(positive, positive)
    def test_matches_numeric_integration(self, tau, w):
        closed = float(collision_probability_static(tau, w))
        numeric = collision_probability_static_numeric(tau, w)
        assert closed == pytest.approx(numeric, abs=1e-7)

    def test_lsh_property_p1_gt_p2(self):
        # Definition 3: nearer pairs collide more often.
        for w in [0.5, 2.0, 9.0]:
            p1 = float(collision_probability_static(1.0, w))
            p2 = float(collision_probability_static(2.0, w))
            assert p1 > p2


class TestRhoExponents:
    def test_rho_dynamic_in_unit_interval(self):
        rho = rho_dynamic(1.5, 9.0)
        assert 0.0 < rho < 1.0

    def test_rho_dynamic_below_paper_bound(self):
        # Lemma 3: rho* <= 1/c^alpha at w0 = 2 gamma c^2.
        for c in [1.2, 1.5, 2.0, 3.0]:
            w0 = 4.0 * c * c  # gamma = 2
            assert rho_dynamic(c, w0) <= rho_star_bound(c, w0) + 1e-12

    def test_rho_ratio_bound_dominates_rho(self):
        # Eq. 9: rho* <= (1 - p1) / (1 - p2).
        for c in [1.3, 1.8, 2.5]:
            w0 = 4.0 * c * c
            assert rho_dynamic(c, w0) <= rho_ratio_bound(c, w0) + 1e-12

    def test_rho_decreases_with_c(self):
        # Strictly below the float64 saturation region (p1 == 1.0 at c >= 3
        # with w0 = 4c^2 makes rho exactly 0 there).
        rhos = [rho_dynamic(c, 4.0 * c * c) for c in [1.2, 1.5, 2.0]]
        assert all(a > b for a, b in zip(rhos, rhos[1:]))
        saturated = [rho_dynamic(c, 4.0 * c * c) for c in [3.0, 4.0]]
        assert all(r <= rhos[-1] for r in saturated)

    def test_rho_static_requires_c_above_one(self):
        with pytest.raises(ValueError, match="c must be > 1"):
            rho_static(1.0, 4.0)

    def test_rho_dynamic_requires_c_above_one(self):
        with pytest.raises(ValueError, match="c must be > 1"):
            rho_dynamic(0.9, 4.0)


class TestLemma3:
    def test_alpha_at_gamma_2_matches_paper(self):
        # The abstract/Lemma 3 quote alpha = 4.746 for w0 = 4c^2.
        assert alpha_for_gamma(2.0) == pytest.approx(4.746, abs=1e-3)

    def test_alpha_exceeds_one_above_critical_gamma(self):
        # "xi(gamma) > 1 holds when gamma > 0.7518".
        assert alpha_for_gamma(0.76) > 1.0
        assert alpha_for_gamma(0.74) < 1.0

    def test_xi_is_monotone_increasing(self):
        values = [xi(v) for v in np.linspace(0.2, 5.0, 30)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_gamma_roundtrip(self):
        c = 1.5
        w0 = 2.0 * 1.7 * c * c
        assert gamma_for_w0(w0, c) == pytest.approx(1.7)

    def test_bound_tightens_with_width(self):
        # alpha grows with w0, so 1/c^alpha shrinks.
        c = 2.0
        bounds = [rho_star_bound(c, f * c * c) for f in [1.0, 2.0, 4.0, 8.0]]
        assert all(a > b for a, b in zip(bounds, bounds[1:]))


class TestFigure4Curves:
    def test_large_width_rho_star_below_one_over_c(self):
        # Fig. 4(b): at w = 4c^2 rho* is far below 1/c while rho hugs it.
        c_values = np.linspace(1.1, 4.0, 12)
        rho_star, rho, inv_c = optimal_rho_curves(c_values, 4.0)
        assert np.all(rho_star < inv_c)
        assert np.all(rho_star < rho)

    def test_small_width_rho_can_exceed_one_over_c(self):
        # Fig. 4(a): at w = 0.4c^2 the static rho exceeds 1/c for small c.
        c_values = np.array([1.2, 1.5, 1.8])
        rho_star, rho, inv_c = optimal_rho_curves(c_values, 0.4)
        assert np.any(rho > inv_c)
        assert np.all(rho_star < rho)

    def test_rejects_c_at_most_one(self):
        with pytest.raises(ValueError, match="must be > 1"):
            optimal_rho_curves(np.array([1.0, 2.0]), 4.0)
