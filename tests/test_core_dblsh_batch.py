"""Batch, engine-equivalence, patience and growth tests for DBLSH.

Covers the vectorized query engine's contracts:

* ``query_batch`` returns bitwise-identical neighbors and consistent
  work counters versus looping ``query``, for every backend, with and
  without thread workers;
* the ``vectorized`` and ``legacy`` engines verify candidates in the
  same order and therefore return the same neighbor ids even when the
  budget truncates the scan;
* the patience counter survives radius rounds (regression test for the
  per-round reset bug);
* ``add`` grows a capacity-doubling buffer instead of copying the whole
  dataset per call.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBLSH
from repro.data.generators import gaussian_mixture

BACKENDS = ["rstar", "rstar-insert", "kdtree", "grid"]


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(900, 20, n_clusters=9, cluster_std=1.0,
                            center_spread=8.0, seed=7)
    rng = np.random.default_rng(11)
    queries = data[rng.choice(900, 16, replace=False)] + 0.1 * rng.standard_normal((16, 20))
    return data, queries


def _assert_same_result(a, b):
    assert a.ids == b.ids
    assert a.distances == b.distances  # bitwise: same floats, same order
    assert a.stats.candidates_verified == b.stats.candidates_verified
    assert a.stats.distance_computations == b.stats.distance_computations
    assert a.stats.hash_evaluations == b.stats.hash_evaluations
    assert a.stats.window_queries == b.stats.window_queries
    assert a.stats.rounds == b.stats.rounds
    assert a.stats.final_radius == b.stats.final_radius
    assert a.stats.terminated_by == b.stats.terminated_by


class TestBatchEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_matches_sequential(self, workload, backend):
        data, queries = workload
        index = DBLSH(l_spaces=3, k_per_space=5, t=16, seed=3, backend=backend,
                      auto_initial_radius=True).fit(data)
        sequential = [index.query(q, k=8) for q in queries]
        batched = index.query_batch(queries, k=8)
        assert len(batched) == len(sequential)
        for a, b in zip(sequential, batched):
            _assert_same_result(a, b)

    def test_workers_match_serial_batch(self, workload):
        data, queries = workload
        index = DBLSH(l_spaces=3, k_per_space=5, t=16, seed=3,
                      auto_initial_radius=True).fit(data)
        serial = index.query_batch(queries, k=8)
        threaded = index.query_batch(queries, k=8, workers=4)
        for a, b in zip(serial, threaded):
            _assert_same_result(a, b)

    def test_batch_with_budget_truncation(self, workload):
        # Tiny budget: results depend on candidate order, the strictest
        # equivalence setting.
        data, queries = workload
        index = DBLSH(l_spaces=3, k_per_space=4, t=2, seed=5,
                      auto_initial_radius=True).fit(data)
        for a, b in zip([index.query(q, k=10) for q in queries],
                        index.query_batch(queries, k=10)):
            _assert_same_result(a, b)

    def test_batch_with_patience(self, workload):
        data, queries = workload
        index = DBLSH(l_spaces=3, k_per_space=5, t=500, seed=3, patience=10,
                      auto_initial_radius=True).fit(data)
        for a, b in zip([index.query(q, k=5) for q in queries],
                        index.query_batch(queries, k=5)):
            _assert_same_result(a, b)

    def test_batch_validation(self, workload):
        data, _ = workload
        index = DBLSH(l_spaces=2, k_per_space=4, seed=0).fit(data)
        with pytest.raises(ValueError, match="k must be >= 1"):
            index.query_batch(data[:2], k=0)
        with pytest.raises(ValueError, match="dimension"):
            index.query_batch(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="NaN"):
            index.query_batch(np.full((1, 20), np.nan))
        assert index.query_batch(np.empty((0, 20))) == []

    def test_unfitted_batch(self):
        with pytest.raises(RuntimeError, match="fit"):
            DBLSH().query_batch(np.zeros((1, 4)))


class TestEngineEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_vectorized_matches_legacy(self, workload, backend):
        data, queries = workload
        kwargs = dict(l_spaces=3, k_per_space=5, t=16, seed=3, backend=backend,
                      auto_initial_radius=True)
        vec = DBLSH(engine="vectorized", **kwargs).fit(data)
        leg = DBLSH(engine="legacy", **kwargs).fit(data)
        for q in queries:
            a = vec.query(q, k=8)
            b = leg.query(q, k=8)
            # Same candidates in the same order; distances agree to the
            # accumulation error of the expanded-norm formula.
            assert a.ids == b.ids
            np.testing.assert_allclose(a.distances, b.distances,
                                       rtol=1e-9, atol=1e-9)
            assert a.stats.candidates_verified == b.stats.candidates_verified
            assert a.stats.rounds == b.stats.rounds
            assert a.stats.terminated_by == b.stats.terminated_by

    def test_equivalence_with_duplicate_distances(self):
        """Exact ties at the k-th boundary must not diverge the engines.

        Duplicated points make every distance appear six times, so the
        merge fast path's partition would pick arbitrary tie survivors;
        it must detect the tie and fall back to the sequential replay.
        """
        rng = np.random.default_rng(0)
        base = rng.standard_normal((40, 8))
        data = np.vstack([base] * 6)
        query = base[0] + 0.3
        for t in (16, 1000):
            kwargs = dict(l_spaces=3, k_per_space=4, t=t, seed=1,
                          auto_initial_radius=True)
            vec = DBLSH(**kwargs).fit(data)
            leg = DBLSH(engine="legacy", **kwargs).fit(data)
            for k in (1, 5, 37):
                a, b = vec.query(query, k=k), leg.query(query, k=k)
                assert a.ids == b.ids
                assert a.stats.terminated_by == b.stats.terminated_by

    def test_invalid_engine(self):
        with pytest.raises(ValueError, match="engine"):
            DBLSH(engine="turbo")

    def test_engine_reported(self, workload):
        data, _ = workload
        index = DBLSH(l_spaces=2, k_per_space=4, seed=0).fit(data)
        assert "engine=vectorized" in index.describe()


class TestPatienceAcrossRounds:
    def test_patience_counter_survives_radius_rounds(self):
        """Regression: the no-improvement count must not reset per round.

        One projection space (L=K=1) over 1-D data lets us place points
        directly in the projected space: shells at |h| = 3.8, 4.0, 6.2,
        9.3, 14, 21 relative to the query's projection at 0.  With
        ``w0 = 9`` and ``r0 = 1`` each radius round reveals at most two
        fresh candidates — far fewer than the patience of 4 — so the stop
        can only fire by carrying the counter across rounds (the seed
        implementation rebuilt it every round and ended ``exhausted``).
        """
        probe = DBLSH(l_spaces=1, k_per_space=1, seed=0).fit(np.ones((1, 1)))
        a = float(probe._hasher.tensor[0, 0, 0])
        assert abs(a) < 0.75  # keeps every shell outside c*r of the query
        h_targets = np.array([3.8, -4.0, 6.2, 9.3, 14.0, 21.0])
        data = (h_targets / a)[:, None]
        query = np.zeros(1)

        index = DBLSH(c=1.5, l_spaces=1, k_per_space=1, t=1000, seed=0,
                      initial_radius=1.0, patience=4).fit(data)
        result = index.query(query, k=1)
        assert result.stats.terminated_by == "patience"
        # The counter accumulated over several rounds, never within one:
        # six points exist, at most two become fresh in any round.
        assert result.stats.rounds >= 3
        assert result.stats.candidates_verified <= 6

        # The legacy engine shares the fixed round loop.
        legacy = DBLSH(c=1.5, l_spaces=1, k_per_space=1, t=1000, seed=0,
                       initial_radius=1.0, patience=4, engine="legacy").fit(data)
        legacy_result = legacy.query(query, k=1)
        assert legacy_result.stats.terminated_by == "patience"
        assert legacy_result.stats.rounds == result.stats.rounds


class TestAddGrowth:
    def test_add_uses_capacity_doubling(self):
        data = gaussian_mixture(64, 8, n_clusters=4, seed=0)
        index = DBLSH(l_spaces=2, k_per_space=4, seed=0,
                      auto_initial_radius=True).fit(data)
        rng = np.random.default_rng(3)
        reference = [data]
        buffers_seen = set()
        for _ in range(12):
            extra = rng.standard_normal((5, 8))
            index.add(extra)
            reference.append(extra)
            buffers_seen.add(id(index._buffer))
        expected = np.vstack(reference)
        assert index.num_points == expected.shape[0]
        np.testing.assert_array_equal(index.data, expected)
        # Doubling means far fewer reallocations than add() calls.
        assert len(buffers_seen) < 6
        assert index._buffer.shape[0] >= index.num_points

    def test_add_then_query_finds_new_points(self):
        data = gaussian_mixture(120, 8, n_clusters=4, seed=1)
        index = DBLSH(l_spaces=3, k_per_space=4, seed=0,
                      auto_initial_radius=True).fit(data)
        new_point = data.mean(axis=0) + 300.0
        index.add(new_point[None, :])
        result = index.query(new_point, k=1)
        assert result.neighbors[0].id == 120
        assert result.neighbors[0].distance == pytest.approx(0.0)
        # Batch path sees the grown dataset too.
        batch = index.query_batch(new_point[None, :], k=1)
        assert batch[0].neighbors[0].id == 120

    def test_add_keeps_norms_consistent(self):
        data = gaussian_mixture(100, 6, n_clusters=4, seed=2)
        index = DBLSH(l_spaces=2, k_per_space=4, seed=0,
                      auto_initial_radius=True).fit(data)
        extra = gaussian_mixture(40, 6, n_clusters=2, seed=3)
        index.add(extra)
        expected = np.einsum("ij,ij->i", index.data, index.data)
        np.testing.assert_allclose(index._norms2[: index.num_points], expected)
