"""Tests for the KD-tree: window queries, exact kNN, incremental NN."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.kdtree import KDTree


def brute_window(points, w_low, w_high):
    mask = np.all(points >= w_low, axis=1) & np.all(points <= w_high, axis=1)
    return set(np.flatnonzero(mask).tolist())


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one point"):
            KDTree(np.zeros((0, 2)))

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError, match="leaf_size"):
            KDTree(np.zeros((1, 2)), leaf_size=0)

    def test_single_point(self):
        tree = KDTree(np.array([[1.0, 2.0]]))
        dists, ids = tree.knn(np.array([1.0, 2.0]), 1)
        assert ids.tolist() == [0]
        assert dists[0] == pytest.approx(0.0)

    def test_all_duplicates(self):
        tree = KDTree(np.ones((40, 3)), leaf_size=8)
        got = tree.window_query(np.full(3, 0.5), np.full(3, 1.5))
        assert sorted(got.tolist()) == list(range(40))


class TestWindowQuery:
    def test_matches_brute_force(self, rng):
        points = rng.uniform(-5, 5, size=(300, 3))
        tree = KDTree(points, leaf_size=16)
        for _ in range(20):
            center = rng.uniform(-5, 5, size=3)
            half = rng.uniform(0.2, 4.0, size=3)
            got = set(tree.window_query(center - half, center + half).tolist())
            assert got == brute_window(points, center - half, center + half)

    def test_empty_window(self, rng):
        points = rng.uniform(0, 1, size=(50, 2))
        tree = KDTree(points)
        assert tree.window_query(np.full(2, 5.0), np.full(2, 6.0)).size == 0


class TestKNN:
    def test_matches_brute_force(self, rng):
        points = rng.standard_normal((200, 4))
        tree = KDTree(points, leaf_size=8)
        for _ in range(10):
            q = rng.standard_normal(4)
            dists, ids = tree.knn(q, 7)
            brute = np.linalg.norm(points - q, axis=1)
            expected = np.argsort(brute, kind="stable")[:7]
            np.testing.assert_allclose(dists, np.sort(brute)[:7], atol=1e-9)
            assert set(ids.tolist()) == set(expected.tolist())

    def test_k_larger_than_n(self, rng):
        points = rng.standard_normal((5, 2))
        tree = KDTree(points)
        dists, ids = tree.knn(np.zeros(2), 10)
        assert len(ids) == 5
        assert np.all(np.diff(dists) >= 0)

    def test_k_must_be_positive(self, rng):
        tree = KDTree(rng.standard_normal((5, 2)))
        with pytest.raises(ValueError, match="k must be >= 1"):
            tree.knn(np.zeros(2), 0)


class TestNearestIter:
    def test_yields_ascending_distances(self, rng):
        points = rng.standard_normal((150, 3))
        tree = KDTree(points, leaf_size=8)
        q = rng.standard_normal(3)
        stream = list(itertools.islice(tree.nearest_iter(q), 50))
        dists = [d for d, _ in stream]
        assert dists == sorted(dists)

    def test_enumerates_everything(self, rng):
        points = rng.standard_normal((60, 2))
        tree = KDTree(points, leaf_size=4)
        stream = list(tree.nearest_iter(np.zeros(2)))
        assert sorted(i for _, i in stream) == list(range(60))

    def test_wrong_dimension(self, rng):
        tree = KDTree(rng.standard_normal((5, 3)))
        with pytest.raises(ValueError, match="dimension"):
            next(tree.nearest_iter(np.zeros(2)))

    def test_first_item_is_nearest(self, rng):
        points = rng.standard_normal((80, 3))
        tree = KDTree(points)
        q = rng.standard_normal(3)
        dist, idx = next(tree.nearest_iter(q))
        brute = np.linalg.norm(points - q, axis=1)
        assert dist == pytest.approx(brute.min())
        assert brute[idx] == pytest.approx(brute.min())


class TestPropertyBased:
    @given(
        st.lists(st.tuples(st.floats(-20, 20), st.floats(-20, 20)),
                 min_size=1, max_size=80),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30)
    def test_knn_matches_brute(self, raw_points, k):
        points = np.array(raw_points, dtype=np.float64)
        tree = KDTree(points, leaf_size=4)
        q = np.zeros(2)
        dists, _ = tree.knn(q, k)
        brute = np.sort(np.linalg.norm(points, axis=1))[: min(k, len(points))]
        np.testing.assert_allclose(dists, brute, atol=1e-9)
