"""Tests for ShardedDBLSH: partitioning, parity with the unsharded engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBLSH, ShardedDBLSH
from repro.data.generators import gaussian_mixture

COMMON = dict(
    c=1.5, l_spaces=5, k_per_space=10, t=64, seed=0, auto_initial_radius=True
)


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(2000, 20, n_clusters=8, seed=3)
    rng = np.random.default_rng(7)
    queries = data[rng.choice(2000, 12, replace=False)] + 0.05
    return data, queries


@pytest.fixture(scope="module")
def unsharded(workload):
    data, _ = workload
    return DBLSH(**COMMON).fit(data)


class TestParity:
    """Acceptance: shards=4 returns identical top-k sets to unsharded."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_topk_sets_match_unsharded(self, workload, unsharded, shards):
        data, queries = workload
        sharded = ShardedDBLSH(shards=shards, **COMMON).fit(data)
        for q in queries:
            expected = unsharded.query(q, k=10)
            got = sharded.query(q, k=10)
            assert set(got.ids) == set(expected.ids)
            assert got.distances == pytest.approx(expected.distances)

    def test_batch_matches_sequential(self, workload):
        data, queries = workload
        sharded = ShardedDBLSH(shards=4, **COMMON).fit(data)
        batch = sharded.query_batch(queries, k=10)
        singles = [sharded.query(q, k=10) for q in queries]
        assert [r.ids for r in batch] == [r.ids for r in singles]
        workers1 = sharded.query_batch(queries, k=10, workers=1)
        assert [r.ids for r in workers1] == [r.ids for r in batch]

    def test_sequential_build_matches_parallel(self, workload):
        data, queries = workload
        parallel = ShardedDBLSH(shards=3, **COMMON).fit(data)
        sequential = ShardedDBLSH(shards=3, build_workers=1, **COMMON).fit(data)
        for q in queries[:4]:
            assert sequential.query(q, k=5).ids == parallel.query(q, k=5).ids

    def test_fanout_workers_match_serial_sweep(self, workload):
        data, queries = workload
        sharded = ShardedDBLSH(shards=4, **COMMON).fit(data)
        serial = sharded.query_batch(queries, k=10)
        fanned = sharded.query_batch(queries, k=10, workers=4)
        assert [r.ids for r in fanned] == [r.ids for r in serial]


class TestBuildModes:
    """Process-pool builds must be indistinguishable from threaded ones."""

    def test_process_build_matches_thread_build(self, workload):
        data, queries = workload
        process = ShardedDBLSH(shards=3, build_mode="process", **COMMON).fit(data)
        thread = ShardedDBLSH(shards=3, build_mode="thread", **COMMON).fit(data)
        batch_p = process.query_batch(queries, k=10)
        batch_t = thread.query_batch(queries, k=10)
        assert [r.ids for r in batch_p] == [r.ids for r in batch_t]
        assert [r.distances for r in batch_p] == [r.distances for r in batch_t]

    def test_process_built_shards_have_identical_flat_arrays(self, workload):
        data, _ = workload
        process = ShardedDBLSH(shards=3, build_mode="process", **COMMON).fit(data)
        thread = ShardedDBLSH(shards=3, build_mode="thread", **COMMON).fit(data)
        for shard_p, shard_t in zip(process.shard_indexes, thread.shard_indexes):
            shard_t._ensure_frozen()
            assert shard_p.num_points == shard_t.num_points
            for flat_p, flat_t in zip(shard_p._flat_tables, shard_t._flat_tables):
                a, b = flat_p.to_arrays(), flat_t.to_arrays()
                assert all(np.array_equal(a[key], b[key]) for key in a)

    def test_process_build_add_still_works(self, workload):
        data, _ = workload
        sharded = ShardedDBLSH(shards=2, build_mode="process", **COMMON).fit(data)
        isolated = data.mean(axis=0) + 500.0
        sharded.add(isolated[None, :])
        assert sharded.query(isolated, k=1).neighbors[0].id == data.shape[0]

    def test_non_flat_config_falls_back_to_threads(self, workload):
        data, queries = workload
        sharded = ShardedDBLSH(
            shards=2, build_mode="process", engine="legacy", **COMMON
        ).fit(data)
        # Thread-built legacy shards hold pointer tables; a shard that had
        # gone through the process pool would have come back without them.
        for shard in sharded.shard_indexes:
            assert all(table is not None for table in shard._tables)
        assert sharded.query(queries[0], k=5).neighbors

    def test_invalid_build_mode(self):
        with pytest.raises(ValueError, match="build_mode"):
            ShardedDBLSH(shards=2, build_mode="magic")


class TestBudgetSplit:
    def test_shard_t_divides_budget(self, workload):
        data, _ = workload
        split = ShardedDBLSH(shards=4, budget="split", **COMMON).fit(data)
        assert split.t == COMMON["t"]
        assert split.shard_t == -(-COMMON["t"] // 4)
        assert all(shard.t == split.shard_t for shard in split.shard_indexes)

    def test_full_budget_keeps_t(self, workload):
        data, _ = workload
        full = ShardedDBLSH(shards=4, budget="full", **COMMON).fit(data)
        assert full.shard_t == COMMON["t"]
        assert all(shard.t == COMMON["t"] for shard in full.shard_indexes)

    def test_split_verifies_no_more_total_candidates(self, workload):
        data, queries = workload
        full = ShardedDBLSH(shards=4, budget="full", **COMMON).fit(data)
        split = ShardedDBLSH(shards=4, budget="split", **COMMON).fit(data)
        cand_full = sum(
            r.stats.candidates_verified for r in full.query_batch(queries, k=10)
        )
        cand_split = sum(
            r.stats.candidates_verified for r in split.query_batch(queries, k=10)
        )
        assert cand_split <= cand_full
        # The split mode still returns k sane neighbors per query.
        for result in split.query_batch(queries, k=10):
            assert len(result.neighbors) == 10

    def test_single_shard_split_equals_full(self, workload):
        data, queries = workload
        full = ShardedDBLSH(shards=1, budget="full", **COMMON).fit(data)
        split = ShardedDBLSH(shards=1, budget="split", **COMMON).fit(data)
        batch_f = full.query_batch(queries, k=10)
        batch_s = split.query_batch(queries, k=10)
        assert [r.ids for r in batch_f] == [r.ids for r in batch_s]

    def test_invalid_budget(self):
        with pytest.raises(ValueError, match="budget"):
            ShardedDBLSH(shards=2, budget="half")


class TestStructure:
    def test_partition_covers_dataset(self, workload):
        data, _ = workload
        sharded = ShardedDBLSH(shards=4, **COMMON).fit(data)
        sizes = [shard.num_points for shard in sharded.shard_indexes]
        assert sum(sizes) == data.shape[0] == sharded.num_points
        assert sharded.shard_offsets == [0] + list(np.cumsum(sizes)[:-1])
        np.testing.assert_array_equal(sharded.data, data)

    def test_global_ids_map_back_to_dataset_rows(self, workload):
        data, _ = workload
        sharded = ShardedDBLSH(shards=4, **COMMON).fit(data)
        result = sharded.query(data[1234], k=1)
        assert result.neighbors[0].id == 1234
        assert result.neighbors[0].distance == pytest.approx(0.0)

    def test_merged_stats_aggregate_work(self, workload):
        data, queries = workload
        sharded = ShardedDBLSH(shards=4, **COMMON).fit(data)
        stats = sharded.query(queries[0], k=10).stats
        assert stats.candidates_verified > 0
        assert stats.window_queries >= 4  # at least one window per shard
        assert stats.hash_evaluations == sharded.num_hash_functions
        assert stats.terminated_by

    def test_add_appends_to_last_shard(self, workload):
        data, _ = workload
        sharded = ShardedDBLSH(shards=3, **COMMON).fit(data)
        isolated = data.mean(axis=0) + 500.0
        sharded.add(isolated[None, :])
        assert sharded.num_points == data.shape[0] + 1
        result = sharded.query(isolated, k=1)
        assert result.neighbors[0].id == data.shape[0]

    def test_shards_share_projection_tensor(self, workload):
        data, _ = workload
        sharded = ShardedDBLSH(shards=3, **COMMON).fit(data)
        tensors = [shard._hasher.tensor for shard in sharded.shard_indexes]
        for tensor in tensors[1:]:
            np.testing.assert_array_equal(tensor, tensors[0])


class TestValidation:
    def test_invalid_shards(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedDBLSH(shards=0)

    def test_shards_exceeding_points(self):
        with pytest.raises(ValueError, match="exceeds"):
            ShardedDBLSH(shards=10, l_spaces=2, k_per_space=4).fit(
                np.eye(4, dtype=np.float64)
            )

    def test_invalid_shared_knobs_rejected_eagerly(self):
        with pytest.raises(ValueError, match="approximation ratio"):
            ShardedDBLSH(shards=2, c=0.5)
        with pytest.raises(ValueError, match="build_workers"):
            ShardedDBLSH(shards=2, build_workers=0)

    def test_query_requires_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            ShardedDBLSH(shards=2).query(np.zeros(3), k=1)
