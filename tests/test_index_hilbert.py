"""Tests for the Hilbert curve encoding (LSB-Forest curve alternative)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.hilbert import hilbert_decode, hilbert_encode, hilbert_encode_many


class TestRoundtrip:
    @pytest.mark.parametrize("m,bits", [(1, 4), (2, 3), (3, 2), (4, 2)])
    def test_exhaustive_roundtrip(self, m, bits):
        for coords in itertools.product(range(1 << bits), repeat=m):
            index = hilbert_encode(np.array(coords), bits)
            back = hilbert_decode(index, m, bits)
            assert tuple(back.tolist()) == coords

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=2, max_size=5)
    )
    @settings(max_examples=50)
    def test_random_roundtrip(self, coords):
        index = hilbert_encode(np.array(coords), 8)
        back = hilbert_decode(index, len(coords), 8)
        assert back.tolist() == coords


class TestCurveProperties:
    @pytest.mark.parametrize("m,bits", [(2, 4), (3, 3)])
    def test_unit_step_property(self, m, bits):
        """Consecutive Hilbert indices are unit grid steps — the locality
        property Z-order lacks (its diagonal jumps)."""
        prev = hilbert_decode(0, m, bits)
        for index in range(1, 1 << (m * bits)):
            cur = hilbert_decode(index, m, bits)
            assert int(np.abs(cur - prev).sum()) == 1
            prev = cur

    def test_bijective_over_full_range(self):
        m, bits = 2, 4
        seen = {
            tuple(hilbert_decode(i, m, bits).tolist())
            for i in range(1 << (m * bits))
        }
        assert len(seen) == 1 << (m * bits)

    def test_single_dim_is_identity(self):
        for value in [0, 1, 7, 15]:
            assert hilbert_encode(np.array([value]), 4) == value


class TestValidation:
    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            hilbert_encode(np.array([-1, 0]), 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError, match="capacity"):
            hilbert_encode(np.array([16, 0]), 4)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError, match="bits_per_dim"):
            hilbert_encode(np.array([0]), 0)

    def test_decode_range_check(self):
        with pytest.raises(ValueError, match="out of range"):
            hilbert_decode(1 << 8, 2, 4)
        with pytest.raises(ValueError, match="out of range"):
            hilbert_decode(-1, 2, 4)

    def test_encode_many(self):
        points = np.array([[0, 0], [1, 1], [3, 3]])
        encoded = hilbert_encode_many(points, 2)
        assert len(encoded) == 3
        assert len(set(encoded)) == 3


class TestLSBForestIntegration:
    def test_hilbert_curve_backend(self):
        from repro.baselines import LSBForest
        from repro.data.generators import gaussian_mixture

        data = gaussian_mixture(300, 16, n_clusters=6, seed=0)
        method = LSBForest(
            l_trees=3, m=4, bits_per_dim=6, candidate_factor=30, curve="hilbert",
            seed=0,
        ).fit(data)
        result = method.query(data[5], k=1)
        assert result.neighbors[0].id == 5

    def test_invalid_curve_rejected(self):
        from repro.baselines import LSBForest

        with pytest.raises(ValueError, match="curve"):
            LSBForest(curve="peano")
