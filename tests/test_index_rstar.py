"""Tests for the R*-tree: construction paths, window queries, invariants.

The central property: a window query must return *exactly* the ids a
brute-force scan returns, for both bulk-loaded and insertion-built trees,
across random windows — this is what DB-LSH's correctness rides on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.rstar import RStarTree


def brute_window(points: np.ndarray, w_low: np.ndarray, w_high: np.ndarray) -> set:
    mask = np.all(points >= w_low, axis=1) & np.all(points <= w_high, axis=1)
    return set(np.flatnonzero(mask).tolist())


@pytest.fixture
def random_points(rng) -> np.ndarray:
    return rng.uniform(-10, 10, size=(400, 3))


class TestConstruction:
    def test_invalid_args(self):
        with pytest.raises(ValueError, match="dim"):
            RStarTree(0)
        with pytest.raises(ValueError, match="max_entries"):
            RStarTree(2, max_entries=3)

    def test_empty_tree(self):
        tree = RStarTree(2)
        assert len(tree) == 0
        assert tree.window_query(np.array([-1, -1]), np.array([1, 1])).size == 0

    def test_bulk_load_counts(self, random_points):
        tree = RStarTree.bulk_load(random_points, max_entries=16)
        assert len(tree) == 400
        assert sorted(tree.all_ids().tolist()) == list(range(400))
        tree.check_invariants()

    def test_bulk_load_custom_ids(self, rng):
        points = rng.uniform(0, 1, size=(10, 2))
        ids = np.arange(100, 110)
        tree = RStarTree.bulk_load(points, ids=ids)
        assert sorted(tree.all_ids().tolist()) == list(range(100, 110))

    def test_bulk_load_id_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="ids length"):
            RStarTree.bulk_load(rng.uniform(0, 1, (5, 2)), ids=np.arange(4))

    def test_bulk_load_empty(self):
        tree = RStarTree.bulk_load(np.zeros((0, 2)))
        assert len(tree) == 0

    def test_insert_counts_and_invariants(self, rng):
        points = rng.uniform(-5, 5, size=(300, 2))
        tree = RStarTree(2, max_entries=8)
        for i, p in enumerate(points):
            tree.insert(i, p)
        assert len(tree) == 300
        assert sorted(tree.all_ids().tolist()) == list(range(300))
        tree.check_invariants()

    def test_insert_wrong_dim(self):
        tree = RStarTree(3)
        with pytest.raises(ValueError, match="dimension"):
            tree.insert(0, np.zeros(2))

    def test_duplicate_points_supported(self):
        tree = RStarTree(2, max_entries=4)
        for i in range(50):
            tree.insert(i, np.array([1.0, 1.0]))
        found = tree.window_query(np.array([0.9, 0.9]), np.array([1.1, 1.1]))
        assert sorted(found.tolist()) == list(range(50))
        tree.check_invariants()

    def test_height_grows(self, rng):
        small = RStarTree.bulk_load(rng.uniform(0, 1, (10, 2)), max_entries=16)
        large = RStarTree.bulk_load(rng.uniform(0, 1, (2000, 2)), max_entries=16)
        assert large.height > small.height
        assert large.num_nodes() > small.num_nodes()


class TestWindowQueries:
    def test_matches_brute_force_bulk(self, random_points):
        tree = RStarTree.bulk_load(random_points, max_entries=16)
        rng = np.random.default_rng(0)
        for _ in range(25):
            center = rng.uniform(-10, 10, size=3)
            half = rng.uniform(0.5, 6.0, size=3)
            w_low, w_high = center - half, center + half
            got = set(tree.window_query(w_low, w_high).tolist())
            assert got == brute_window(random_points, w_low, w_high)

    def test_matches_brute_force_inserted(self, rng):
        points = rng.uniform(-10, 10, size=(250, 2))
        tree = RStarTree(2, max_entries=8)
        for i, p in enumerate(points):
            tree.insert(i, p)
        for _ in range(25):
            center = rng.uniform(-10, 10, size=2)
            half = rng.uniform(0.5, 8.0, size=2)
            w_low, w_high = center - half, center + half
            got = set(tree.window_query(w_low, w_high).tolist())
            assert got == brute_window(points, w_low, w_high)

    def test_window_covering_everything(self, random_points):
        tree = RStarTree.bulk_load(random_points)
        got = tree.window_query(np.full(3, -100.0), np.full(3, 100.0))
        assert sorted(got.tolist()) == list(range(400))

    def test_empty_window(self, random_points):
        tree = RStarTree.bulk_load(random_points)
        got = tree.window_query(np.full(3, 50.0), np.full(3, 60.0))
        assert got.size == 0

    def test_window_count(self, random_points):
        tree = RStarTree.bulk_load(random_points)
        w_low, w_high = np.full(3, -2.0), np.full(3, 2.0)
        assert tree.window_count(w_low, w_high) == len(
            brute_window(random_points, w_low, w_high)
        )

    def test_iter_is_lazy(self, random_points):
        tree = RStarTree.bulk_load(random_points, max_entries=16)
        tree.stats.reset_query_counters()
        iterator = tree.window_query_iter(np.full(3, -100.0), np.full(3, 100.0))
        next(iterator)
        partial_visits = tree.stats.node_visits
        list(iterator)  # drain
        assert partial_visits < tree.stats.node_visits

    def test_dimension_mismatch(self, random_points):
        tree = RStarTree.bulk_load(random_points)
        with pytest.raises(ValueError, match="dimensionality"):
            tree.window_query(np.zeros(2), np.zeros(2))

    def test_boundary_inclusive(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        tree = RStarTree.bulk_load(points)
        got = tree.window_query(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert sorted(got.tolist()) == [0, 1]


class TestMixedConstruction:
    def test_insert_after_bulk_load(self, rng):
        """DB-LSH's add() path: a bulk-loaded tree keeps answering exactly
        after incremental insertions."""
        base = rng.uniform(-10, 10, size=(300, 3))
        extra = rng.uniform(-10, 10, size=(80, 3))
        tree = RStarTree.bulk_load(base, max_entries=8)
        for offset, point in enumerate(extra):
            tree.insert(300 + offset, point)
        tree.check_invariants()
        assert len(tree) == 380
        combined = np.vstack([base, extra])
        for _ in range(15):
            center = rng.uniform(-10, 10, size=3)
            half = rng.uniform(0.5, 6.0, size=3)
            got = set(tree.window_query(center - half, center + half).tolist())
            assert got == brute_window(combined, center - half, center + half)

    def test_bulk_and_insert_answer_identically(self, rng):
        points = rng.uniform(-5, 5, size=(150, 2))
        bulk = RStarTree.bulk_load(points, max_entries=8)
        inserted = RStarTree(2, max_entries=8)
        for i, p in enumerate(points):
            inserted.insert(i, p)
        for _ in range(10):
            center = rng.uniform(-5, 5, size=2)
            half = rng.uniform(0.5, 4.0, size=2)
            a = set(bulk.window_query(center - half, center + half).tolist())
            b = set(inserted.window_query(center - half, center + half).tolist())
            assert a == b


class TestStats:
    def test_build_counters_track_splits(self, rng):
        tree = RStarTree(2, max_entries=8)
        for i, p in enumerate(rng.uniform(0, 1, size=(200, 2))):
            tree.insert(i, p)
        assert tree.stats.splits > 0
        assert tree.stats.reinserts > 0

    def test_query_counters(self, random_points):
        tree = RStarTree.bulk_load(random_points)
        tree.stats.reset_query_counters()
        tree.window_query(np.full(3, -1.0), np.full(3, 1.0))
        assert tree.stats.node_visits > 0


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
            min_size=1,
            max_size=120,
        ),
        st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
        st.tuples(st.floats(0.1, 30), st.floats(0.1, 30)),
    )
    @settings(max_examples=40)
    def test_bulk_window_equals_brute(self, raw_points, center, half):
        points = np.array(raw_points, dtype=np.float64)
        tree = RStarTree.bulk_load(points, max_entries=8)
        w_low = np.array(center) - np.array(half)
        w_high = np.array(center) + np.array(half)
        got = set(tree.window_query(w_low, w_high).tolist())
        assert got == brute_window(points, w_low, w_high)

    @given(
        st.lists(
            st.tuples(st.floats(-20, 20), st.floats(-20, 20)),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=25)
    def test_insert_preserves_invariants(self, raw_points):
        points = np.array(raw_points, dtype=np.float64)
        tree = RStarTree(2, max_entries=4)
        for i, p in enumerate(points):
            tree.insert(i, p)
        tree.check_invariants()
        assert sorted(tree.all_ids().tolist()) == list(range(len(points)))
