"""Tests for MBR geometry used by the R*-tree heuristics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.mbr import MBR, stack_bounds, windows_intersect_mask

boxes_2d = st.tuples(
    st.floats(min_value=-100, max_value=100),
    st.floats(min_value=-100, max_value=100),
    st.floats(min_value=0, max_value=50),
    st.floats(min_value=0, max_value=50),
).map(lambda t: MBR(np.array([t[0], t[1]]), np.array([t[0] + t[2], t[1] + t[3]])))


class TestConstruction:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="low bound exceeds"):
            MBR(np.array([1.0]), np.array([0.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            MBR(np.zeros(2), np.zeros(3))

    def test_of_points(self):
        points = np.array([[0.0, 5.0], [2.0, 1.0], [1.0, 3.0]])
        box = MBR.of_points(points)
        np.testing.assert_array_equal(box.low, [0.0, 1.0])
        np.testing.assert_array_equal(box.high, [2.0, 5.0])

    def test_of_points_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            MBR.of_points(np.zeros((0, 2)))

    def test_union_of(self):
        a = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBR(np.array([2.0, -1.0]), np.array([3.0, 0.5]))
        u = MBR.union_of([a, b])
        np.testing.assert_array_equal(u.low, [0.0, -1.0])
        np.testing.assert_array_equal(u.high, [3.0, 1.0])

    def test_union_of_rejects_empty(self):
        with pytest.raises(ValueError):
            MBR.union_of([])


class TestGeometry:
    def test_area_and_margin(self):
        box = MBR(np.array([0.0, 0.0]), np.array([2.0, 3.0]))
        assert box.area() == pytest.approx(6.0)
        assert box.margin() == pytest.approx(5.0)

    def test_degenerate_box(self):
        box = MBR(np.array([1.0, 1.0]), np.array([1.0, 1.0]))
        assert box.area() == 0.0
        assert box.contains_point(np.array([1.0, 1.0]))

    def test_overlap_disjoint_is_zero(self):
        a = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBR(np.array([2.0, 2.0]), np.array([3.0, 3.0]))
        assert a.overlap(b) == 0.0

    def test_overlap_partial(self):
        a = MBR(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        b = MBR(np.array([1.0, 1.0]), np.array([3.0, 3.0]))
        assert a.overlap(b) == pytest.approx(1.0)

    def test_enlargement(self):
        a = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBR(np.array([2.0, 0.0]), np.array([3.0, 1.0]))
        # Union is [0,3]x[0,1], area 3; original area 1.
        assert a.enlargement(b) == pytest.approx(2.0)

    def test_min_distance2(self):
        box = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert box.min_distance2(np.array([0.5, 0.5])) == 0.0
        assert box.min_distance2(np.array([2.0, 0.5])) == pytest.approx(1.0)
        assert box.min_distance2(np.array([2.0, 2.0])) == pytest.approx(2.0)

    def test_window_predicates(self):
        box = MBR(np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        assert box.intersects_window(np.array([0.0, 0.0]), np.array([1.5, 1.5]))
        assert not box.intersects_window(np.array([3.0, 3.0]), np.array([4.0, 4.0]))
        assert box.contained_in_window(np.array([0.0, 0.0]), np.array([3.0, 3.0]))
        assert not box.contained_in_window(np.array([1.5, 0.0]), np.array([3.0, 3.0]))


class TestProperties:
    @given(boxes_2d, boxes_2d)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert np.all(u.low <= a.low) and np.all(u.high >= a.high)
        assert np.all(u.low <= b.low) and np.all(u.high >= b.high)

    @given(boxes_2d, boxes_2d)
    def test_overlap_symmetric(self, a, b):
        assert a.overlap(b) == pytest.approx(b.overlap(a))

    @given(boxes_2d, boxes_2d)
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-9

    @given(boxes_2d)
    def test_self_overlap_is_area(self, a):
        assert a.overlap(a) == pytest.approx(a.area())

    @given(st.lists(boxes_2d, min_size=1, max_size=8))
    def test_stacked_mask_matches_scalar(self, boxes):
        w_low = np.array([-10.0, -10.0])
        w_high = np.array([10.0, 10.0])
        lows, highs = stack_bounds(boxes)
        mask = windows_intersect_mask(lows, highs, w_low, w_high)
        expected = [b.intersects_window(w_low, w_high) for b in boxes]
        np.testing.assert_array_equal(mask, expected)
