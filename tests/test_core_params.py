"""Tests for parameter derivation (Lemma 1, Remark 2, §VI-A defaults)."""

from __future__ import annotations

import math

import pytest

from repro.core.params import (
    default_w0,
    derive_parameters,
    paper_default_parameters,
)
from repro.hashing.probability import collision_probability_dynamic


class TestDefaultW0:
    def test_is_four_c_squared(self):
        assert default_w0(1.5) == pytest.approx(9.0)
        assert default_w0(2.0) == pytest.approx(16.0)

    def test_lsb_equivalence_remark(self):
        # §V-B: with c = 2 the default width matches LSB's bucket size 16.
        assert default_w0(2.0) == pytest.approx(16.0)


class TestDeriveParameters:
    def test_theory_formulas(self):
        n, c, t = 100_000, 1.5, 16
        params = derive_parameters(n, c=c, t=t)
        p2 = float(collision_probability_dynamic(c, params.w0))
        expected_k = math.ceil(math.log(n / t) / math.log(1.0 / p2))
        assert params.k_per_space == expected_k
        expected_l = math.ceil((n / t) ** params.rho_star)
        assert params.l_spaces == expected_l

    def test_probabilities_ordered(self):
        params = derive_parameters(10_000)
        assert 0.0 < params.p2 < params.p1 < 1.0
        assert 0.0 < params.rho_star < 1.0

    def test_overrides_respected(self):
        params = derive_parameters(10_000, k_per_space=7, l_spaces=3)
        assert params.k_per_space == 7
        assert params.l_spaces == 3

    def test_candidate_budget(self):
        params = derive_parameters(10_000, t=16, l_spaces=5, k_per_space=10)
        assert params.candidate_budget_base == 2 * 16 * 5
        assert params.budget(50) == 2 * 16 * 5 + 50

    def test_budget_rejects_bad_k(self):
        params = derive_parameters(1_000)
        with pytest.raises(ValueError, match="k must be >= 1"):
            params.budget(0)

    def test_larger_t_means_smaller_index(self):
        small_t = derive_parameters(100_000, t=1)
        large_t = derive_parameters(100_000, t=64)
        assert large_t.k_per_space <= small_t.k_per_space
        assert large_t.l_spaces <= small_t.l_spaces

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(n=0), "n must be >= 1"),
            (dict(n=10, c=1.0), "c must be > 1"),
            (dict(n=10, t=0), "t must be >= 1"),
            (dict(n=10, w0=-1.0), "w0"),
            (dict(n=10, k_per_space=0), "k_per_space"),
            (dict(n=10, l_spaces=0), "l_spaces"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            derive_parameters(**kwargs)

    def test_frozen(self):
        params = derive_parameters(1_000)
        with pytest.raises(AttributeError):
            params.c = 2.0  # type: ignore[misc]


class TestPaperDefaults:
    def test_small_dataset_k10(self):
        params = paper_default_parameters(60_000)
        assert params.k_per_space == 10
        assert params.l_spaces == 5
        assert params.w0 == pytest.approx(9.0)

    def test_large_dataset_k12(self):
        params = paper_default_parameters(10_000_000)
        assert params.k_per_space == 12
        assert params.l_spaces == 5

    def test_boundary_at_one_million(self):
        assert paper_default_parameters(1_000_000).k_per_space == 10
        assert paper_default_parameters(1_000_001).k_per_space == 12
