"""Tests for the synthetic data generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import (
    gaussian_mixture,
    low_intrinsic_dim,
    planted_neighbors,
    scaled_heavy_tailed,
    uniform_hypercube,
)


class TestGaussianMixture:
    def test_shape_and_determinism(self):
        a = gaussian_mixture(100, 16, seed=0)
        b = gaussian_mixture(100, 16, seed=0)
        assert a.shape == (100, 16)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = gaussian_mixture(50, 8, seed=0)
        b = gaussian_mixture(50, 8, seed=1)
        assert not np.allclose(a, b)

    def test_clusteredness(self):
        # High center spread vs small std: sampled NN distance must be far
        # below the typical inter-point distance.
        data = gaussian_mixture(
            500, 16, n_clusters=5, cluster_std=0.5, center_spread=50.0, seed=2
        )
        from repro.utils.scale import estimate_nn_distance

        nn = estimate_nn_distance(data)
        mean_pair = np.linalg.norm(data[:100] - data[100:200], axis=1).mean()
        assert nn < mean_pair / 5

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_mixture(0, 4)
        with pytest.raises(ValueError):
            gaussian_mixture(4, 0)
        with pytest.raises(ValueError, match="n_clusters"):
            gaussian_mixture(4, 4, n_clusters=0)


class TestUniformHypercube:
    def test_range(self):
        data = uniform_hypercube(200, 4, low=-2.0, high=3.0, seed=0)
        assert data.min() >= -2.0
        assert data.max() <= 3.0

    def test_invalid_range(self):
        with pytest.raises(ValueError, match="high must exceed low"):
            uniform_hypercube(10, 2, low=1.0, high=1.0)


class TestLowIntrinsicDim:
    def test_shape(self):
        data = low_intrinsic_dim(100, 64, intrinsic_dim=4, seed=0)
        assert data.shape == (100, 64)

    def test_effective_rank_is_low(self):
        data = low_intrinsic_dim(300, 64, intrinsic_dim=4, noise=0.0, seed=1)
        singular_values = np.linalg.svd(data - data.mean(axis=0), compute_uv=False)
        # With zero noise, only ~intrinsic_dim singular values are non-zero.
        assert singular_values[4] < 1e-8 * singular_values[0]

    def test_noise_raises_rank(self):
        data = low_intrinsic_dim(300, 64, intrinsic_dim=4, noise=0.5, seed=1)
        singular_values = np.linalg.svd(data - data.mean(axis=0), compute_uv=False)
        assert singular_values[4] > 1e-3 * singular_values[0]

    def test_validation(self):
        with pytest.raises(ValueError, match="intrinsic_dim"):
            low_intrinsic_dim(10, 4, intrinsic_dim=5)


class TestScaledHeavyTailed:
    def test_shape_and_determinism(self):
        a = scaled_heavy_tailed(100, 8, seed=3)
        b = scaled_heavy_tailed(100, 8, seed=3)
        assert a.shape == (100, 8)
        np.testing.assert_array_equal(a, b)

    def test_norms_are_skewed(self):
        data = scaled_heavy_tailed(2000, 8, tail=1.5, seed=4)
        norms = np.linalg.norm(data, axis=1)
        assert norms.max() / np.median(norms) > 5.0


class TestPlantedNeighbors:
    def test_planted_geometry(self):
        data, queries = planted_neighbors(
            200, 16, n_queries=5, planted_distance=1.0, background_distance=20.0, seed=0
        )
        assert data.shape == (205, 16)
        assert queries.shape == (5, 16)
        for i, q in enumerate(queries):
            assert np.linalg.norm(data[i] - q) == pytest.approx(1.0)

    def test_background_is_far(self):
        data, queries = planted_neighbors(
            200, 16, n_queries=5, planted_distance=1.0, background_distance=20.0, seed=0
        )
        background = data[5:]
        for q in queries:
            dists = np.linalg.norm(background - q, axis=1)
            assert dists.min() > 5.0  # well beyond the planted distance

    def test_planted_is_exact_nn(self):
        data, queries = planted_neighbors(
            300, 8, n_queries=6, planted_distance=0.5, background_distance=30.0, seed=1
        )
        for i, q in enumerate(queries):
            nn = int(np.argmin(np.linalg.norm(data - q, axis=1)))
            assert nn == i

    def test_validation(self):
        with pytest.raises(ValueError, match="planted_distance"):
            planted_neighbors(10, 4, 1, planted_distance=2.0, background_distance=1.0)
        with pytest.raises(ValueError, match="n_queries"):
            planted_neighbors(10, 4, 0)
