"""Shared-memory regression tests for arena-snapshot serving.

The whole point of the v3 arena container is that worker processes
*share* the snapshot's physical pages instead of each holding a private
copy.  RSS cannot see that — every worker's mapping is resident — so
these tests read PSS (proportional set size) from ``/proc/*/smaps``:
with N processes mapping the same resident pages, each one's PSS charge
for the mapping is ~1/N of its RSS, so summed PSS stays far below
summed RSS.  Everything here is gated on Linux + smaps availability
(the :mod:`repro.utils.meminfo` probes report ``available=False``
elsewhere and the tests skip).

The replica scenario uses N *single-worker servers on one unsharded
arena* on purpose: a sharded pool's workers map disjoint byte ranges of
the file and have nothing to share — whole-file replicas are the fleet
deployment the arena exists for.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro import DBLSH
from repro.data.generators import gaussian_mixture
from repro.io import save_index
from repro.serve import SnapshotServer
from repro.utils.meminfo import mapping_memory, process_memory

pytestmark = pytest.mark.skipif(
    sys.platform != "linux", reason="PSS accounting needs /proc smaps"
)

N_SERVERS = 4


@pytest.fixture(scope="module")
def arena_snapshot(tmp_path_factory):
    # Big enough that the data pages dominate any per-mapping overhead:
    # ~4 MB of coordinates plus the frozen traversals.
    data = gaussian_mixture(10_000, 48, n_clusters=8, seed=0)
    index = DBLSH(l_spaces=3, k_per_space=6, t=24, seed=0,
                  auto_initial_radius=True).fit(data)
    path = str(tmp_path_factory.mktemp("arena") / "snapshot.npz")
    save_index(index, path, format="arena")
    queries = data[:5] + 0.01
    return path, queries


def _smaps_available() -> bool:
    return process_memory()["available"]


class TestSharedPhysicalPages:
    def test_replica_workers_share_the_snapshot_pages(self, arena_snapshot):
        if not _smaps_available():
            pytest.skip("smaps_rollup not readable on this kernel")
        path, queries = arena_snapshot
        servers = [SnapshotServer(path) for _ in range(N_SERVERS)]
        try:
            for server in servers:
                server.start()
                # Fault the probed pages in: identical queries touch
                # identical pages in every worker.
                server.query_batch(queries, k=10)
            statuses = [server.memory_status() for server in servers]
        finally:
            for server in servers:
                server.close()

        assert all(status["available"] for status in statuses)
        for status in statuses:
            assert all(worker["mapped"] for worker in status["workers"])
        total_rss = sum(s["total_snapshot_rss_kb"] for s in statuses)
        total_pss = sum(s["total_snapshot_pss_kb"] for s in statuses)
        assert total_rss > 0, "no worker has snapshot pages resident"
        # 4 private copies would give PSS == RSS; full sharing gives
        # PSS == RSS / 4.  Demand well below the private-copy line.
        assert total_pss <= 0.6 * total_rss, (
            f"snapshot pages are not shared: summed PSS {total_pss} kB vs "
            f"summed RSS {total_rss} kB across {N_SERVERS} replicas"
        )

    def test_mapping_memory_isolates_the_snapshot_file(self, arena_snapshot):
        path, queries = arena_snapshot
        with SnapshotServer(path) as server:
            server.query_batch(queries, k=10)
            pid = server.worker_pids[0]
            snap = mapping_memory(path, pid)
            proc = process_memory(pid)
        if not snap["available"]:
            pytest.skip("smaps not readable on this kernel")
        assert snap["mappings"] >= 1
        # The mapping view must be a strict subset of the process view.
        assert 0 < snap["rss_kb"] <= proc["rss_kb"]

    def test_mapping_memory_unknown_path_counts_nothing(self, tmp_path):
        probe = mapping_memory(str(tmp_path / "never-mapped"), None)
        if not probe["available"]:
            pytest.skip("smaps not readable on this kernel")
        assert probe["mappings"] == 0
        assert probe["rss_kb"] == 0


class TestMemoryStatus:
    def test_memory_status_shape_and_mapped_flags(self, arena_snapshot):
        path, queries = arena_snapshot
        with SnapshotServer(path) as server:
            server.query_batch(queries, k=5)
            status = server.memory_status()
        assert status["snapshot_path"] == path
        assert len(status["workers"]) == 1
        worker = status["workers"][0]
        assert worker["mapped"] is True
        assert set(worker) >= {
            "shard", "pid", "rss_kb", "pss_kb",
            "snapshot_rss_kb", "snapshot_pss_kb", "snapshot_mappings",
        }
        assert status["total_rss_kb"] == worker["rss_kb"]

    def test_memory_status_before_start_is_empty(self, arena_snapshot):
        path, _ = arena_snapshot
        server = SnapshotServer(path)
        status = server.memory_status()
        assert status["workers"] == []
        assert status["total_snapshot_pss_kb"] == 0

    def test_npz_workers_report_unmapped(self, arena_snapshot, tmp_path):
        path, queries = arena_snapshot
        from repro.io import load_index

        npz_path = str(tmp_path / "legacy.npz")
        save_index(load_index(path), npz_path, format="npz")
        with SnapshotServer(npz_path) as server:
            status = server.memory_status()
            answers_npz = server.query_batch(queries, k=5)
        with SnapshotServer(path) as server:
            answers_arena = server.query_batch(queries, k=5)
        assert all(not w["mapped"] for w in status["workers"])
        assert [
            [(n.id, n.distance) for n in r.neighbors] for r in answers_npz
        ] == [
            [(n.id, n.distance) for n in r.neighbors] for r in answers_arena
        ]


def test_drop_page_cache_best_effort(arena_snapshot):
    from repro.utils.meminfo import drop_page_cache

    path, _ = arena_snapshot
    # Must never raise; on Linux with fadvise it reports delivery.
    result = drop_page_cache(path)
    assert result in (True, False)
    assert drop_page_cache(path + ".does-not-exist") is False
