"""Tests for the v3 arena snapshot container (repro.io.snapshot).

Three layers of guarantees, mirroring what PR 6 pinned for the npz
container:

* **Round-trip properties** (hypothesis): arbitrary member dicts —
  random names, dtypes, shapes, including empty arrays — survive
  ``_write_arena`` → ``_ArenaArchive`` byte-identically, every member
  lands on a 64-byte-aligned file offset, and the loaded views are
  *genuinely* zero-copy: the base chain bottoms out in an ``np.memmap``,
  ``writeable`` is False, and in-place writes raise.  The same holds
  end-to-end through ``DBLSH``/``ShardedDBLSH`` save → load.
* **Corruption matrix**: truncation at every member boundary and
  single-bit flips in the preamble, header, and every member's data
  region must raise :class:`SnapshotError` naming the damaged part —
  with expected-vs-recovered sizes for truncation, at open time for
  structural damage and via :func:`verify_snapshot` for data-page
  damage (the open path deliberately never faults data pages).
* **v2 → v3 migration parity**: one fitted index saved in both
  containers answers bit-identically from either, sharded included.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DBLSH, ShardedDBLSH
from repro.data.generators import gaussian_mixture
from repro.io import (
    ARENA_VERSION,
    SNAPSHOT_VERSION,
    SnapshotError,
    load_index,
    read_header,
    save_index,
    verify_snapshot,
)
from repro.io.snapshot import (
    ARENA_ALIGN,
    ARENA_MAGIC,
    SNAPSHOT_FORMAT,
    _ARENA_PREAMBLE_LEN,
    _ArenaArchive,
    _write_arena,
)


def _is_memmap_backed(array: np.ndarray) -> bool:
    base = array
    while isinstance(base, np.ndarray):
        if isinstance(base, np.memmap):
            return True
        base = base.base
    return False


def _minimal_header() -> dict:
    return {"format": SNAPSHOT_FORMAT, "version": ARENA_VERSION}


# ----------------------------------------------------------------------
# Property tests: the raw arena writer/reader pair
# ----------------------------------------------------------------------

_DTYPES = [np.float64, np.float32, np.int64, np.int32, np.uint8, np.bool_]

_member_strategy = st.dictionaries(
    keys=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789._",
        min_size=1,
        max_size=20,
    ),
    values=st.tuples(
        st.sampled_from(range(len(_DTYPES))),
        st.lists(st.integers(min_value=0, max_value=7), min_size=0,
                 max_size=3),
    ),
    min_size=1,
    max_size=8,
)


class TestArenaRoundtripProperties:
    @given(spec=_member_strategy, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_members_roundtrip_byte_identical_aligned_zero_copy(
        self, spec, seed, tmp_path
    ):
        rng = np.random.default_rng(seed)
        arrays = {}
        for name, (dtype_i, shape) in spec.items():
            dtype = _DTYPES[dtype_i]
            values = rng.integers(0, 2, size=tuple(shape)) if dtype == np.bool_ \
                else rng.integers(-100, 100, size=tuple(shape))
            arrays[name] = values.astype(dtype)
        path = str(tmp_path / f"arena-{seed}.npz")
        _write_arena(path, _minimal_header(), arrays)

        with _ArenaArchive(path) as archive:
            assert set(archive.files) == set(arrays)
            for name, original in arrays.items():
                loaded = archive[name]
                # Byte-identical: same dtype, shape, and contents.
                assert loaded.dtype == original.dtype
                assert loaded.shape == original.shape
                assert np.array_equal(loaded, original)
                # 64-byte alignment of the absolute file offset.
                meta = archive.header["members"][name]
                assert meta["offset"] % ARENA_ALIGN == 0
                # Genuinely zero-copy: memmap-backed, frozen, write raises.
                if original.nbytes:
                    assert _is_memmap_backed(loaded)
                    assert not loaded.flags.writeable
                    with pytest.raises(ValueError):
                        loaded[(0,) * loaded.ndim] = 1

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20)
    def test_views_survive_archive_close(self, seed, tmp_path):
        rng = np.random.default_rng(seed)
        arrays = {"x": rng.standard_normal((17, 3))}
        path = str(tmp_path / f"close-{seed}.npz")
        _write_arena(path, _minimal_header(), arrays)
        archive = _ArenaArchive(path)
        view = archive["x"]
        archive.close()
        # The view holds the mapping through its base chain.
        assert np.array_equal(view, arrays["x"])


class TestIndexRoundtripProperties:
    @given(
        n=st.integers(min_value=40, max_value=200),
        dim=st.integers(min_value=3, max_value=12),
        shards=st.integers(min_value=1, max_value=4),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=10)
    def test_save_load_answers_identical_and_mapped(
        self, n, dim, shards, seed, tmp_path
    ):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, dim))
        common = dict(l_spaces=2, k_per_space=4, t=8, seed=0,
                      auto_initial_radius=True)
        if shards == 1:
            index = DBLSH(**common).fit(data)
        else:
            index = ShardedDBLSH(shards=shards, **common).fit(data)
        queries = data[:3] + 0.01
        before = [
            [(m.id, m.distance) for m in r.neighbors]
            for r in index.query_batch(queries, k=5)
        ]
        path = str(tmp_path / f"idx-{seed}.npz")
        save_index(index, path)
        restored = load_index(path)
        after = [
            [(m.id, m.distance) for m in r.neighbors]
            for r in restored.query_batch(queries, k=5)
        ]
        assert after == before
        assert restored.is_mapped
        header = read_header(path)
        assert header["version"] == ARENA_VERSION
        for meta in header["members"].values():
            assert meta["offset"] % ARENA_ALIGN == 0


# ----------------------------------------------------------------------
# Zero-copy details at the index level
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fitted():
    data = gaussian_mixture(400, 10, n_clusters=4, seed=0)
    return DBLSH(l_spaces=3, k_per_space=6, t=16, seed=0,
                 auto_initial_radius=True).fit(data)


@pytest.fixture()
def arena_path(fitted, tmp_path):
    path = str(tmp_path / "arena.npz")
    save_index(fitted, path)
    return path


class TestZeroCopyLoads:
    def test_loaded_buffer_is_frozen_mapped_view(self, arena_path):
        index = load_index(arena_path)
        assert index.is_mapped
        assert _is_memmap_backed(index._buffer)
        assert not index._buffer.flags.writeable
        with pytest.raises(ValueError):
            index._buffer[0, 0] = 0.0

    def test_norms2_shipped_not_recomputed(self, fitted, arena_path):
        header = read_header(arena_path)
        assert header["index"]["has_norms2"]
        assert "norms2" in header["members"]
        index = load_index(arena_path)
        assert _is_memmap_backed(index._norms2)
        np.testing.assert_array_equal(
            index._norms2[: index._n], fitted._norms2[: fitted._n]
        )

    def test_flat_coords_adopted_without_mirror_copy(self, arena_path):
        index = load_index(arena_path)
        for flat in index._flat_tables:
            assert _is_memmap_backed(flat._coords_cat)
            assert not flat._coords_cat.flags.writeable

    def test_add_after_mapped_load_promotes_to_private(self, arena_path):
        index = load_index(arena_path)
        rng = np.random.default_rng(3)
        index.add(rng.standard_normal((5, index.dim)))
        assert not index.is_mapped
        assert index._buffer.flags.writeable
        assert index.num_points == 405

    def test_compress_forces_npz_container(self, fitted, tmp_path):
        path = str(tmp_path / "packed.npz")
        save_index(fitted, path, compress=True)
        assert read_header(path)["version"] == SNAPSHOT_VERSION
        assert not load_index(path).is_mapped


# ----------------------------------------------------------------------
# Corruption matrix
# ----------------------------------------------------------------------


def _absolute_ranges(path: str) -> dict:
    """name -> (absolute_start, nbytes) for every member, plus data_start."""
    archive = _ArenaArchive(path)
    data_start = archive._data_start
    return {
        name: (data_start + int(meta["offset"]), int(meta["nbytes"]))
        for name, meta in archive.header["members"].items()
    }


def _flip_bit(path: str, byte_offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(byte_offset)
        value = handle.read(1)[0]
        handle.seek(byte_offset)
        handle.write(bytes([value ^ 0x01]))


class TestCorruptionMatrix:
    def test_truncation_at_every_member_names_the_member(self, fitted,
                                                         tmp_path):
        ranges = _absolute_ranges(
            _fresh_arena(fitted, tmp_path, "ref")
        )
        for name, (start, nbytes) in ranges.items():
            if nbytes == 0:
                continue
            path = _fresh_arena(fitted, tmp_path, f"trunc-{name}")
            with open(path, "r+b") as handle:
                handle.truncate(start + nbytes // 2)
            with pytest.raises(
                SnapshotError,
                match=rf"{name!r}.*truncated or corrupt",
            ):
                load_index(path)
            with pytest.raises(SnapshotError, match=r"expected \d+ bytes"):
                load_index(path)

    def test_preamble_truncation_and_magic_flip(self, fitted, tmp_path):
        path = _fresh_arena(fitted, tmp_path, "preamble")
        with open(path, "r+b") as handle:
            handle.truncate(_ARENA_PREAMBLE_LEN - 4)
        with pytest.raises(SnapshotError, match="preamble is truncated"):
            load_index(path)
        path = _fresh_arena(fitted, tmp_path, "magic")
        _flip_bit(path, len(ARENA_MAGIC) // 2)
        # A damaged magic makes the file neither arena nor npz.
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_header_truncation_names_sizes(self, fitted, tmp_path):
        path = _fresh_arena(fitted, tmp_path, "header-trunc")
        ranges = _absolute_ranges(path)
        first_member_start = min(start for start, _ in ranges.values())
        with open(path, "r+b") as handle:
            handle.truncate(_ARENA_PREAMBLE_LEN + 10)
        with pytest.raises(SnapshotError,
                           match=r"header is truncated.*expected \d+"):
            load_index(path)
        assert first_member_start > _ARENA_PREAMBLE_LEN

    def test_header_bit_flip_fails_checksum(self, fitted, tmp_path):
        path = _fresh_arena(fitted, tmp_path, "header-flip")
        _flip_bit(path, _ARENA_PREAMBLE_LEN + 5)  # inside the JSON header
        with pytest.raises(SnapshotError, match="failed its checksum"):
            load_index(path)

    def test_version_field_flip_rejected(self, fitted, tmp_path):
        path = _fresh_arena(fitted, tmp_path, "version-flip")
        _flip_bit(path, len(ARENA_MAGIC))  # low byte of the version u32
        with pytest.raises(SnapshotError, match="version"):
            load_index(path)

    def test_bit_flip_in_every_member_caught_by_verify(self, fitted,
                                                       tmp_path):
        ref = _fresh_arena(fitted, tmp_path, "verify-ref")
        assert verify_snapshot(ref)["container"] == "arena"
        for name, (start, nbytes) in _absolute_ranges(ref).items():
            if nbytes == 0:
                continue
            path = _fresh_arena(fitted, tmp_path, f"flip-{name}")
            _flip_bit(path, start + nbytes // 2)
            # The open path never faults data pages, so the flip is only
            # seen by the explicit full-content verification pass.
            with pytest.raises(
                SnapshotError, match=rf"{name!r} failed its checksum"
            ):
                verify_snapshot(path)

    def test_verify_snapshot_summary_on_clean_file(self, arena_path):
        summary = verify_snapshot(arena_path)
        assert summary["container"] == "arena"
        assert summary["version"] == ARENA_VERSION
        assert summary["members"] == len(read_header(arena_path)["members"])
        assert summary["payload_bytes"] > 0


def _fresh_arena(index, tmp_path, tag: str) -> str:
    """A pristine arena file per corruption case."""
    path = str(tmp_path / f"{tag}.npz")
    save_index(index, path)
    return path


# ----------------------------------------------------------------------
# v2 -> v3 migration parity
# ----------------------------------------------------------------------


class TestMigrationParity:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_same_index_both_containers_answers_bit_identical(
        self, shards, tmp_path
    ):
        data = gaussian_mixture(300, 8, n_clusters=3, seed=5)
        common = dict(l_spaces=3, k_per_space=6, t=16, seed=0,
                      auto_initial_radius=True)
        index = (DBLSH(**common) if shards == 1
                 else ShardedDBLSH(shards=shards, **common)).fit(data)
        v3 = str(tmp_path / "v3.npz")
        v2 = str(tmp_path / "v2.npz")
        save_index(index, v3, format="arena")
        save_index(index, v2, format="npz")
        assert read_header(v3)["version"] == ARENA_VERSION
        assert read_header(v2)["version"] == SNAPSHOT_VERSION
        queries = data[:6] + 0.02
        from_v3 = load_index(v3)
        from_v2 = load_index(v2)
        answers_v3 = [
            [(m.id, m.distance) for m in r.neighbors]
            for r in from_v3.query_batch(queries, k=7)
        ]
        answers_v2 = [
            [(m.id, m.distance) for m in r.neighbors]
            for r in from_v2.query_batch(queries, k=7)
        ]
        assert answers_v3 == answers_v2
        assert from_v3.is_mapped and not from_v2.is_mapped

    def test_tombstones_survive_both_containers(self, tmp_path):
        data = gaussian_mixture(200, 6, n_clusters=2, seed=7)
        index = DBLSH(l_spaces=2, k_per_space=4, t=8, seed=0,
                      auto_initial_radius=True).fit(data)
        index.delete([0, 5, 11])
        for fmt in ("arena", "npz"):
            path = str(tmp_path / f"tomb-{fmt}.npz")
            save_index(index, path, format=fmt)
            restored = load_index(path)
            assert restored.num_tombstones == 3
            hits = restored.query(data[5], k=3)
            assert 5 not in hits.ids
