"""Run the doctest examples embedded in module/class docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.core.sharded
import repro.io.snapshot
import repro.serve.metrics
import repro.utils.timing


@pytest.mark.parametrize(
    "module",
    [repro, repro.core.sharded, repro.io.snapshot, repro.serve.metrics,
     repro.utils.timing],
)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted >= 1, f"{module.__name__} lost its doctest examples"
    assert result.failed == 0
