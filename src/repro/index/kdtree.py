"""A KD-tree over low-dimensional points.

Serves three roles in the reproduction:

* an alternative window-query backend for DB-LSH (the backend ablation —
  §IV-B notes any index answering window queries efficiently works);
* exact kNN in the projected space for PM-LSH;
* *incremental* nearest-neighbor enumeration (best-first with a priority
  queue) for SRS, which consumes projected neighbors one at a time.

The tree is built once over a static point set (median splits, bounded
leaf size) — all the LSH methods here index an immutable dataset.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Optional, Tuple

import numpy as np


class _KDNode:
    __slots__ = ("axis", "threshold", "left", "right", "ids", "low", "high")

    def __init__(self) -> None:
        self.axis: int = -1
        self.threshold: float = 0.0
        self.left: Optional["_KDNode"] = None
        self.right: Optional["_KDNode"] = None
        self.ids: Optional[np.ndarray] = None  # leaf payload
        self.low: np.ndarray = np.empty(0)
        self.high: np.ndarray = np.empty(0)

    @property
    def is_leaf(self) -> bool:
        return self.ids is not None


class KDTree:
    """Static KD-tree with window, kNN and incremental-NN queries."""

    def __init__(self, points: np.ndarray, leaf_size: int = 32) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            raise ValueError("KDTree requires at least one point")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.points = points
        self.dim = points.shape[1]
        self.leaf_size = int(leaf_size)
        self.node_visits = 0
        self.root = self._build(np.arange(points.shape[0], dtype=np.int64))

    def _build(self, ids: np.ndarray) -> _KDNode:
        node = _KDNode()
        coords = self.points[ids]
        node.low = coords.min(axis=0)
        node.high = coords.max(axis=0)
        if len(ids) <= self.leaf_size:
            node.ids = ids
            return node
        spreads = node.high - node.low
        axis = int(np.argmax(spreads))
        if spreads[axis] <= 0.0:
            # All points identical: keep as (possibly oversized) leaf.
            node.ids = ids
            return node
        values = coords[:, axis]
        median = float(np.median(values))
        left_mask = values <= median
        # Guard against degenerate splits when many points share the median.
        if left_mask.all() or not left_mask.any():
            order = np.argsort(values, kind="stable")
            half = len(ids) // 2
            left_mask = np.zeros(len(ids), dtype=bool)
            left_mask[order[:half]] = True
            median = float(values[order[half - 1]])
        node.axis = axis
        node.threshold = median
        node.left = self._build(ids[left_mask])
        node.right = self._build(ids[~left_mask])
        return node

    # ------------------------------------------------------------------
    # Window queries
    # ------------------------------------------------------------------

    def window_query(self, w_low: np.ndarray, w_high: np.ndarray) -> np.ndarray:
        """All point ids inside the inclusive window."""
        chunks = list(self.window_query_iter(w_low, w_high))
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def window_query_iter(self, w_low: np.ndarray, w_high: np.ndarray) -> Iterator[np.ndarray]:
        """Stream ids inside the window leaf-by-leaf (early-termination friendly)."""
        w_low = np.asarray(w_low, dtype=np.float64).reshape(-1)
        w_high = np.asarray(w_high, dtype=np.float64).reshape(-1)
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.node_visits += 1
            if np.any(node.low > w_high) or np.any(node.high < w_low):
                continue
            if node.is_leaf:
                coords = self.points[node.ids]
                mask = np.all(coords >= w_low, axis=1) & np.all(coords <= w_high, axis=1)
                if mask.any():
                    yield node.ids[mask]
            else:
                stack.append(node.left)  # type: ignore[arg-type]
                stack.append(node.right)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Nearest neighbors
    # ------------------------------------------------------------------

    def knn(self, query: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k nearest neighbors: returns (distances, ids) ascending."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        pairs = list(itertools.islice(self.nearest_iter(query), k))
        if not pairs:
            return np.empty(0), np.empty(0, dtype=np.int64)
        dists = np.array([p[0] for p in pairs])
        ids = np.array([p[1] for p in pairs], dtype=np.int64)
        return dists, ids

    def nearest_iter(self, query: np.ndarray) -> Iterator[Tuple[float, int]]:
        """Best-first enumeration of ``(distance, id)`` in ascending order.

        The classic priority-queue incremental NN algorithm: the heap mixes
        nodes (keyed by min distance to their box) and points (keyed by
        exact distance); whenever a point surfaces it is guaranteed to be
        the next nearest.  SRS consumes this stream one projected neighbor
        at a time.
        """
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValueError(f"query has dimension {query.shape[0]}, expected {self.dim}")
        counter = itertools.count()
        heap: List[Tuple[float, int, object]] = []

        def box_dist(node: _KDNode) -> float:
            delta = np.maximum(node.low - query, 0.0) + np.maximum(query - node.high, 0.0)
            return float(np.sqrt(delta @ delta))

        heapq.heappush(heap, (box_dist(self.root), next(counter), self.root))
        while heap:
            dist, _, entry = heapq.heappop(heap)
            if isinstance(entry, _KDNode):
                self.node_visits += 1
                if entry.is_leaf:
                    coords = self.points[entry.ids]
                    dists = np.linalg.norm(coords - query, axis=1)
                    for point_dist, point_id in zip(dists, entry.ids):
                        heapq.heappush(
                            heap, (float(point_dist), next(counter), int(point_id))
                        )
                else:
                    for child in (entry.left, entry.right):
                        assert child is not None
                        heapq.heappush(heap, (box_dist(child), next(counter), child))
            else:
                yield dist, entry  # type: ignore[misc]
