"""Array-native STR construction of the frozen R*-tree traversal.

``RStarTree.bulk_load(...).freeze()`` reaches a :class:`FlatRStarTree` by
way of a pointer tree it immediately discards: the recursive STR ordering
allocates one Python call and one stable mergesort per slab, the packer
allocates one ``_Node`` per leaf (id copy, coordinate copy, two bound
reductions apiece), and the freeze walks all of it again to stack the
arrays.  For the (K, L)-index build of §VI-B1 that interpreter work
dominates — the geometry itself is a handful of sorts and running
min/max reductions.

:func:`build_flat_str` builds the frozen form *directly*:

* :func:`str_order` computes the Sort-Tile-Recursive ordering
  iteratively, one axis per level.  While slabs are few they are sorted
  individually; once a level holds many small slabs, same-length slabs
  are packed into a matrix and sorted with a single row-wise
  ``np.argsort(axis=1)`` — no per-slab Python, no per-slab allocation.
  Every sort is an introsort plus an exact stability repair (equal-value
  runs re-ordered by input position), so the result matches the stable
  mergesorts of the recursive path bit for bit, ties and all;
* the leaf level is then a gather of the ordered points straight into
  the ``[x, -x]`` traversal buffer: leaf MBRs fall out of
  ``np.minimum/maximum.reduceat`` at ``max_entries`` strides, and each
  internal level is the same reduction over the level below;
* the CSR child ranges of the BFS layout are arithmetic (children of
  node ``i`` occupy block ``[i*M, min((i+1)*M, count))``), because STR
  packing fills nodes left to right.

The output is **byte-identical** to ``RStarTree.bulk_load(points, ids,
max_entries).freeze()`` — same ordering (slab arithmetic and stable tie
behaviour match :meth:`RStarTree._str_order` exactly), same MBRs
(min/max is exact), same dtypes — which the parity tests pin.  The
pointer-based path is deliberately left untouched: it is the measured
baseline (``benchmarks/bench_build.py``) and the mutable structure
``add()`` still inserts into.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.index.flat import DEFAULT_CHUNK_POINTS, FlatRStarTree, concat_ranges

#: Above this many active slabs the per-level sort switches from a Python
#: loop of per-slab argsorts to the batched row-wise sort — the loop's
#: per-call overhead would dominate the tiny sorts.
_GROUPED_SORT_MIN_SEGMENTS = 64

#: The batched path packs same-length slabs into one matrix per distinct
#: length; past this many distinct lengths (never seen in practice — ceil
#: splitting yields 2-3 per level) fall back to the two-pass group sort.
_MAX_DISTINCT_WIDTHS = 16


def _stable_argsort(values: np.ndarray, buffer: Optional[np.ndarray] = None) -> np.ndarray:
    """``argsort(values, kind="stable")`` at introsort speed.

    Quicksort the values, then repair equal-value runs: within a run the
    returned indices are re-ordered ascending, which *is* the stable
    order (an index is the element's input position).  Real projected
    coordinates are tie-free, so the repair almost never runs, but its
    presence makes the result exactly stable on any input.  ``buffer``
    optionally receives the sorted values (scratch reuse).
    """
    idx = np.argsort(values)
    if buffer is None:
        sorted_vals = values[idx]
    else:
        sorted_vals = buffer[: values.shape[0]]
        np.take(values, idx, out=sorted_vals)
    eq = sorted_vals[1:] == sorted_vals[:-1]
    if eq.any():
        run_id = np.cumsum(np.concatenate(([True], ~eq)))
        idx = idx[np.lexsort((idx, run_id))]
    return idx


def _grouped_stable_argsort(values: np.ndarray, seg_ids: np.ndarray) -> np.ndarray:
    """Per-slab stable argsort of concatenated slabs, in two global passes.

    Equivalent to running :func:`_stable_argsort` on every slab and
    concatenating: quicksort by value, then a stable (radix) sort on the
    small-integer slab ids regroups the slabs without disturbing each
    slab's value order, and the same run repair as :func:`_stable_argsort`
    restores exact stability among equal values inside a slab.

    ``seg_ids`` must be non-decreasing (slab blocks in position order) —
    the regrouped id sequence then equals ``seg_ids`` itself, which the
    tie detection exploits to skip a gather.
    """
    perm = np.argsort(values)
    perm = perm[np.argsort(seg_ids[perm], kind="stable")]
    sorted_vals = values[perm]
    eq = (sorted_vals[1:] == sorted_vals[:-1]) & (seg_ids[1:] == seg_ids[:-1])
    if eq.any():
        run_id = np.cumsum(np.concatenate(([True], ~eq)))
        perm = perm[np.lexsort((perm, run_id))]
    return perm


class _BuildScratch:
    """Reusable per-level temporaries for one :func:`str_order` call.

    The level loop churns through ~n-element gathers and index matrices
    at every axis; above glibc's mmap threshold each would be a fresh
    mmap + page-fault + munmap cycle, which shows up as several percent
    of the whole build.  One allocation per buffer, sliced per level,
    removes that churn.
    """

    __slots__ = ("column", "vals", "sorted_vals", "rows", "src", "gathered")

    def __init__(self, n: int) -> None:
        self.column = np.empty(n, dtype=np.float64)
        self.vals = np.empty(n, dtype=np.float64)
        self.sorted_vals = np.empty(n, dtype=np.float64)
        self.rows = np.empty(n, dtype=np.int64)
        self.src = np.empty(n, dtype=np.int64)
        self.gathered = np.empty(n, dtype=np.int64)


def _sort_level_batched(
    order: np.ndarray,
    column: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    scratch: _BuildScratch,
) -> None:
    """Stable-sort every slab of one level, batched by slab length.

    ``column`` is the level's axis coordinate gathered in current
    ``order`` positions, ``starts``/``lengths`` the slab spans.  Slabs of
    equal length are stacked into an (m, w) matrix and sorted with one
    row-wise introsort; rows with equal-value runs (rare) are repaired
    individually to exact stability.  ``order`` is updated in place.
    """
    for width in np.unique(lengths):
        w = int(width)
        seg_starts = starts[lengths == width]
        m = seg_starts.shape[0]
        rows = scratch.rows[: m * w].reshape(m, w)
        np.add(seg_starts[:, None], np.arange(w), out=rows)
        vals = scratch.vals[: m * w].reshape(m, w)
        np.take(column, rows, out=vals)
        idx = np.argsort(vals, axis=1)
        src = scratch.src[: m * w].reshape(m, w)
        if w > 1:
            # Row-flattened take stands in for take_along_axis (no out=).
            np.add(idx, (np.arange(m) * w)[:, None], out=src)
            sorted_vals = scratch.sorted_vals[: m * w].reshape(m, w)
            np.take(vals.reshape(-1), src.reshape(-1),
                    out=sorted_vals.reshape(-1))
            tied = (sorted_vals[:, 1:] == sorted_vals[:, :-1]).any(axis=1)
            for r in np.flatnonzero(tied):
                idx[r] = _stable_argsort(vals[r])
        np.add(seg_starts[:, None], idx, out=src)
        gathered = scratch.gathered[: m * w]
        np.take(order, src.reshape(-1), out=gathered)
        order[rows.reshape(-1)] = gathered


def str_order(points: np.ndarray, max_entries: int = 32) -> np.ndarray:
    """Sort-Tile-Recursive ordering of ``points``, computed iteratively.

    Returns exactly the permutation
    ``RStarTree._str_order(points, arange(n), 0)`` produces, without
    recursion: the slab tree is processed level by level, and every slab
    active at an axis is sorted by that axis — individually while slabs
    are few, batched by length once they are many.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n, dim = points.shape
    order = np.arange(n, dtype=np.int64)
    if n == 0:
        return order
    # One transposed copy up front: every level reads a single axis for
    # (nearly) all points, and gathering from a contiguous per-axis row
    # is much kinder to the cache than striding across the (n, K) matrix.
    columns = np.ascontiguousarray(points.T)
    scratch = _BuildScratch(n)
    # Active slabs as [start, end) spans of ``order``; every span entering
    # axis ``a`` is sorted by coordinate ``a`` (the recursion sorts at
    # entry whether or not it then splits).
    segments: List[Tuple[int, int]] = [(0, n)]
    for axis in range(dim):
        col = columns[axis]
        if axis == 0:
            # ``order`` is still the identity: the argsort *is* the order.
            order = _stable_argsort(col, scratch.sorted_vals)
        elif len(segments) < _GROUPED_SORT_MIN_SEGMENTS:
            for s, e in segments:
                sub = order[s:e]
                vals = scratch.vals[: e - s]
                np.take(col, sub, out=vals)
                np.take(sub, _stable_argsort(vals, scratch.sorted_vals),
                        out=order[s:e])
        else:
            starts = np.fromiter(
                (s for s, _ in segments), dtype=np.int64, count=len(segments)
            )
            ends = np.fromiter(
                (e for _, e in segments), dtype=np.int64, count=len(segments)
            )
            lengths = ends - starts
            if np.unique(lengths).shape[0] <= _MAX_DISTINCT_WIDTHS:
                # Position-space view of the axis: slab rows index it
                # absolutely, so terminal spans interleaved between the
                # active slabs are simply never touched.
                np.take(col, order, out=scratch.column)
                _sort_level_batched(order, scratch.column, starts, lengths,
                                    scratch)
            else:
                # Degenerate width spread: two-pass grouped fallback.
                idx = concat_ranges(starts, ends)
                sub = order[idx]
                # int32 slab ids keep the regroup on numpy's radix path.
                seg_ids = np.repeat(
                    np.arange(len(segments), dtype=np.int32), lengths
                )
                order[idx] = sub[_grouped_stable_argsort(col[sub], seg_ids)]
        if axis >= dim - 1:
            break
        # Split every non-terminal slab with the recursive rule's exact
        # arithmetic (floats and ceils included, so ties break the same).
        next_segments: List[Tuple[int, int]] = []
        for s, e in segments:
            length = e - s
            if length <= max_entries:
                continue
            remaining_dims = dim - axis
            n_leaves = math.ceil(length / max_entries)
            slabs = max(1, math.ceil(n_leaves ** (1.0 / remaining_dims)))
            slab_size = math.ceil(length / slabs)
            for start in range(s, e, slab_size):
                next_segments.append((start, min(start + slab_size, e)))
        if not next_segments:
            break
        segments = next_segments
    return order


def _blocked_min(cat: np.ndarray, block: int) -> np.ndarray:
    """Row-block minimum: ``minimum.reduceat`` at stride ``block``, faster.

    The full blocks reduce through a (m, block, width) reshape — ~3x the
    throughput of ``reduceat`` — and the ragged tail (if any) is one
    extra row.  Exact: ``min`` is ``min`` either way.
    """
    n, width = cat.shape
    full = n // block
    if full == 0:
        return cat.min(axis=0, keepdims=True)
    main = cat[: full * block].reshape(full, block, width).min(axis=1)
    if n - full * block:
        return np.concatenate(
            [main, cat[full * block :].min(axis=0, keepdims=True)]
        )
    return main


def build_flat_str(
    points: np.ndarray,
    ids: Optional[np.ndarray] = None,
    max_entries: int = 32,
    chunk_points: Optional[int] = None,
) -> FlatRStarTree:
    """Build a :class:`FlatRStarTree` straight from points via STR packing.

    Produces arrays byte-identical to
    ``RStarTree.bulk_load(points, ids, max_entries).freeze()`` without
    materialising a single tree node.  ``ids`` defaults to ``0..n-1``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n, dim = points.shape
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if max_entries < 4:
        raise ValueError(f"max_entries must be >= 4, got {max_entries}")
    if ids is not None:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape[0] != n:
            raise ValueError("ids length must match number of points")
    if chunk_points is None:
        chunk_points = DEFAULT_CHUNK_POINTS

    if n == 0:
        # Mirror freezing an empty tree: one empty leaf whose MBR is the
        # identity of min/max (low = +inf stored as-is, -high = +inf).
        return FlatRStarTree.from_build(
            dim=dim,
            count=0,
            height=1,
            levels=[],
            leaf_ptr=np.zeros(2, dtype=np.int64),
            leaf_ids=np.empty(0, dtype=np.int64),
            leaf_cat=np.full((1, 2 * dim), np.inf),
            coords_cat=np.empty((0, 2 * dim), dtype=np.float64),
            chunk_points=chunk_points,
        )

    order = str_order(points, max_entries)
    # Gather the ordered points directly into the [x, -x] traversal form.
    coords_cat = np.empty((n, 2 * dim), dtype=np.float64)
    coords = coords_cat[:, :dim]
    np.take(points, order, axis=0, out=coords)
    np.negative(coords, out=coords_cat[:, dim:])
    # Default ids are 0..n-1, for which ids[order] is order itself.
    leaf_ids = order if ids is None else ids[order]

    # Leaf level: every run of ``max_entries`` ordered points is one leaf.
    # In concatenated form a *single* min reduction yields the whole MBR:
    # the minimum of [x, -x] over a run is exactly [low, -high].
    starts = np.arange(0, n, max_entries, dtype=np.int64)
    leaf_cat = _blocked_min(coords_cat, max_entries)
    leaf_ptr = np.append(starts, np.int64(n))

    # Internal levels bottom-up: each is the ``max_entries``-stride
    # reduction of the level below, with arithmetic CSR child blocks.
    levels: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    cat = leaf_cat
    count = starts.shape[0]
    height = 1
    while count > 1:
        parent_starts = np.arange(0, count, max_entries, dtype=np.int64)
        cat = _blocked_min(cat, max_entries)
        child_end = np.minimum(parent_starts + max_entries, count)
        levels.append((cat, parent_starts, child_end))
        count = parent_starts.shape[0]
        height += 1
    levels.reverse()  # FlatRStarTree stores levels root-first

    return FlatRStarTree.from_build(
        dim=dim,
        count=n,
        height=height,
        levels=levels,
        leaf_ptr=leaf_ptr,
        leaf_ids=leaf_ids,
        leaf_cat=leaf_cat,
        coords_cat=coords_cat,
        chunk_points=chunk_points,
    )
