"""A B+-tree over one-dimensional float keys.

QALSH, C2LSH (its dynamic variants), VHP and R2LSH all locate points whose
*single* projection falls inside a query-centric interval; the cited
implementations use B+-trees for this.  This module provides an in-memory
B+-tree with:

* bulk construction from (possibly unsorted) key/value arrays;
* ``range_query(lo, hi)`` — all values whose keys fall in the closed
  interval;
* ``closest_iter(key)`` — bidirectional expansion outward from ``key``,
  yielding ``(abs_offset, key, value)`` in ascending offset order.  This
  is the access pattern of QALSH's "virtual rehashing": the bucket grows
  symmetrically around the query's projection.

Leaves are doubly linked so both operations walk sibling pointers rather
than re-descending.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

import numpy as np


class _BLeaf:
    __slots__ = ("keys", "values", "prev", "next")

    def __init__(self, keys: List[float], values: List[int]) -> None:
        self.keys = keys
        self.values = values
        self.prev: Optional["_BLeaf"] = None
        self.next: Optional["_BLeaf"] = None


class _BInternal:
    __slots__ = ("keys", "children")

    def __init__(self, keys: List[float], children: List[object]) -> None:
        # keys[i] is the smallest key in children[i + 1].
        self.keys = keys
        self.children = children


class BPlusTree:
    """Immutable bulk-built B+-tree over float keys with int payloads."""

    def __init__(self, keys: np.ndarray, values: Optional[np.ndarray] = None, order: int = 64):
        keys = np.asarray(keys, dtype=np.float64).reshape(-1)
        if keys.shape[0] == 0:
            raise ValueError("BPlusTree requires at least one key")
        if order < 4:
            raise ValueError(f"order must be >= 4, got {order}")
        if values is None:
            values = np.arange(keys.shape[0], dtype=np.int64)
        else:
            values = np.asarray(values, dtype=np.int64).reshape(-1)
            if values.shape[0] != keys.shape[0]:
                raise ValueError("values length must match keys length")
        self.order = int(order)
        sort = np.argsort(keys, kind="stable")
        sorted_keys = keys[sort]
        sorted_values = values[sort]

        # Build the leaf level.
        leaves: List[_BLeaf] = []
        for start in range(0, len(sorted_keys), self.order):
            leaf = _BLeaf(
                sorted_keys[start : start + self.order].tolist(),
                sorted_values[start : start + self.order].tolist(),
            )
            if leaves:
                leaves[-1].next = leaf
                leaf.prev = leaves[-1]
            leaves.append(leaf)
        self._first_leaf = leaves[0]

        # Build internal levels bottom-up.
        level: List[object] = list(leaves)
        level_min_keys = [leaf.keys[0] for leaf in leaves]
        while len(level) > 1:
            parents: List[object] = []
            parent_min_keys: List[float] = []
            for start in range(0, len(level), self.order):
                children = level[start : start + self.order]
                child_mins = level_min_keys[start : start + self.order]
                parents.append(_BInternal(child_mins[1:], children))
                parent_min_keys.append(child_mins[0])
            level = parents
            level_min_keys = parent_min_keys
        self.root = level[0]
        self.count = int(keys.shape[0])
        self.node_visits = 0

    def __len__(self) -> int:
        return self.count

    # ------------------------------------------------------------------
    # Search primitives
    # ------------------------------------------------------------------

    def _find_leaf(self, key: float) -> Tuple[_BLeaf, int]:
        """Leaf and in-leaf position of the first key >= ``key``.

        Descends with ``bisect_left`` so that when duplicates of ``key``
        straddle a separator (separator == key), the walk lands on the
        *leftmost* leaf that can hold the first occurrence.
        """
        node = self.root
        while isinstance(node, _BInternal):
            self.node_visits += 1
            node = node.children[bisect.bisect_left(node.keys, key)]
        assert isinstance(node, _BLeaf)
        self.node_visits += 1
        return node, bisect.bisect_left(node.keys, key)

    def range_query(self, lo: float, hi: float) -> np.ndarray:
        """Values with keys in the closed interval ``[lo, hi]``."""
        if lo > hi:
            return np.empty(0, dtype=np.int64)
        leaf, pos = self._find_leaf(lo)
        out: List[int] = []
        node: Optional[_BLeaf] = leaf
        while node is not None:
            keys = node.keys
            for i in range(pos, len(keys)):
                if keys[i] > hi:
                    return np.asarray(out, dtype=np.int64)
                out.append(node.values[i])
            pos = 0
            node = node.next
            if node is not None:
                self.node_visits += 1
        return np.asarray(out, dtype=np.int64)

    def range_count(self, lo: float, hi: float) -> int:
        """Number of keys in the closed interval."""
        return int(self.range_query(lo, hi).shape[0])

    def closest_iter(self, key: float) -> Iterator[Tuple[float, float, int]]:
        """Yield ``(offset, key, value)`` ordered by ``offset = |key - q|``.

        The bidirectional leaf walk QALSH/C2LSH use to grow query-centric
        buckets: two cursors start at the query's position and step outward,
        always advancing the nearer side.
        """
        leaf, pos = self._find_leaf(key)

        # Right cursor at (leaf, pos); left cursor just before it.
        right_leaf: Optional[_BLeaf] = leaf
        right_pos = pos
        if right_leaf is not None and right_pos >= len(right_leaf.keys):
            right_leaf, right_pos = right_leaf.next, 0
        left_leaf: Optional[_BLeaf] = leaf
        left_pos = pos - 1
        while left_leaf is not None and left_pos < 0:
            left_leaf = left_leaf.prev
            if left_leaf is not None:
                left_pos = len(left_leaf.keys) - 1

        while left_leaf is not None or right_leaf is not None:
            left_off = (
                key - left_leaf.keys[left_pos] if left_leaf is not None else float("inf")
            )
            right_off = (
                right_leaf.keys[right_pos] - key if right_leaf is not None else float("inf")
            )
            if left_off <= right_off:
                assert left_leaf is not None
                yield left_off, left_leaf.keys[left_pos], left_leaf.values[left_pos]
                left_pos -= 1
                while left_leaf is not None and left_pos < 0:
                    left_leaf = left_leaf.prev
                    if left_leaf is not None:
                        left_pos = len(left_leaf.keys) - 1
            else:
                assert right_leaf is not None
                yield right_off, right_leaf.keys[right_pos], right_leaf.values[right_pos]
                right_pos += 1
                if right_pos >= len(right_leaf.keys):
                    right_leaf, right_pos = right_leaf.next, 0

    def min_key(self) -> float:
        return self._first_leaf.keys[0]

    def max_key(self) -> float:
        leaf = self._first_leaf
        while leaf.next is not None:
            leaf = leaf.next
        return leaf.keys[-1]

    @property
    def height(self) -> int:
        """Number of levels from root to leaves."""
        height = 1
        node = self.root
        while isinstance(node, _BInternal):
            height += 1
            node = node.children[0]
        return height
