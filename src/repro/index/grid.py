"""Uniform grid over K-dimensional points: the hash table of static LSH.

A static (K, L)-index method (E2LSH, FB-LSH) quantises each projected
point to the integer cell ``floor(x / w)`` per dimension and stores the
cell -> ids mapping in a hash table.  :class:`GridIndex` is exactly that
structure, with two lookups:

* ``cell_lookup`` — the single cell containing a query (the classic hash
  table probe of E2LSH);
* ``window_query`` — all cells intersecting an arbitrary window (used by
  the backend ablation to show why fixed grids struggle with
  query-centric buckets: a window of width ``w`` can intersect ``2^K``
  cells).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive


class GridIndex:
    """Fixed-width grid (hash-table) index over (n, K) points."""

    def __init__(self, points: np.ndarray, cell_width: float) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            raise ValueError("GridIndex requires at least one point")
        self.points = points
        self.dim = points.shape[1]
        self.cell_width = check_positive("cell_width", cell_width)
        self.cells: Dict[Tuple[int, ...], List[int]] = {}
        keys = np.floor(points / self.cell_width).astype(np.int64)
        for idx, key in enumerate(keys):
            self.cells.setdefault(tuple(key.tolist()), []).append(idx)
        self.cell_probes = 0

    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    def key_of(self, point: np.ndarray) -> Tuple[int, ...]:
        """Grid cell key of a K-dimensional point."""
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        if point.shape[0] != self.dim:
            raise ValueError(f"point has dimension {point.shape[0]}, expected {self.dim}")
        return tuple(np.floor(point / self.cell_width).astype(np.int64).tolist())

    def cell_lookup(self, point: np.ndarray) -> np.ndarray:
        """Ids co-located in the query's own cell (E2LSH bucket probe)."""
        self.cell_probes += 1
        ids = self.cells.get(self.key_of(point), [])
        return np.asarray(ids, dtype=np.int64)

    def window_query(self, w_low: np.ndarray, w_high: np.ndarray) -> np.ndarray:
        """All ids inside the window, probing every intersecting cell."""
        chunks = list(self.window_query_iter(w_low, w_high))
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def window_query_iter(self, w_low: np.ndarray, w_high: np.ndarray) -> Iterator[np.ndarray]:
        """Stream ids inside the window cell-by-cell.

        Probes the ``prod(cells per dim)`` grid cells the window touches —
        exponential in K for wide windows, which is exactly the weakness
        the backend ablation demonstrates.  When that count exceeds the
        number of *occupied* cells, the scan flips to iterating the
        occupied cells instead, bounding the work at O(#occupied).
        """
        w_low = np.asarray(w_low, dtype=np.float64).reshape(-1)
        w_high = np.asarray(w_high, dtype=np.float64).reshape(-1)
        if np.any(w_low > w_high):
            return
        lo_cell = np.floor(w_low / self.cell_width).astype(np.int64)
        hi_cell = np.floor(w_high / self.cell_width).astype(np.int64)
        span = hi_cell - lo_cell + 1
        n_candidate_cells = float(np.prod(span.astype(np.float64)))

        def filtered(ids: list) -> Optional[np.ndarray]:
            ids_arr = np.asarray(ids, dtype=np.int64)
            coords = self.points[ids_arr]
            mask = np.all(coords >= w_low, axis=1) & np.all(coords <= w_high, axis=1)
            return ids_arr[mask] if mask.any() else None

        if n_candidate_cells > len(self.cells):
            lo_key, hi_key = tuple(lo_cell.tolist()), tuple(hi_cell.tolist())
            for key, ids in self.cells.items():
                self.cell_probes += 1
                if all(lo_key[d] <= key[d] <= hi_key[d] for d in range(self.dim)):
                    chunk = filtered(ids)
                    if chunk is not None:
                        yield chunk
            return
        ranges = [range(int(lo), int(hi) + 1) for lo, hi in zip(lo_cell, hi_cell)]
        for key in itertools.product(*ranges):
            self.cell_probes += 1
            ids = self.cells.get(key)
            if not ids:
                continue
            chunk = filtered(ids)
            if chunk is not None:
                yield chunk
