"""Multi-dimensional and one-dimensional index substrates.

The paper's only requirement on the per-space index is that it "can
efficiently answer a window query in the low-dimensional space" (§IV-B).
We provide the R*-tree the paper uses plus two alternative backends
(KD-tree, uniform grid) for the backend ablation, and the one-dimensional
/ metric structures the baselines need (B+-tree, Z-order utilities,
M-tree).
"""

from repro.index.bplustree import BPlusTree
from repro.index.flat import FlatRStarTree
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.mbr import MBR
from repro.index.mtree import MTree
from repro.index.rstar import RStarTree
from repro.index.str_build import build_flat_str, str_order
from repro.index.zorder import llcp, zorder_encode, zorder_encode_many

__all__ = [
    "BPlusTree",
    "FlatRStarTree",
    "GridIndex",
    "KDTree",
    "MBR",
    "MTree",
    "RStarTree",
    "build_flat_str",
    "llcp",
    "str_order",
    "zorder_encode",
    "zorder_encode_many",
]
