"""An M-tree metric index over low-dimensional Euclidean points.

PM-LSH (Zheng et al., PVLDB 2020) indexes the m-dimensional projected
space with a PM-tree — an M-tree whose nodes additionally keep distances
to a set of global pivots ("pivot rings").  This module implements the
M-tree core (routing objects with covering radii, triangle-inequality
pruning for range and kNN queries) plus the PM-tree pivot-ring filter as
an optional extra, so the PM-LSH baseline runs on the same structure the
original paper used.

The tree is bulk-built top-down by recursive balanced 2-means-style
partitioning (a standard M-tree loading strategy); all LSH baselines
index immutable datasets so no dynamic insertion is needed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, default_rng


class _MNode:
    __slots__ = ("router", "radius", "children", "ids", "pivot_lo", "pivot_hi")

    def __init__(self) -> None:
        self.router: np.ndarray = np.empty(0)
        self.radius: float = 0.0
        self.children: List["_MNode"] = []
        self.ids: Optional[np.ndarray] = None  # leaf payload
        # Pivot rings: min/max distance of subtree points to each pivot.
        self.pivot_lo: np.ndarray = np.empty(0)
        self.pivot_hi: np.ndarray = np.empty(0)

    @property
    def is_leaf(self) -> bool:
        return self.ids is not None


class MTree:
    """Bulk-built M-tree with optional PM-tree pivot-ring pruning."""

    def __init__(
        self,
        points: np.ndarray,
        leaf_size: int = 32,
        fanout: int = 8,
        num_pivots: int = 0,
        seed: SeedLike = 0,
    ) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            raise ValueError("MTree requires at least one point")
        if leaf_size < 1 or fanout < 2:
            raise ValueError("leaf_size must be >= 1 and fanout >= 2")
        self.points = points
        self.dim = points.shape[1]
        self.leaf_size = int(leaf_size)
        self.fanout = int(fanout)
        self.node_visits = 0
        self.distance_computations = 0
        rng = default_rng(seed)
        if num_pivots > 0:
            pivot_ids = rng.choice(points.shape[0], size=min(num_pivots, points.shape[0]),
                                   replace=False)
            self.pivots = points[pivot_ids].copy()
            self._pivot_dists = np.linalg.norm(
                points[:, None, :] - self.pivots[None, :, :], axis=2
            )
        else:
            self.pivots = np.empty((0, self.dim))
            self._pivot_dists = np.empty((points.shape[0], 0))
        self.root = self._build(np.arange(points.shape[0], dtype=np.int64), rng)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self, ids: np.ndarray, rng: np.random.Generator) -> _MNode:
        node = _MNode()
        coords = self.points[ids]
        centroid = coords.mean(axis=0)
        router_pos = int(np.argmin(np.linalg.norm(coords - centroid, axis=1)))
        node.router = coords[router_pos].copy()
        node.radius = float(np.linalg.norm(coords - node.router, axis=1).max())
        if self._pivot_dists.shape[1]:
            node.pivot_lo = self._pivot_dists[ids].min(axis=0)
            node.pivot_hi = self._pivot_dists[ids].max(axis=0)
        if len(ids) <= self.leaf_size:
            node.ids = ids
            return node
        # Partition into up to ``fanout`` groups around sampled seeds,
        # assigning each point to its nearest seed (generalised hyperplane).
        k = min(self.fanout, max(2, len(ids) // self.leaf_size))
        seed_pos = rng.choice(len(ids), size=k, replace=False)
        seeds = coords[seed_pos]
        assign = np.argmin(
            np.linalg.norm(coords[:, None, :] - seeds[None, :, :], axis=2), axis=1
        )
        groups = [ids[assign == g] for g in range(k)]
        groups = [g for g in groups if len(g) > 0]
        if len(groups) < 2:
            # Degenerate partition (duplicate/collinear points): keep a leaf
            # instead of recursing on the same id set forever.
            node.ids = ids
            return node
        node.children = [self._build(group, rng) for group in groups]
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _pivot_prune(self, node: _MNode, q_pivot_dists: np.ndarray, radius: float) -> bool:
        """True when pivot rings prove the subtree cannot intersect the ball."""
        if node.pivot_lo.shape[0] == 0 or q_pivot_dists.shape[0] == 0:
            return False
        # For any pivot p: d(q, o) >= |d(q, p) - d(o, p)|.  If the minimum
        # attainable value over the ring [lo, hi] exceeds radius, prune.
        below = q_pivot_dists - node.pivot_hi
        above = node.pivot_lo - q_pivot_dists
        lower_bounds = np.maximum(np.maximum(below, above), 0.0)
        return bool(np.any(lower_bounds > radius))

    def range_query(self, query: np.ndarray, radius: float) -> np.ndarray:
        """Ids of all points within ``radius`` of ``query``."""
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        q_pivot = (
            np.linalg.norm(self.pivots - query, axis=1) if self.pivots.shape[0] else np.empty(0)
        )
        out: List[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.node_visits += 1
            self.distance_computations += 1
            router_dist = float(np.linalg.norm(node.router - query))
            if router_dist > node.radius + radius:
                continue
            if self._pivot_prune(node, q_pivot, radius):
                continue
            if node.is_leaf:
                coords = self.points[node.ids]
                dists = np.linalg.norm(coords - query, axis=1)
                self.distance_computations += len(node.ids)  # type: ignore[arg-type]
                mask = dists <= radius
                if mask.any():
                    out.append(node.ids[mask])  # type: ignore[index]
            else:
                stack.extend(node.children)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def knn(self, query: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k nearest neighbors as ``(distances, ids)`` ascending."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        pairs = list(itertools.islice(self.nearest_iter(query), k))
        if not pairs:
            return np.empty(0), np.empty(0, dtype=np.int64)
        return (
            np.array([p[0] for p in pairs]),
            np.array([p[1] for p in pairs], dtype=np.int64),
        )

    def nearest_iter(self, query: np.ndarray) -> Iterator[Tuple[float, int]]:
        """Best-first incremental NN enumeration (heap over nodes + points)."""
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        counter = itertools.count()
        heap: List[Tuple[float, int, object]] = []

        def node_bound(node: _MNode) -> float:
            self.distance_computations += 1
            return max(0.0, float(np.linalg.norm(node.router - query)) - node.radius)

        heapq.heappush(heap, (node_bound(self.root), next(counter), self.root))
        while heap:
            bound, _, entry = heapq.heappop(heap)
            if isinstance(entry, _MNode):
                self.node_visits += 1
                if entry.is_leaf:
                    coords = self.points[entry.ids]
                    dists = np.linalg.norm(coords - query, axis=1)
                    self.distance_computations += len(entry.ids)  # type: ignore[arg-type]
                    for dist, point_id in zip(dists, entry.ids):  # type: ignore[arg-type]
                        heapq.heappush(heap, (float(dist), next(counter), int(point_id)))
                else:
                    for child in entry.children:
                        heapq.heappush(heap, (node_bound(child), next(counter), child))
            else:
                yield bound, entry  # type: ignore[misc]
