"""Z-order (Morton) curve utilities for the LSB-Forest baseline.

LSB-Tree (Tao et al., SIGMOD 2009) maps each point's ``m`` p-stable hash
values to an m-dimensional integer grid, interleaves the coordinate bits
into a single Z-order value, and stores the values in a B-tree.  Bucket
merging at query time ("enlarging r") corresponds to comparing *prefixes*
of the Z-order values: the longer the length of the longest common prefix
(LLCP) between the query's Z-value and a point's, the smaller the grid
cell both share.

Functions here implement the encoding and LLCP arithmetic on arbitrary-
precision Python ints (``m * bits_per_dim`` can exceed 64 bits).
"""

from __future__ import annotations

from typing import List

import numpy as np


def zorder_encode(coords: np.ndarray, bits_per_dim: int) -> int:
    """Interleave the bits of non-negative integer ``coords`` into one int.

    Bit ``b`` of dimension ``j`` lands at position ``b * m + j`` counting
    from the least-significant end, so the *most* significant interleaved
    bits come from the most significant coordinate bits — prefix sharing
    then corresponds to coarse-grid co-location.
    """
    coords = np.asarray(coords, dtype=np.int64).reshape(-1)
    if bits_per_dim < 1:
        raise ValueError(f"bits_per_dim must be >= 1, got {bits_per_dim}")
    if np.any(coords < 0):
        raise ValueError("coordinates must be non-negative")
    if np.any(coords >= (1 << bits_per_dim)):
        raise ValueError("coordinate exceeds bits_per_dim capacity")
    m = coords.shape[0]
    value = 0
    for bit in range(bits_per_dim):
        for j in range(m):
            if (int(coords[j]) >> bit) & 1:
                value |= 1 << (bit * m + j)
    return value


def zorder_encode_many(points: np.ndarray, bits_per_dim: int) -> List[int]:
    """Encode each row of an (n, m) non-negative integer array."""
    points = np.atleast_2d(np.asarray(points, dtype=np.int64))
    return [zorder_encode(row, bits_per_dim) for row in points]


def llcp(z1: int, z2: int, total_bits: int) -> int:
    """Length of the longest common prefix of two Z-values.

    Measured in bits from the most-significant end of ``total_bits``-wide
    representations.  LSB-Tree uses ``llcp // m`` as the number of grid
    levels two points share.
    """
    if total_bits < 1:
        raise ValueError(f"total_bits must be >= 1, got {total_bits}")
    if z1 < 0 or z2 < 0:
        raise ValueError("Z-values must be non-negative")
    diff = z1 ^ z2
    if diff == 0:
        return total_bits
    highest = diff.bit_length() - 1
    if highest >= total_bits:
        raise ValueError("Z-value wider than total_bits")
    return total_bits - 1 - highest


def shared_levels(z1: int, z2: int, m: int, bits_per_dim: int) -> int:
    """Number of complete grid levels (coarsest-first) two Z-values share.

    Each level consumes ``m`` interleaved bits; sharing ``u`` levels means
    the points fall in the same cell of the grid whose cells have side
    ``2^(bits_per_dim - u)`` base cells.
    """
    total = m * bits_per_dim
    return llcp(z1, z2, total) // m
