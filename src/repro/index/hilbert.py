"""Hilbert curve encoding as an alternative to Z-order for LSB-Forest.

LSB-Tree interleaves hash coordinates with the Z-order (Morton) curve;
the Hilbert curve is the classic drop-in with strictly better locality
(no long diagonal jumps), at the price of a more intricate encoding.
This module implements the standard Butz/Hamilton iterative algorithm
for arbitrary dimension ``m`` and precision ``bits_per_dim``, operating
on Python ints so widths beyond 64 bits work (as with the Z-order
module).

``LSBForest(curve="hilbert")`` uses it; the curve ablation in the test
suite checks that Hilbert ordering never separates neighbors more than
Z-order does on average.
"""

from __future__ import annotations

from typing import List

import numpy as np


def hilbert_encode(coords: np.ndarray, bits_per_dim: int) -> int:
    """Map non-negative integer ``coords`` to their Hilbert curve index.

    Implements the transpose-based algorithm (Skilling, 2004): the
    coordinates are Gray-decoded axis by axis from the most significant
    bit down, then the transposed bit matrix is flattened.
    """
    coords = np.asarray(coords, dtype=np.int64).reshape(-1)
    if bits_per_dim < 1:
        raise ValueError(f"bits_per_dim must be >= 1, got {bits_per_dim}")
    if np.any(coords < 0):
        raise ValueError("coordinates must be non-negative")
    if np.any(coords >= (1 << bits_per_dim)):
        raise ValueError("coordinate exceeds bits_per_dim capacity")
    x: List[int] = [int(v) for v in coords]
    m = len(x)

    # Inverse undo excess work (Skilling's transform, applied in reverse).
    q = 1 << (bits_per_dim - 1)
    while q > 1:
        p = q - 1
        for i in range(m):
            if x[i] & q:
                x[0] ^= p  # invert
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, m):
        x[i] ^= x[i - 1]
    t = 0
    q = 1 << (bits_per_dim - 1)
    while q > 1:
        if x[m - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(m):
        x[i] ^= t

    # Interleave the transposed bits into the final index.
    value = 0
    for bit in range(bits_per_dim - 1, -1, -1):
        for i in range(m):
            value = (value << 1) | ((x[i] >> bit) & 1)
    return value


def hilbert_decode(index: int, m: int, bits_per_dim: int) -> np.ndarray:
    """Invert :func:`hilbert_encode`; returns the (m,) coordinate array."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if bits_per_dim < 1:
        raise ValueError(f"bits_per_dim must be >= 1, got {bits_per_dim}")
    if index < 0 or index >= (1 << (m * bits_per_dim)):
        raise ValueError("index out of range for given m and bits_per_dim")

    # De-interleave into the transposed form.
    x = [0] * m
    pos = m * bits_per_dim - 1
    for bit in range(bits_per_dim - 1, -1, -1):
        for i in range(m):
            x[i] |= ((index >> pos) & 1) << bit
            pos -= 1

    # Gray decode.
    t = x[m - 1] >> 1
    for i in range(m - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t

    # Undo excess work.
    q = 2
    while q != (1 << bits_per_dim):
        p = q - 1
        for i in range(m - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return np.asarray(x, dtype=np.int64)


def hilbert_encode_many(points: np.ndarray, bits_per_dim: int) -> List[int]:
    """Encode each row of an (n, m) non-negative integer array."""
    points = np.atleast_2d(np.asarray(points, dtype=np.int64))
    return [hilbert_encode(row, bits_per_dim) for row in points]
