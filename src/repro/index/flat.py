"""Flattened, array-backed traversal form of the R*-tree.

The pointer-chasing :class:`~repro.index.rstar.RStarTree` traversal costs
one Python iteration (plus several small numpy calls) per node — for the
window queries DB-LSH issues at every radius, interpreter overhead
dominates the geometry.  :class:`FlatRStarTree` freezes a built tree into
contiguous arrays and answers the same window queries with one vectorised
mask per *level* instead of per node:

* each internal level stores its nodes' MBRs as stacked ``low`` / ``high``
  matrices plus a CSR-style ``child_start`` / ``child_end`` pair mapping a
  node to the contiguous block of its children on the next level (the
  nodes are laid out in BFS order, which makes every child block
  contiguous);
* the leaf level stores stacked leaf MBRs, a ``leaf_ptr`` offset array,
  and the concatenated per-leaf id / coordinate arrays.

``window_query_iter`` descends level-by-level — intersect the frontier's
MBRs against the window in one vectorised comparison, expand the
surviving nodes' child ranges, repeat — then lazily yields the matching
ids of the surviving leaves in chunks.  Laziness preserves the
incremental-generator contract Algorithm 1 needs: a caller that stops
after ``2tL + k`` verified candidates never pays for the remaining leaf
scans (the level-wise internal descent is eager, but internal nodes are a
~1/M fraction of the tree).

Chunks enumerate candidates in exactly the order the pointer-based
``RStarTree.window_query_iter`` produces them (its explicit stack visits
children last-to-first, i.e. descending BFS order), so the two traversals
are drop-in interchangeable even where candidate *order* matters —
budget-truncated queries return identical results on either path.

The freeze is traversal-only: the source tree remains the mutable,
insertable structure, and must be re-frozen after updates (see
``RStarTree.freeze``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.index.rstar import RStarTree, RTreeStats

#: Maximum number of points per yielded chunk (merged across leaves).
DEFAULT_CHUNK_POINTS = 4096

#: First-chunk target; subsequent chunks double up to ``chunk_points``.
_INITIAL_CHUNK_POINTS = 256


def concat_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, e)`` for each range, fully vectorised.

    ``starts`` / ``ends`` are equal-length int64 arrays; empty ranges are
    allowed.  This is the CSR expansion primitive of the level-wise
    descent (child blocks of the surviving frontier) and of the leaf
    gather (point blocks of the surviving leaves).
    """
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    shifts = starts - np.concatenate(([np.int64(0)], np.cumsum(counts)[:-1]))
    return np.repeat(shifts, counts) + np.arange(total, dtype=np.int64)


class FlatRStarTree:
    """Frozen array-backed form of a built :class:`RStarTree`.

    Supports the read-only query surface (window queries, id enumeration);
    mutation stays on the source tree.
    """

    __slots__ = (
        "dim",
        "count",
        "height",
        "stats",
        "_levels",
        "leaf_ptr",
        "leaf_ids",
        "_leaf_cat",
        "_coords_cat",
        "chunk_points",
    )

    def __init__(self, tree: RStarTree, chunk_points: int = DEFAULT_CHUNK_POINTS) -> None:
        if chunk_points < 1:
            raise ValueError(f"chunk_points must be >= 1, got {chunk_points}")
        self.dim = tree.dim
        self.count = tree.count
        self.height = tree.height
        self.chunk_points = int(chunk_points)
        self.stats = RTreeStats()

        # BFS flattening: children of consecutive parents land consecutively,
        # so each parent's child block is a contiguous [start, end) range.
        nodes = [tree.root]
        levels: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        while not nodes[0].is_leaf:
            lows = np.stack([nd.low for nd in nodes])
            highs = np.stack([nd.high for nd in nodes])
            counts = np.fromiter(
                (len(nd.children) for nd in nodes), dtype=np.int64, count=len(nodes)
            )
            ends = np.cumsum(counts)
            starts = ends - counts
            # ``[low, -high]`` side by side: the two-sided intersection
            # test becomes a single compare-and-reduce (see _window_cat).
            levels.append((np.hstack([lows, -highs]), starts, ends))
            nodes = [child for nd in nodes for child in nd.children]
        self._levels = levels

        sizes = np.fromiter(
            (len(nd.ids) for nd in nodes), dtype=np.int64, count=len(nodes)
        )
        self.leaf_ptr = np.concatenate(([np.int64(0)], np.cumsum(sizes)))
        self._leaf_cat = np.hstack(
            [np.stack([nd.low for nd in nodes]), -np.stack([nd.high for nd in nodes])]
        )
        if self.leaf_ptr[-1] > 0:
            self.leaf_ids = np.concatenate([nd.ids for nd in nodes])
            coords = np.concatenate([nd.coords for nd in nodes])
        else:
            self.leaf_ids = np.empty(0, dtype=np.int64)
            coords = np.empty((0, self.dim), dtype=np.float64)
        # Only the concatenated [x, -x] forms are stored; the plain views
        # below slice them back out, so coordinates exist once per sign.
        self._coords_cat = np.hstack([coords, -coords])

    @property
    def leaf_coords(self) -> np.ndarray:
        """Concatenated per-leaf coordinates (a view, no copy)."""
        return self._coords_cat[:, : self.dim]

    @property
    def leaf_low(self) -> np.ndarray:
        """Stacked leaf MBR lower bounds (a view, no copy)."""
        return self._leaf_cat[:, : self.dim]

    @property
    def leaf_high(self) -> np.ndarray:
        """Stacked leaf MBR upper bounds."""
        return -self._leaf_cat[:, self.dim :]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_arrays(self, mirrored: bool = False) -> Dict[str, np.ndarray]:
        """The frozen traversal as a flat dict of numpy arrays.

        Everything needed to answer window queries is captured:
        per-internal-level ``[low, -high]`` matrices and CSR child ranges,
        the leaf MBRs, pointers, ids and coordinates.  By default the
        concatenated ``[x, -x]`` coordinate form is stored single-sided
        (``leaf_coords``) and re-mirrored by :meth:`from_arrays`, so a
        snapshot costs the same bytes as the raw points.  With
        ``mirrored=True`` the pre-mirrored ``coords_cat`` matrix is stored
        instead — 2x the disk for that member, but :meth:`from_arrays` can
        then adopt it without any copy, which is what keeps arena-snapshot
        loads zero-copy.  Scalar shape metadata rides along as 0-d arrays,
        which keeps the whole dict ``np.savez``-ready.
        """
        arrays: Dict[str, np.ndarray] = {
            "meta": np.array(
                [self.dim, self.count, self.height, self.chunk_points, len(self._levels)],
                dtype=np.int64,
            ),
            "leaf_ptr": self.leaf_ptr,
            "leaf_ids": self.leaf_ids,
            "leaf_cat": self._leaf_cat,
        }
        if mirrored:
            arrays["coords_cat"] = self._coords_cat
        else:
            arrays["leaf_coords"] = self.leaf_coords
        for j, (cat, starts, ends) in enumerate(self._levels):
            arrays[f"level{j}_cat"] = cat
            arrays[f"level{j}_start"] = starts
            arrays[f"level{j}_end"] = ends
        return arrays

    @classmethod
    def from_build(
        cls,
        *,
        dim: int,
        count: int,
        height: int,
        levels: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        leaf_ptr: np.ndarray,
        leaf_ids: np.ndarray,
        leaf_cat: np.ndarray,
        coords_cat: np.ndarray,
        chunk_points: int = DEFAULT_CHUNK_POINTS,
    ) -> "FlatRStarTree":
        """Adopt arrays produced by an array-native builder (no tree walk).

        ``levels`` is the root-first ``(cat, child_start, child_end)``
        list, ``leaf_cat`` the stacked ``[low, -high]`` leaf MBRs and
        ``coords_cat`` the concatenated per-leaf coordinates already in
        ``[x, -x]`` mirrored form.  Used by
        :func:`repro.index.str_build.build_flat_str`, which constructs
        these arrays straight from the points being packed.
        """
        if chunk_points < 1:
            raise ValueError(f"chunk_points must be >= 1, got {chunk_points}")
        flat = cls.__new__(cls)
        flat.dim = int(dim)
        flat.count = int(count)
        flat.height = int(height)
        flat.chunk_points = int(chunk_points)
        flat.stats = RTreeStats()
        flat._levels = list(levels)
        flat.leaf_ptr = leaf_ptr
        flat.leaf_ids = leaf_ids
        flat._leaf_cat = leaf_cat
        flat._coords_cat = coords_cat
        return flat

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "FlatRStarTree":
        """Rebuild a frozen traversal from :meth:`to_arrays` output.

        No tree construction happens — the arrays are adopted as-is.  When
        the dict carries the pre-mirrored ``coords_cat`` member (arena
        snapshots) nothing is copied at all; with the single-sided legacy
        ``leaf_coords`` member the coordinate mirror is the only copy.
        Loading a snapshot therefore costs O(bytes) at worst — never an
        STR bulk load — and O(1) from a mapped arena.
        """
        meta = np.asarray(arrays["meta"], dtype=np.int64).reshape(-1)
        if meta.shape[0] != 5:
            raise ValueError("flat-tree meta must have 5 entries")
        dim, count, height, chunk_points, n_levels = (int(v) for v in meta)
        flat = cls.__new__(cls)
        flat.dim = dim
        flat.count = count
        flat.height = height
        flat.chunk_points = max(1, chunk_points)
        flat.stats = RTreeStats()
        flat._levels = [
            (
                np.ascontiguousarray(arrays[f"level{j}_cat"], dtype=np.float64),
                np.ascontiguousarray(arrays[f"level{j}_start"], dtype=np.int64),
                np.ascontiguousarray(arrays[f"level{j}_end"], dtype=np.int64),
            )
            for j in range(n_levels)
        ]
        flat.leaf_ptr = np.ascontiguousarray(arrays["leaf_ptr"], dtype=np.int64)
        flat.leaf_ids = np.ascontiguousarray(arrays["leaf_ids"], dtype=np.int64)
        flat._leaf_cat = np.ascontiguousarray(arrays["leaf_cat"], dtype=np.float64)
        if "coords_cat" in arrays:
            flat._coords_cat = np.ascontiguousarray(arrays["coords_cat"], dtype=np.float64)
        else:
            coords = np.ascontiguousarray(arrays["leaf_coords"], dtype=np.float64)
            flat._coords_cat = np.hstack([coords, -coords])
        return flat

    # ------------------------------------------------------------------
    # Window queries
    # ------------------------------------------------------------------

    def _candidate_leaves(self, w_cat: np.ndarray) -> np.ndarray:
        """Leaf indices reachable through intersecting internal MBRs.

        Runs the level-wise vectorised descent over the *internal* levels
        only; the (more numerous) leaf MBRs are tested lazily per chunk by
        :meth:`window_query_iter`, so a consumer that stops early never
        pays for them.  ``w_cat`` is the window in concatenated
        ``[w_high, -w_low]`` form: a stored box ``[low, -high]`` meets the
        window iff every component is ``<= w_cat``.
        """
        frontier: np.ndarray | None = None
        for cat, starts, ends in self._levels:
            if frontier is None:  # root level: test every (single) node
                hit = np.flatnonzero((cat <= w_cat).all(axis=1))
            else:
                hit = frontier[(cat[frontier] <= w_cat).all(axis=1)]
            self.stats.node_visits += int(hit.shape[0])
            if hit.shape[0] == 0:
                return np.empty(0, dtype=np.int64)
            frontier = concat_ranges(starts[hit], ends[hit])
        if frontier is None:  # the root itself is the only leaf
            frontier = np.arange(self.num_leaves, dtype=np.int64)
        return frontier

    def window_query_iter(
        self, w_low: np.ndarray, w_high: np.ndarray, first_chunk: Optional[int] = None
    ) -> Iterator[np.ndarray]:
        """Stream ids inside the window in geometrically growing chunks.

        Chunk *contents* follow the pointer-based traversal's candidate
        order (descending leaf, ascending within each leaf); only the
        chunk boundaries differ (merged leaf spans instead of single
        leaves).  Chunks start at ``first_chunk`` points (default
        ``_INITIAL_CHUNK_POINTS``) and double up to ``chunk_points``, so a
        consumer that knows how much it can still verify — DB-LSH passes
        its remaining candidate budget — wastes at most ~2x its
        consumption while full scans proceed in large vectorised strides.
        """
        w_low = np.asarray(w_low, dtype=np.float64).reshape(-1)
        w_high = np.asarray(w_high, dtype=np.float64).reshape(-1)
        if w_low.shape[0] != self.dim or w_high.shape[0] != self.dim:
            raise ValueError("window bounds must match tree dimensionality")
        if self.count == 0:
            return
        # Concatenated forms: box-meets-window and point-in-window each
        # become one compare-and-reduce against the stored [x, -x] arrays.
        w_cat = np.concatenate([w_high, -w_low])
        w_pt = np.concatenate([w_low, -w_high])
        candidates = self._candidate_leaves(w_cat)
        if candidates.shape[0] == 0:
            return
        order = candidates[::-1]  # match the stack traversal's LIFO leaf order
        leaf_ptr = self.leaf_ptr
        cum = np.cumsum(leaf_ptr[order + 1] - leaf_ptr[order])
        pos = 0
        n_leaves = order.shape[0]
        if first_chunk is None:
            first_chunk = _INITIAL_CHUNK_POINTS
        target = min(max(int(first_chunk), 1), self.chunk_points)
        while pos < n_leaves:
            base = int(cum[pos - 1]) if pos else 0
            stop = int(np.searchsorted(cum, base + target, side="left"))
            stop = min(max(stop, pos) + 1, n_leaves)
            block = order[pos:stop]
            hit = block[(self._leaf_cat[block] <= w_cat).all(axis=1)]
            self.stats.leaf_visits += int(hit.shape[0])
            if hit.shape[0]:
                idx = concat_ranges(leaf_ptr[hit], leaf_ptr[hit + 1])
                self.stats.points_scanned += int(idx.shape[0])
                mask = (self._coords_cat[idx] >= w_pt).all(axis=1)
                if mask.any():
                    yield self.leaf_ids[idx[mask]]
            pos = stop
            target = min(target * 2, self.chunk_points)

    def window_query(self, w_low: np.ndarray, w_high: np.ndarray) -> np.ndarray:
        """All point ids inside ``[w_low, w_high]`` (inclusive)."""
        chunks = list(self.window_query_iter(w_low, w_high))
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def window_count(self, w_low: np.ndarray, w_high: np.ndarray) -> int:
        """Number of points inside the window."""
        return sum(len(chunk) for chunk in self.window_query_iter(w_low, w_high))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.count

    @property
    def num_leaves(self) -> int:
        return int(self.leaf_ptr.shape[0] - 1)

    def num_nodes(self) -> int:
        return sum(level[0].shape[0] for level in self._levels) + self.num_leaves

    def all_ids(self) -> np.ndarray:
        """Every stored id (order unspecified); used by invariant tests."""
        return self.leaf_ids.copy()
