"""An in-memory R*-tree over K-dimensional points.

This is the multi-dimensional index DB-LSH builds per projected space
(§IV-B).  It implements the full R*-tree of Beckmann et al.:

* **ChooseSubtree** — minimum overlap enlargement at the leaf level,
  minimum area enlargement above it;
* **R\\* split** — axis chosen by minimum margin sum, distribution chosen
  by minimum overlap then minimum area;
* **forced reinsert** — on first overflow per level per insertion, the 30%
  of entries farthest from the node centre are reinserted;
* **STR bulk loading** — Sort-Tile-Recursive packing, the strategy §VI-B1
  credits for DB-LSH's smallest indexing time;
* **window queries** — both a materialised form and an *incremental
  generator*, which is what lets Algorithm 1 stop after ``2tL + k``
  verified candidates without scanning the rest of the window.

Points are referenced by integer ids; leaf nodes store their coordinates
so window filtering is a single vectorised comparison.

For query-heavy workloads the pointer-based traversal can be frozen into
the contiguous array form of :class:`repro.index.flat.FlatRStarTree` via
:meth:`RStarTree.freeze`; the frozen form answers the same window queries
with level-wise vectorised masks (one numpy call per level instead of one
Python iteration per node) and is what the DB-LSH ``rstar`` backend
queries by default.  The freeze is a snapshot: after further ``insert``
calls it must be taken again.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.index.mbr import MBR, points_in_window_mask, windows_intersect_mask

_REINSERT_FRACTION = 0.3

#: R* split evaluates candidate distributions along every axis — O(K) work
#: per axis.  Beyond this many dimensions (theory-derived K can reach the
#: thousands) only the widest axes are swept; the margin criterion favours
#: wide axes anyway, and the cap keeps inserts O(K) instead of O(K^2).
_MAX_SPLIT_AXES = 32


def _log_areas(extents: np.ndarray) -> np.ndarray:
    """Row-wise log-domain areas: sums of log extents (zero extent -> -inf).

    Hyperrectangle area products overflow float64 once the dimensionality
    times the mean log extent passes ~709; the log-domain form never does,
    and as a *sort key* it orders identically (log is monotone).
    """
    with np.errstate(divide="ignore"):
        return np.sum(np.log(extents), axis=1)


def _finite_max(values: np.ndarray) -> float:
    """Largest finite entry, or 0.0 when every entry is infinite."""
    finite = values[np.isfinite(values)]
    return float(finite.max()) if finite.size else 0.0


@dataclass
class RTreeStats:
    """Work counters exposed for hardware-independent cost accounting."""

    node_visits: int = 0
    leaf_visits: int = 0
    points_scanned: int = 0
    splits: int = 0
    reinserts: int = 0

    def reset_query_counters(self) -> None:
        """Zero the per-query counters (build counters are preserved)."""
        self.node_visits = 0
        self.leaf_visits = 0
        self.points_scanned = 0


class _Node:
    """Tree node; ``level == 0`` marks a leaf."""

    __slots__ = ("level", "ids", "coords", "children", "low", "high")

    def __init__(self, level: int, dim: int) -> None:
        self.level = level
        self.ids: np.ndarray = np.empty(0, dtype=np.int64)
        self.coords: np.ndarray = np.empty((0, dim), dtype=np.float64)
        self.children: List["_Node"] = []
        self.low = np.full(dim, np.inf)
        self.high = np.full(dim, -np.inf)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def size(self) -> int:
        return len(self.ids) if self.is_leaf else len(self.children)

    def mbr(self) -> MBR:
        return MBR(self.low.copy(), self.high.copy())

    def refresh_bounds(self) -> None:
        """Recompute this node's MBR from its entries."""
        if self.is_leaf:
            if len(self.ids) == 0:
                self.low.fill(np.inf)
                self.high.fill(-np.inf)
            else:
                self.low = self.coords.min(axis=0)
                self.high = self.coords.max(axis=0)
        else:
            lows = np.stack([c.low for c in self.children])
            highs = np.stack([c.high for c in self.children])
            self.low = lows.min(axis=0)
            self.high = highs.max(axis=0)

    def child_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        lows = np.stack([c.low for c in self.children])
        highs = np.stack([c.high for c in self.children])
        return lows, highs


class RStarTree:
    """R*-tree supporting insertion, STR bulk loading and window queries.

    Parameters
    ----------
    dim:
        Dimensionality of the indexed points (the (K, L)-index's ``K``).
    max_entries:
        Node capacity ``M``; ``min_entries`` defaults to ``0.4 * M`` as in
        the R*-tree paper.
    """

    def __init__(self, dim: int, max_entries: int = 32, min_entries: Optional[int] = None) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        self.dim = int(dim)
        self.max_entries = int(max_entries)
        self.min_entries = int(min_entries) if min_entries is not None else max(
            2, int(0.4 * max_entries)
        )
        if self.min_entries > self.max_entries // 2:
            self.min_entries = self.max_entries // 2
        self.root = _Node(0, self.dim)
        self.count = 0
        self.stats = RTreeStats()

    # ------------------------------------------------------------------
    # Bulk loading (STR)
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        points: np.ndarray,
        ids: Optional[np.ndarray] = None,
        max_entries: int = 32,
    ) -> "RStarTree":
        """Build a packed tree with Sort-Tile-Recursive loading.

        ``points`` is an (n, K) array; ``ids`` defaults to ``0..n-1``.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        n, dim = points.shape
        tree = cls(dim, max_entries=max_entries)
        if n == 0:
            return tree
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape[0] != n:
                raise ValueError("ids length must match number of points")

        order = tree._str_order(points, np.arange(n), 0)
        leaf_cap = tree.max_entries
        leaves: List[_Node] = []
        for start in range(0, n, leaf_cap):
            chunk = order[start : start + leaf_cap]
            leaf = _Node(0, dim)
            leaf.ids = ids[chunk].copy()
            leaf.coords = points[chunk].copy()
            leaf.refresh_bounds()
            leaves.append(leaf)

        level = 0
        nodes = leaves
        while len(nodes) > 1:
            level += 1
            parents: List[_Node] = []
            for start in range(0, len(nodes), tree.max_entries):
                parent = _Node(level, dim)
                parent.children = nodes[start : start + tree.max_entries]
                parent.refresh_bounds()
                parents.append(parent)
            nodes = parents
        tree.root = nodes[0]
        tree.count = n
        return tree

    def _str_order(self, points: np.ndarray, subset: np.ndarray, axis: int) -> np.ndarray:
        """Recursive STR ordering of ``subset`` starting at ``axis``."""
        if axis >= self.dim - 1 or len(subset) <= self.max_entries:
            return subset[np.argsort(points[subset, axis], kind="stable")]
        remaining_dims = self.dim - axis
        n_leaves = math.ceil(len(subset) / self.max_entries)
        slabs = max(1, math.ceil(n_leaves ** (1.0 / remaining_dims)))
        slab_size = math.ceil(len(subset) / slabs)
        ordered = subset[np.argsort(points[subset, axis], kind="stable")]
        pieces = [
            self._str_order(points, ordered[start : start + slab_size], axis + 1)
            for start in range(0, len(ordered), slab_size)
        ]
        return np.concatenate(pieces)

    # ------------------------------------------------------------------
    # Insertion (R* heuristics)
    # ------------------------------------------------------------------

    def insert(self, point_id: int, point: np.ndarray) -> None:
        """Insert one point with the full R* heuristics."""
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        if point.shape[0] != self.dim:
            raise ValueError(f"point has dimension {point.shape[0]}, expected {self.dim}")
        # Levels that have already done a forced reinsert this insertion.
        overflowed_levels: set = set()
        self._insert_point(int(point_id), point, overflowed_levels)
        self.count += 1

    def _insert_point(self, point_id: int, point: np.ndarray, overflowed: set) -> None:
        path = self._choose_path(point, target_level=0)
        leaf = path[-1]
        leaf.ids = np.append(leaf.ids, np.int64(point_id))
        leaf.coords = np.vstack([leaf.coords, point[None, :]])
        leaf.low = np.minimum(leaf.low, point)
        leaf.high = np.maximum(leaf.high, point)
        self._propagate_bounds(path)
        if leaf.size() > self.max_entries:
            self._overflow_treatment(path, overflowed)

    def _insert_node(self, node: _Node, overflowed: set) -> None:
        """Reinsert a subtree at its original level (internal reinserts)."""
        path = self._choose_path_mbr(node.mbr(), target_level=node.level + 1)
        parent = path[-1]
        parent.children.append(node)
        parent.low = np.minimum(parent.low, node.low)
        parent.high = np.maximum(parent.high, node.high)
        self._propagate_bounds(path)
        if parent.size() > self.max_entries:
            self._overflow_treatment(path, overflowed)

    def _choose_path(self, point: np.ndarray, target_level: int) -> List[_Node]:
        box = MBR(point.copy(), point.copy())
        return self._choose_path_mbr(box, target_level)

    def _choose_path_mbr(self, box: MBR, target_level: int) -> List[_Node]:
        """Descend from root to a node at ``target_level``, R*-style."""
        node = self.root
        path = [node]
        while node.level > target_level:
            node = self._choose_subtree(node, box)
            path.append(node)
        return path

    def _choose_subtree(self, node: _Node, box: MBR) -> _Node:
        """Vectorised R* ChooseSubtree over the node's stacked child bounds."""
        lows, highs = node.child_bounds()  # (m, K) each
        enlarged_low = np.minimum(lows, box.low)
        enlarged_high = np.maximum(highs, box.high)
        with np.errstate(over="ignore", invalid="ignore"):
            areas = np.prod(highs - lows, axis=1)
            enlarged_areas = np.prod(enlarged_high - enlarged_low, axis=1)
        log_domain = not (
            np.isfinite(areas).all() and np.isfinite(enlarged_areas).all()
        )
        if log_domain:
            # Linear area products overflowed (large-K trees); switch every
            # key to the log domain.  The area key orders identically, and
            # the enlargement differences are formed at a shared scale
            # exp(-s) — a positive common factor preserving their order.
            areas = _log_areas(highs - lows)
            enlarged_log = _log_areas(enlarged_high - enlarged_low)
            scale = _finite_max(enlarged_log)
            enlargement = np.exp(enlarged_log - scale) - np.exp(areas - scale)
        else:
            enlargement = enlarged_areas - areas
        if node.level == 1:
            # Children are leaves: minimise overlap enlargement first.
            overlap_delta = self._overlap_deltas(
                lows, highs, enlarged_low, enlarged_high, log_domain
            )
            best = int(np.lexsort((areas, enlargement, overlap_delta))[0])
        else:
            best = int(np.lexsort((areas, enlargement))[0])
        return node.children[best]

    @staticmethod
    def _overlap_deltas(
        lows: np.ndarray,
        highs: np.ndarray,
        enlarged_low: np.ndarray,
        enlarged_high: np.ndarray,
        log_domain: bool,
    ) -> np.ndarray:
        """Overlap-sum enlargement of inserting into each child.

        With ``log_domain`` the pairwise overlap areas are exponentiated at
        a shared scale before summing (overlap is bounded by the enlarged
        areas, so whenever those were finite the linear path is exact and
        is taken unchanged).
        """
        m = lows.shape[0]
        overlap_delta = np.empty(m)
        if not log_domain:
            for i in range(m):
                before = np.prod(
                    np.clip(np.minimum(highs[i], highs) - np.maximum(lows[i], lows),
                            0.0, None),
                    axis=1,
                )
                after = np.prod(
                    np.clip(
                        np.minimum(enlarged_high[i], highs)
                        - np.maximum(enlarged_low[i], lows),
                        0.0,
                        None,
                    ),
                    axis=1,
                )
                before[i] = after[i] = 0.0
                overlap_delta[i] = after.sum() - before.sum()
            return overlap_delta
        log_before = np.empty((m, m))
        log_after = np.empty((m, m))
        for i in range(m):
            log_before[i] = _log_areas(
                np.clip(np.minimum(highs[i], highs) - np.maximum(lows[i], lows),
                        0.0, None)
            )
            log_after[i] = _log_areas(
                np.clip(
                    np.minimum(enlarged_high[i], highs)
                    - np.maximum(enlarged_low[i], lows),
                    0.0,
                    None,
                )
            )
            log_before[i, i] = log_after[i, i] = -np.inf
        scale = _finite_max(log_after)
        return (
            np.exp(log_after - scale).sum(axis=1)
            - np.exp(log_before - scale).sum(axis=1)
        )

    def _propagate_bounds(self, path: List[_Node]) -> None:
        for node in reversed(path):
            node.refresh_bounds()

    def _overflow_treatment(self, path: List[_Node], overflowed: set) -> None:
        node = path[-1]
        if node is not self.root and node.level not in overflowed:
            overflowed.add(node.level)
            self._forced_reinsert(path, overflowed)
        else:
            self._split(path, overflowed)

    def _forced_reinsert(self, path: List[_Node], overflowed: set) -> None:
        node = path[-1]
        self.stats.reinserts += 1
        center = 0.5 * (node.low + node.high)
        p = max(1, int(_REINSERT_FRACTION * node.size()))
        if node.is_leaf:
            dist = np.linalg.norm(node.coords - center, axis=1)
            far = np.argsort(dist)[::-1][:p]
            keep = np.setdiff1d(np.arange(node.size()), far)
            removed = [(int(node.ids[i]), node.coords[i].copy()) for i in far]
            node.ids = node.ids[keep]
            node.coords = node.coords[keep]
            node.refresh_bounds()
            self._propagate_bounds(path)
            for point_id, point in removed:
                self._insert_point(point_id, point, overflowed)
        else:
            centers = np.stack([0.5 * (c.low + c.high) for c in node.children])
            dist = np.linalg.norm(centers - center, axis=1)
            far = set(np.argsort(dist)[::-1][:p].tolist())
            removed_nodes = [c for i, c in enumerate(node.children) if i in far]
            node.children = [c for i, c in enumerate(node.children) if i not in far]
            node.refresh_bounds()
            self._propagate_bounds(path)
            for child in removed_nodes:
                self._insert_node(child, overflowed)

    def _split(self, path: List[_Node], overflowed: set) -> None:
        node = path[-1]
        self.stats.splits += 1
        left, right = self._rstar_split(node)
        if node is self.root:
            new_root = _Node(node.level + 1, self.dim)
            new_root.children = [left, right]
            new_root.refresh_bounds()
            self.root = new_root
            return
        parent = path[-2]
        parent.children.remove(node)
        parent.children.extend([left, right])
        self._propagate_bounds(path[:-1])
        if parent.size() > self.max_entries:
            self._overflow_treatment(path[:-1], overflowed)

    def _rstar_split(self, node: _Node) -> Tuple[_Node, _Node]:
        """R* split: min-margin axis, then min-overlap distribution.

        All candidate distributions are evaluated with prefix/suffix
        running bounds (``np.minimum.accumulate``), so the whole split
        decision costs O(M * K) numpy work instead of O(M^2 * K) python
        loops.  Distributions follow the low-value ordering per axis (the
        classic simplification of the R* paper's low+high orderings).
        """
        m = self.min_entries
        if node.is_leaf:
            entry_lows = node.coords
            entry_highs = node.coords
        else:
            entry_lows = np.stack([c.low for c in node.children])
            entry_highs = np.stack([c.high for c in node.children])
        total = entry_lows.shape[0]
        splits = np.arange(m, total - m + 1)

        def split_tables(order: np.ndarray):
            sl, sh = entry_lows[order], entry_highs[order]
            pref_low = np.minimum.accumulate(sl, axis=0)
            pref_high = np.maximum.accumulate(sh, axis=0)
            suff_low = np.minimum.accumulate(sl[::-1], axis=0)[::-1]
            suff_high = np.maximum.accumulate(sh[::-1], axis=0)[::-1]
            # Row s of each table describes the split "first s+? entries".
            left_low, left_high = pref_low[splits - 1], pref_high[splits - 1]
            right_low, right_high = suff_low[splits], suff_high[splits]
            return left_low, left_high, right_low, right_high

        if self.dim <= _MAX_SPLIT_AXES:
            axes = range(self.dim)
        else:
            # Large-K safeguard: sweep only the widest axes (ascending for
            # deterministic tie-breaks).  The margin criterion below picks
            # a wide axis in practice, and the full sweep would make every
            # split O(K^2).
            extent = entry_highs.max(axis=0) - entry_lows.min(axis=0)
            axes = np.sort(np.argpartition(extent, -_MAX_SPLIT_AXES)[-_MAX_SPLIT_AXES:])

        best_axis, best_axis_margin, axis_orders = 0, math.inf, {}
        for axis in axes:
            order = np.argsort(entry_lows[:, axis], kind="stable")
            axis_orders[axis] = order
            ll, lh, rl, rh = split_tables(order)
            margin_sum = float(np.sum(lh - ll) + np.sum(rh - rl))
            if margin_sum < best_axis_margin:
                best_axis_margin = margin_sum
                best_axis = axis

        order = axis_orders[best_axis]
        ll, lh, rl, rh = split_tables(order)
        overlap_ext = np.clip(np.minimum(lh, rh) - np.maximum(ll, rl), 0.0, None)
        with np.errstate(over="ignore", invalid="ignore"):
            overlaps = np.prod(overlap_ext, axis=1)
            area_sums = np.prod(lh - ll, axis=1) + np.prod(rh - rl, axis=1)
        if not (np.isfinite(overlaps).all() and np.isfinite(area_sums).all()):
            # Overflowed at large K: compare distributions in the log
            # domain instead (identical orderings, no inf/NaN).
            overlaps = _log_areas(overlap_ext)
            area_sums = np.logaddexp(_log_areas(lh - ll), _log_areas(rh - rl))
        best_split = int(splits[np.lexsort((area_sums, overlaps))[0]])

        left_idx, right_idx = order[:best_split], order[best_split:]
        left = _Node(node.level, self.dim)
        right = _Node(node.level, self.dim)
        if node.is_leaf:
            left.ids, left.coords = node.ids[left_idx], node.coords[left_idx]
            right.ids, right.coords = node.ids[right_idx], node.coords[right_idx]
        else:
            left.children = [node.children[i] for i in left_idx]
            right.children = [node.children[i] for i in right_idx]
        left.refresh_bounds()
        right.refresh_bounds()
        return left, right

    # ------------------------------------------------------------------
    # Window queries
    # ------------------------------------------------------------------

    def window_query(self, w_low: np.ndarray, w_high: np.ndarray) -> np.ndarray:
        """All point ids inside ``[w_low, w_high]`` (inclusive)."""
        chunks = list(self.window_query_iter(w_low, w_high))
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def window_query_iter(
        self, w_low: np.ndarray, w_high: np.ndarray
    ) -> Iterator[np.ndarray]:
        """Stream ids inside the window, one leaf-chunk at a time.

        Lazy evaluation is what gives Algorithm 1 its early termination:
        the caller stops consuming as soon as ``2tL + k`` candidates have
        been verified, and untouched subtrees are never visited.
        """
        w_low = np.asarray(w_low, dtype=np.float64).reshape(-1)
        w_high = np.asarray(w_high, dtype=np.float64).reshape(-1)
        if w_low.shape[0] != self.dim or w_high.shape[0] != self.dim:
            raise ValueError("window bounds must match tree dimensionality")
        if self.count == 0:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.stats.node_visits += 1
            if node.is_leaf:
                self.stats.leaf_visits += 1
                self.stats.points_scanned += node.size()
                if node.size() == 0:
                    continue
                mask = points_in_window_mask(node.coords, w_low, w_high)
                if mask.any():
                    yield node.ids[mask]
            else:
                lows, highs = node.child_bounds()
                mask = windows_intersect_mask(lows, highs, w_low, w_high)
                for i in np.flatnonzero(mask):
                    stack.append(node.children[i])

    def window_count(self, w_low: np.ndarray, w_high: np.ndarray) -> int:
        """Number of points inside the window."""
        return sum(len(chunk) for chunk in self.window_query_iter(w_low, w_high))

    def freeze(self, chunk_points: Optional[int] = None):
        """Snapshot into a :class:`~repro.index.flat.FlatRStarTree`.

        The frozen form answers the same window queries with level-wise
        vectorised masks; it does not track subsequent ``insert`` calls.
        """
        from repro.index.flat import DEFAULT_CHUNK_POINTS, FlatRStarTree

        return FlatRStarTree(
            self,
            chunk_points=DEFAULT_CHUNK_POINTS if chunk_points is None else chunk_points,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.count

    @property
    def height(self) -> int:
        """Number of levels (a single leaf root has height 1)."""
        return self.root.level + 1

    def num_nodes(self) -> int:
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return total

    def all_ids(self) -> np.ndarray:
        """Every stored id (order unspecified); used by invariant tests."""
        collected = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if node.size():
                    collected.append(node.ids)
            else:
                stack.extend(node.children)
        if not collected:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(collected)

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated.

        Checks bounding-box containment, node occupancy and level
        consistency; used heavily by the property-based tests.
        """
        stack = [(self.root, True)]
        while stack:
            node, is_root = stack.pop()
            size = node.size()
            if not is_root:
                if size < self.min_entries:
                    raise AssertionError(
                        f"underfull node: {size} < min_entries {self.min_entries}"
                    )
            if size > self.max_entries:
                raise AssertionError(f"overfull node: {size} > {self.max_entries}")
            if node.is_leaf:
                if size:
                    if not (np.all(node.coords >= node.low) and np.all(node.coords <= node.high)):
                        raise AssertionError("leaf MBR does not contain its points")
            else:
                for child in node.children:
                    if child.level != node.level - 1:
                        raise AssertionError("child level mismatch")
                    if np.any(child.low < node.low) or np.any(child.high > node.high):
                        raise AssertionError("parent MBR does not contain child MBR")
                    stack.append((child, False))
