"""Minimum bounding rectangles (MBRs) for the R*-tree.

An MBR is the axis-aligned box ``[low, high]`` in K-dimensional space.
These operations implement exactly the geometric predicates the R*-tree
split and insertion heuristics need: area, margin, enlargement, overlap,
and intersection with query windows.  All functions are numpy-vectorised
so the tree can evaluate a node's children in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np


@dataclass
class MBR:
    """Axis-aligned bounding box with inclusive bounds."""

    low: np.ndarray
    high: np.ndarray

    def __post_init__(self) -> None:
        self.low = np.asarray(self.low, dtype=np.float64)
        self.high = np.asarray(self.high, dtype=np.float64)
        if self.low.shape != self.high.shape:
            raise ValueError("low and high must have the same shape")
        if np.any(self.low > self.high):
            raise ValueError("MBR low bound exceeds high bound")

    @classmethod
    def of_points(cls, points: np.ndarray) -> "MBR":
        """Tight MBR of a non-empty (n, K) point set."""
        points = np.atleast_2d(points)
        if points.shape[0] == 0:
            raise ValueError("cannot bound an empty point set")
        return cls(points.min(axis=0), points.max(axis=0))

    @classmethod
    def union_of(cls, boxes: Iterable["MBR"]) -> "MBR":
        """Smallest MBR containing every box in ``boxes``."""
        boxes = list(boxes)
        if not boxes:
            raise ValueError("cannot union zero boxes")
        low = np.min(np.stack([b.low for b in boxes]), axis=0)
        high = np.max(np.stack([b.high for b in boxes]), axis=0)
        return cls(low, high)

    @property
    def dim(self) -> int:
        return self.low.shape[0]

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.low + self.high)

    def area(self) -> float:
        """Hyper-volume of the box (0 for degenerate boxes)."""
        return float(np.prod(self.high - self.low))

    def margin(self) -> float:
        """Sum of edge lengths (the R* split's perimeter surrogate)."""
        return float(np.sum(self.high - self.low))

    def union(self, other: "MBR") -> "MBR":
        return MBR(np.minimum(self.low, other.low), np.maximum(self.high, other.high))

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed to absorb ``other`` (ChooseSubtree metric)."""
        low = np.minimum(self.low, other.low)
        high = np.maximum(self.high, other.high)
        return float(np.prod(high - low)) - self.area()

    def overlap(self, other: "MBR") -> float:
        """Hyper-volume of the intersection (0 when disjoint)."""
        low = np.maximum(self.low, other.low)
        high = np.minimum(self.high, other.high)
        extent = high - low
        if np.any(extent < 0):
            return 0.0
        return float(np.prod(extent))

    def intersects_window(self, w_low: np.ndarray, w_high: np.ndarray) -> bool:
        """True when the box meets the window ``[w_low, w_high]``."""
        return bool(np.all(self.low <= w_high) and np.all(self.high >= w_low))

    def contained_in_window(self, w_low: np.ndarray, w_high: np.ndarray) -> bool:
        """True when the box lies entirely inside the window."""
        return bool(np.all(self.low >= w_low) and np.all(self.high <= w_high))

    def contains_point(self, point: np.ndarray) -> bool:
        return bool(np.all(point >= self.low) and np.all(point <= self.high))

    def min_distance2(self, point: np.ndarray) -> float:
        """Squared Euclidean distance from ``point`` to the box (0 inside)."""
        delta = np.maximum(self.low - point, 0.0) + np.maximum(point - self.high, 0.0)
        return float(delta @ delta)


def stack_bounds(boxes: Iterable[MBR]) -> Tuple[np.ndarray, np.ndarray]:
    """Stack child boxes into ``(lows, highs)`` matrices for vector tests."""
    boxes = list(boxes)
    lows = np.stack([b.low for b in boxes])
    highs = np.stack([b.high for b in boxes])
    return lows, highs


def windows_intersect_mask(
    lows: np.ndarray, highs: np.ndarray, w_low: np.ndarray, w_high: np.ndarray
) -> np.ndarray:
    """Vectorised window-intersection test over stacked child bounds."""
    return ((lows <= w_high) & (highs >= w_low)).all(axis=1)


def points_in_window_mask(
    points: np.ndarray, w_low: np.ndarray, w_high: np.ndarray
) -> np.ndarray:
    """Vectorised inclusive containment test of (n, K) points in a window."""
    return ((points >= w_low) & (points <= w_high)).all(axis=1)
