"""Lightweight wall-clock timing used by the experiment runner.

The paper reports average query time over 10 repetitions of 100 queries;
:class:`Timer` accumulates elapsed time across repeated ``with`` blocks so
the runner can do the same without juggling raw ``perf_counter`` values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating context-manager timer.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    >>> timer.count
    1
    """

    elapsed: float = 0.0
    count: int = 0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed += time.perf_counter() - self._start
        self.count += 1

    def reset(self) -> None:
        """Zero the accumulated time and invocation count."""
        self.elapsed = 0.0
        self.count = 0

    @property
    def mean(self) -> float:
        """Mean elapsed seconds per ``with`` block (0.0 before first use)."""
        if self.count == 0:
            return 0.0
        return self.elapsed / self.count

    @property
    def mean_ms(self) -> float:
        """Mean elapsed milliseconds per ``with`` block."""
        return self.mean * 1e3
