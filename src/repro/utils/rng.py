"""Deterministic random number generation helpers.

Every stochastic component of the library (hash function sampling, dataset
generation, query sampling) accepts an explicit ``seed`` so experiments can
be regenerated bit-for-bit.  These helpers centralise the conversion from
user-facing seeds to :class:`numpy.random.Generator` instances and the
spawning of independent child streams.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]

# Re-exported so callers do not need to import numpy.random directly.
SeedSequence = np.random.SeedSequence


def default_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (non-deterministic), an integer, a sequence of
    integers, a :class:`numpy.random.SeedSequence`, or an existing
    :class:`numpy.random.Generator` (returned unchanged so callers can pass
    either form).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from ``seed``.

    Used to give each of the ``L`` projected spaces of an LSH index its own
    stream, so adding or removing spaces never perturbs the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        children = seed.bit_generator.seed_seq.spawn(count)  # type: ignore[union-attr]
        return [np.random.default_rng(child) for child in children]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def salted_rng(seed: SeedLike, *salt: int) -> np.random.Generator:
    """A generator on a stream salted with component-specific tags.

    Library components (hash families, index builders) must never share a
    raw seed's stream with user data generation: a dataset built from
    ``default_rng(0)`` and an index hashing with ``default_rng(0)`` would
    draw *identical* numbers, making projections pathologically correlated
    with the data.  Salting with a per-component tag keeps determinism
    (same seed, same component, same stream) while guaranteeing disjoint
    streams across components.  ``None`` and existing generators pass
    through unchanged.
    """
    if seed is None or isinstance(seed, np.random.Generator):
        return default_rng(seed)
    return default_rng(derive_seed(seed, *salt))


def derive_seed(seed: SeedLike, *salt: int) -> Optional[np.random.SeedSequence]:
    """Derive a child seed sequence from ``seed`` and integer ``salt`` values.

    Returns ``None`` when ``seed`` is ``None`` (keeps non-determinism
    explicit rather than silently fixing a seed).
    """
    if seed is None:
        return None
    if isinstance(seed, np.random.Generator):
        raise TypeError("derive_seed requires a seed value, not a Generator")
    if isinstance(seed, np.random.SeedSequence):
        # Preserve the existing derivation path and extend it.
        return np.random.SeedSequence(
            entropy=seed.entropy, spawn_key=tuple(seed.spawn_key) + tuple(salt)
        )
    return np.random.SeedSequence(entropy=seed, spawn_key=tuple(salt))
