"""Reusable per-query scratch buffers for the vectorized query engine.

A DB-LSH query must verify each candidate at most once even though the
windows at successive radii nest.  The seed implementation allocated a
fresh ``n``-element boolean array per query — an O(n) cost *per query*
that dwarfs the O(2tL + k) work the algorithm actually performs.

:class:`GenerationMask` replaces that allocation with a generation-stamped
``int32`` buffer allocated once per index (or per worker thread) and
reused across queries: starting a query bumps the generation counter, and
an id counts as *seen* when its stamp equals the current generation.
Resetting is O(1); the buffer is only re-zeroed when the 31-bit counter
would overflow (once every ~2 billion queries).
"""

from __future__ import annotations

import numpy as np

_GEN_LIMIT = np.iinfo(np.int32).max


class GenerationMask:
    """Generation-stamped membership mask over ids ``0 .. size-1``.

    Not thread-safe: concurrent queries must each own a mask (the batched
    query path hands one to every worker).
    """

    __slots__ = ("_stamp", "_gen")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self._stamp = np.zeros(int(size), dtype=np.int32)
        self._gen = 0

    def __len__(self) -> int:
        return int(self._stamp.shape[0])

    @property
    def generation(self) -> int:
        return self._gen

    def grow(self, size: int) -> None:
        """Extend the id space to ``size`` (new ids start unseen)."""
        extra = int(size) - len(self)
        if extra > 0:
            self._stamp = np.concatenate(
                [self._stamp, np.zeros(extra, dtype=np.int32)]
            )

    def begin(self) -> "GenerationMask":
        """Start a new query: O(1) reset of the whole mask."""
        if self._gen >= _GEN_LIMIT - 1:
            self._stamp.fill(0)
            self._gen = 0
        self._gen += 1
        return self

    def fresh(self, ids: np.ndarray) -> np.ndarray:
        """Return the not-yet-seen subset of ``ids`` and mark it seen.

        ``ids`` must not contain duplicates (window queries never emit
        them: each point lives in exactly one leaf).
        """
        unseen = self._stamp[ids] != self._gen
        if unseen.all():
            fresh = ids
        else:
            fresh = ids[unseen]
        self._stamp[fresh] = self._gen
        return fresh

    def mark(self, ids: np.ndarray) -> None:
        """Mark ``ids`` seen for this query without reporting freshness.

        Used to pre-mark tombstoned ids before the probe rounds start:
        a deleted point is then never verified, never charged against
        the candidate budget, and never enters the heap — the same
        footprint it would have in a from-scratch rebuild without it.
        """
        self._stamp[ids] = self._gen
