"""Argument validation shared across the public API surface.

All user-facing constructors and query methods funnel through these
checks so error messages are consistent and tests can assert on them.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Ensure ``value`` is positive (or non-negative when ``strict=False``)."""
    value = float(value)
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Ensure ``value`` is a probability in the open interval (0, 1)."""
    value = float(value)
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must lie strictly between 0 and 1, got {value}")
    return value


def check_dataset(data: np.ndarray) -> np.ndarray:
    """Validate and normalise a dataset to a C-contiguous float64 (n, d) array."""
    array = np.ascontiguousarray(data, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"dataset must be 2-D (n, d), got shape {array.shape}")
    if array.shape[0] == 0:
        raise ValueError("dataset must contain at least one point")
    if array.shape[1] == 0:
        raise ValueError("dataset must have at least one dimension")
    if not np.isfinite(array).all():
        raise ValueError("dataset contains NaN or infinite values")
    return array


def check_query(query: np.ndarray, dim: int) -> np.ndarray:
    """Validate a single query point against the indexed dimensionality."""
    vector = np.ascontiguousarray(query, dtype=np.float64).reshape(-1)
    if vector.shape[0] != dim:
        raise ValueError(f"query has dimension {vector.shape[0]}, index expects {dim}")
    if not np.isfinite(vector).all():
        raise ValueError("query contains NaN or infinite values")
    return vector


def check_queries(queries: np.ndarray, dim: int) -> np.ndarray:
    """Validate a query batch to a C-contiguous float64 (m, d) array.

    A single row is promoted to shape (1, d); ``m = 0`` is allowed (the
    batched query paths return an empty result list for it).
    """
    array = np.atleast_2d(np.ascontiguousarray(queries, dtype=np.float64))
    if array.ndim != 2 or array.shape[1] != dim:
        raise ValueError(
            f"queries have dimension {array.shape[-1]}, index expects {dim}"
        )
    if not np.isfinite(array).all():
        raise ValueError("queries contain NaN or infinite values")
    return array
