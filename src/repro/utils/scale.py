"""Data-scale estimation shared by every method with a radius schedule.

The paper's radius schedule starts at ``r = 1`` (its datasets are scaled
so unit radii are meaningful).  Real-world features come at arbitrary
scales, so methods here optionally estimate the typical nearest-neighbor
distance from a small sample and anchor their schedules / bucket widths
to it.  Every method uses *this* estimator with *the same* default seed,
so auto-scaling never advantages one method over another.
"""

from __future__ import annotations

import numpy as np

_SCALE_SEED = 12345


def estimate_nn_distance(data: np.ndarray, sample: int = 64, seed: int = _SCALE_SEED) -> float:
    """Median nearest-neighbor distance of a random sample of points.

    Returns 0.0 for degenerate inputs (single point, all duplicates); the
    caller should fall back to its configured constant in that case.
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if n < 2:
        return 0.0
    rng = np.random.default_rng(seed)
    idx = rng.choice(n, size=min(sample, n), replace=False)
    nn = np.empty(idx.shape[0])
    for row, i in enumerate(idx):
        dists = np.linalg.norm(data - data[i], axis=1)
        dists[i] = np.inf
        nn[row] = dists.min()
    finite = nn[np.isfinite(nn)]
    if finite.size == 0:
        return 0.0
    return float(np.median(finite))
