"""Data-scale estimation shared by every method with a radius schedule.

The paper's radius schedule starts at ``r = 1`` (its datasets are scaled
so unit radii are meaningful).  Real-world features come at arbitrary
scales, so methods here optionally estimate the typical nearest-neighbor
distance from a small sample and anchor their schedules / bucket widths
to it.  Every method uses *this* estimator with *the same* default seed,
so auto-scaling never advantages one method over another.
"""

from __future__ import annotations

import numpy as np

_SCALE_SEED = 12345


def estimate_nn_distance(data: np.ndarray, sample: int = 64, seed: int = _SCALE_SEED) -> float:
    """Median nearest-neighbor distance of a random sample of points.

    Returns 0.0 for degenerate inputs (single point, all duplicates); the
    caller should fall back to its configured constant in that case.

    All sample-to-dataset distances come out of one matrix product per
    row block (``|x - s|^2 = |x|^2 - 2 x.s + |s|^2``) instead of a Python
    loop of full-dataset subtractions — at n = 100k this estimator was
    the single largest cost of ``DBLSH.fit``.  The data is centered on
    the sample mean first: the expansion cancels catastrophically when
    point norms dwarf point *separations* (a tight cluster far from the
    origin), and distances are translation-invariant, so centering keeps
    the squared terms at the separation scale.  Residual ulp-level drift
    versus direct subtraction only perturbs the estimate (itself a
    sampled median) immeasurably.
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if n < 2:
        return 0.0
    rng = np.random.default_rng(seed)
    idx = rng.choice(n, size=min(sample, n), replace=False)
    center = data[idx].mean(axis=0)
    samples = data[idx] - center
    sample_norms2 = np.einsum("ij,ij->i", samples, samples)
    nn2 = np.full(idx.shape[0], np.inf)
    # Block over dataset rows so the distance matrix stays ~a few MB.
    block = max(1, (1 << 22) // max(1, idx.shape[0]))
    for start in range(0, n, block):
        stop = min(start + block, n)
        rows = data[start:stop] - center
        row_norms2 = np.einsum("ij,ij->i", rows, rows)
        d2 = row_norms2[:, None] - 2.0 * (rows @ samples.T)
        d2 += sample_norms2[None, :]
        # Exact duplicates must come out exactly 0 (the degenerate-input
        # contract above): the expansion leaves an ulp-scale residual, so
        # clamp anything below rounding resolution relative to the norms.
        d2[d2 <= 1e-12 * (row_norms2[:, None] + sample_norms2[None, :])] = 0.0
        # Exclude each sample's own row (by index, not by value, so
        # duplicate points elsewhere still count at distance 0).
        inside = (idx >= start) & (idx < stop)
        d2[idx[inside] - start, np.flatnonzero(inside)] = np.inf
        np.minimum(nn2, d2.min(axis=0), out=nn2)
    finite = nn2[np.isfinite(nn2)]
    if finite.size == 0:
        return 0.0
    return float(np.median(np.sqrt(finite)))
