"""Process and mapping memory accounting from ``/proc`` (Linux).

The zero-copy snapshot work (arena container, :mod:`repro.io.snapshot`)
makes two physical-memory claims that plain RSS cannot check:

* a mapped load should *allocate* almost nothing — the data pages live in
  the kernel page cache, not the process heap;
* N processes serving the same arena should *share* one physical copy —
  each process's proportional share (PSS) of the mapping should be about
  ``size / N``, far below its RSS for the same mapping.

Both need per-mapping **PSS** (proportional set size), which the kernel
exports in ``/proc/<pid>/smaps`` (per mapping) and
``/proc/<pid>/smaps_rollup`` (whole process).  This module wraps those
files behind two functions that degrade gracefully — every result dict
carries an ``available`` flag, and callers (the memory benchmark, the
serve-layer ``memory_status``) skip the assertions rather than crash on
kernels or platforms without smaps.

Nothing here imports numpy or any repro subsystem; like the rest of
:mod:`repro.utils` it stays dependency-free.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["process_memory", "mapping_memory", "drop_page_cache"]

#: smaps fields we aggregate, in kB, keyed by the name we report them as.
_FIELDS = {
    "Rss:": "rss_kb",
    "Pss:": "pss_kb",
    "Shared_Clean:": "shared_clean_kb",
    "Shared_Dirty:": "shared_dirty_kb",
    "Private_Clean:": "private_clean_kb",
    "Private_Dirty:": "private_dirty_kb",
}


def _blank(available: bool) -> dict:
    out = {name: 0 for name in _FIELDS.values()}
    out["available"] = available
    return out


def process_memory(pid: Optional[int] = None) -> dict:
    """Whole-process memory from ``/proc/<pid>/smaps_rollup``.

    Returns ``{"rss_kb", "pss_kb", "shared_clean_kb", "shared_dirty_kb",
    "private_clean_kb", "private_dirty_kb", "available"}``.  When the
    rollup file does not exist (non-Linux, old kernel, pid gone) every
    counter is 0 and ``available`` is False — callers must gate their
    assertions on the flag.
    """
    pid_part = "self" if pid is None else str(int(pid))
    try:
        with open(f"/proc/{pid_part}/smaps_rollup", "r") as handle:
            lines = handle.readlines()
    except OSError:
        return _blank(False)
    out = _blank(True)
    for line in lines:
        parts = line.split()
        name = _FIELDS.get(parts[0]) if parts else None
        if name is not None and len(parts) >= 2:
            out[name] += int(parts[1])
    return out


def mapping_memory(path: str, pid: Optional[int] = None) -> dict:
    """Memory attributed to mappings of ``path`` in ``/proc/<pid>/smaps``.

    Filters the per-mapping smaps entries down to those whose backing
    file resolves to ``path`` (realpath comparison; a trailing
    `` (deleted)`` marker from an unlinked-but-mapped file is tolerated)
    and sums the same counters as :func:`process_memory`, plus
    ``"mappings"`` — how many VMAs matched.  This is the precise probe
    for "do these workers share the snapshot?": the whole-process rollup
    is dominated by each interpreter's private heap, while the mapping
    view isolates exactly the arena pages.
    """
    target = os.path.realpath(path)
    pid_part = "self" if pid is None else str(int(pid))
    try:
        with open(f"/proc/{pid_part}/smaps", "r") as handle:
            lines = handle.readlines()
    except OSError:
        out = _blank(False)
        out["mappings"] = 0
        return out
    out = _blank(True)
    out["mappings"] = 0
    in_target = False
    for line in lines:
        parts = line.split()
        if not parts:
            continue
        # Mapping header lines look like
        # ``7f..-7f.. r--s 0000 08:01 123  /path/to/file (deleted)`` —
        # distinguish them from field lines by the address-range shape.
        if "-" in parts[0] and not parts[0].endswith(":"):
            mapped_to = " ".join(parts[5:]) if len(parts) > 5 else ""
            if mapped_to.endswith(" (deleted)"):
                mapped_to = mapped_to[: -len(" (deleted)")]
            in_target = bool(mapped_to) and os.path.realpath(mapped_to) == target
            if in_target:
                out["mappings"] += 1
            continue
        if in_target:
            name = _FIELDS.get(parts[0])
            if name is not None and len(parts) >= 2:
                out[name] += int(parts[1])
    return out


def drop_page_cache(path: str) -> bool:
    """Ask the kernel to evict ``path``'s pages from the page cache.

    Uses ``posix_fadvise(POSIX_FADV_DONTNEED)`` — an unprivileged hint,
    so this is best-effort: returns True when the advice was delivered,
    False when the platform lacks fadvise or the file cannot be opened.
    The memory benchmark uses it to measure a genuinely cold arena load
    without needing root for ``/proc/sys/vm/drop_caches``.
    """
    fadvise = getattr(os, "posix_fadvise", None)
    dontneed = getattr(os, "POSIX_FADV_DONTNEED", None)
    if fadvise is None or dontneed is None:
        return False
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(fd)
        fadvise(fd, 0, 0, dontneed)
        return True
    except OSError:
        return False
    finally:
        os.close(fd)
