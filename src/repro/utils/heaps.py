"""Bounded max-heap for maintaining the best-k candidates of a query.

Every ANN method in this library streams candidates and keeps the ``k``
nearest seen so far; the natural structure is a max-heap bounded at ``k``
whose root is the current k-th nearest distance (the pruning bound used in
the (c,k)-ANN termination test of the paper, Section IV-C).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator, List, Tuple


class BoundedMaxHeap:
    """A max-heap over ``(distance, item)`` pairs holding at most ``k`` entries.

    ``push`` keeps the ``k`` smallest distances seen.  ``bound`` is the
    largest retained distance (``inf`` until the heap is full), which is
    exactly the "distance of the k-th nearest neighbor found so far" used
    by the termination conditions in the paper.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        # Store negated distances so heapq's min-heap acts as a max-heap.
        self._heap: List[Tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        """True once ``k`` entries are held."""
        return len(self._heap) >= self.k

    @property
    def bound(self) -> float:
        """Current k-th smallest distance, ``inf`` while fewer than k held."""
        if not self.full:
            return math.inf
        return -self._heap[0][0]

    def push(self, distance: float, item: int) -> bool:
        """Offer a candidate; returns True if it was retained."""
        # Hot path: open-coded (no property hops) — every ANN method in
        # the library funnels each candidate through this call.
        heap = self._heap
        if len(heap) < self.k:
            heapq.heappush(heap, (-distance, item))
            return True
        if -distance > heap[0][0]:
            heapq.heapreplace(heap, (-distance, item))
            return True
        return False

    def fill(self, distances, items) -> None:
        """Bulk-push candidates while below capacity (the query fill phase).

        Equivalent to pushing the pairs one by one — the heap holds the
        same multiset either way — but one ``heapify`` beats ``m`` sifts.
        The caller must not overfill: ``len(self) + m <= k``.
        """
        heap = self._heap
        if len(heap) + len(distances) > self.k:
            raise ValueError("fill() would exceed the heap capacity")
        for pair in zip(distances, items):
            heap.append((-pair[0], pair[1]))
        heapq.heapify(heap)

    def rebuild(self, distances, items) -> None:
        """Replace the heap contents with the given pairs (at most ``k``).

        Used by the chunked verifier after it has selected the surviving
        k candidates with one vectorised partition instead of sequential
        pushes; the resulting heap holds the same multiset either way.
        """
        if len(distances) > self.k:
            raise ValueError("rebuild() would exceed the heap capacity")
        self._heap = [(-pair[0], pair[1]) for pair in zip(distances, items)]
        heapq.heapify(self._heap)

    def items(self) -> List[Tuple[float, int]]:
        """Retained ``(distance, item)`` pairs sorted by ascending distance."""
        return sorted((-neg, item) for neg, item in self._heap)

    def __iter__(self) -> Iterator[Tuple[float, int]]:
        return iter(self.items())
