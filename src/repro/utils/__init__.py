"""Shared utilities: seeded RNG, timing, bounded result heaps, validation.

These helpers are deliberately small and dependency-free so that every
subsystem (hashing, indexes, baselines, evaluation) can rely on them
without import cycles.
"""

from repro.utils.heaps import BoundedMaxHeap
from repro.utils.meminfo import drop_page_cache, mapping_memory, process_memory
from repro.utils.rng import SeedSequence, default_rng, spawn_rngs
from repro.utils.scratch import GenerationMask
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_dataset,
    check_positive,
    check_probability,
    check_query,
)

__all__ = [
    "BoundedMaxHeap",
    "GenerationMask",
    "SeedSequence",
    "default_rng",
    "drop_page_cache",
    "mapping_memory",
    "process_memory",
    "spawn_rngs",
    "Timer",
    "check_dataset",
    "check_positive",
    "check_probability",
    "check_query",
]
