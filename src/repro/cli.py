"""Command-line interface: ``python -m repro <command>``.

Five commands cover the practitioner loop without writing code:

* ``info``     — dataset hardness diagnostics + derived DB-LSH parameters;
* ``bench``    — a miniature Table IV on a registry stand-in or fvecs file
  (``--shards S`` adds the sharded engine to the comparison);
* ``tune``     — sweep the budget knob ``t`` for a target recall;
* ``save``     — build an index (``--shards`` for a sharded one) and
  persist it as a versioned snapshot;
* ``load``     — restore a snapshot with zero rebuild and smoke-test it
  against its own stored data.

Data sources: a registry stand-in name (``--dataset audio``) or an
``.fvecs`` file (``--fvecs path``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional

import numpy as np

from repro import DBLSH, ShardedDBLSH, derive_parameters
from repro.baselines import FBLSH, LinearScan, PMLSH, QALSH
from repro.data.analysis import hardness_report
from repro.data.datasets import DATASET_REGISTRY, make_dataset
from repro.data.loaders import read_fvecs
from repro.eval.report import format_table
from repro.eval.runner import evaluate_method, run_comparison
from repro.eval.tuning import tune_budget
from repro.io import load_index, read_header, save_index


def _load_points(args: argparse.Namespace) -> tuple:
    """Resolve (data, queries, label) from --dataset or --fvecs."""
    if args.fvecs:
        points = read_fvecs(args.fvecs, limit=args.limit)
        rng = np.random.default_rng(args.seed)
        query_ids = rng.choice(points.shape[0], size=args.queries, replace=False)
        mask = np.zeros(points.shape[0], dtype=bool)
        mask[query_ids] = True
        return points[~mask], points[mask], args.fvecs
    dataset = make_dataset(args.dataset, n_queries=args.queries, seed=args.seed,
                           scale=args.scale)
    return dataset.data, dataset.queries, dataset.name


def _cmd_info(args: argparse.Namespace) -> int:
    data, _, label = _load_points(args)
    report = hardness_report(data, sample=min(100, data.shape[0]))
    params = derive_parameters(data.shape[0], c=args.c)
    rows = [
        {"quantity": "points", "value": data.shape[0]},
        {"quantity": "dimensions", "value": data.shape[1]},
        {"quantity": "relative contrast", "value": round(report.relative_contrast, 3)},
        {"quantity": "local intrinsic dim", "value": round(report.lid, 2)},
        {"quantity": "mean NN distance", "value": round(report.mean_nn_distance, 4)},
        {"quantity": "derived K (Lemma 1)", "value": params.k_per_space},
        {"quantity": "derived L (Lemma 1)", "value": params.l_spaces},
        {"quantity": "rho*", "value": round(params.rho_star, 6)},
    ]
    print(format_table(rows, title=f"Dataset info: {label}"))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    data, queries, label = _load_points(args)
    methods = [
        DBLSH(c=args.c, l_spaces=5, k_per_space=10, t=args.t, seed=args.seed,
              auto_initial_radius=True),
        FBLSH(c=args.c, k_per_space=5, l_spaces=10, t=args.t, seed=args.seed,
              auto_initial_radius=True),
        QALSH(c=args.c, m=40, w=2.719, beta=0.05, seed=args.seed,
              auto_initial_radius=True),
        PMLSH(m=15, beta=0.08, seed=args.seed),
        LinearScan(),
    ]
    if args.shards > 1:
        methods.insert(1, ShardedDBLSH(
            shards=args.shards, c=args.c, l_spaces=5, k_per_space=10, t=args.t,
            seed=args.seed, auto_initial_radius=True, budget=args.budget,
            build_mode=None if args.build_mode == "auto" else args.build_mode,
        ))
    results = run_comparison(methods, data, queries, k=args.k, dataset_name=label)
    print(format_table([r.row() for r in results],
                       title=f"Benchmark: {label} (k={args.k})"))
    return 0


def _cmd_save(args: argparse.Namespace) -> int:
    data, _, label = _load_points(args)
    common = dict(c=args.c, l_spaces=5, k_per_space=10, t=args.t, seed=args.seed,
                  auto_initial_radius=True)
    if args.shards > 1:
        mode = None if args.build_mode == "auto" else args.build_mode
        index = ShardedDBLSH(shards=args.shards, budget=args.budget,
                             build_mode=mode, **common)
    else:
        index = DBLSH(**common)
    index.fit(data)
    # np.savez appends .npz when missing; report the path it actually wrote.
    out = args.out if args.out.endswith(".npz") else args.out + ".npz"
    started = time.perf_counter()
    save_index(index, out, compress=args.compress)
    save_seconds = time.perf_counter() - started
    size_mb = os.path.getsize(out) / 1e6
    print(index.describe())
    print(f"built on {label} in {index.build_seconds:.3f}s; "
          f"saved to {out} ({size_mb:.1f} MB) in {save_seconds:.3f}s")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    header = read_header(args.index)
    started = time.perf_counter()
    index = load_index(args.index)
    load_seconds = time.perf_counter() - started
    print(index.describe())
    print(f"snapshot kind={header['kind']} version={header['version']}; "
          f"loaded in {load_seconds:.3f}s (zero rebuild)")
    if args.queries < 1:
        return 0
    # Smoke-test the loaded index against its own stored points: perturbed
    # stored rows must come back with recall ~1 at this k.
    data = index.data
    rng = np.random.default_rng(args.seed)
    picks = rng.choice(data.shape[0], size=min(args.queries, data.shape[0]),
                       replace=False)
    queries = data[picks] + 0.01 * rng.standard_normal((picks.shape[0], data.shape[1]))
    result = evaluate_method(index, data, queries, k=args.k,
                             dataset_name=os.path.basename(args.index), fit=False)
    print(format_table([result.row()], title="Loaded-index smoke check"))
    return 0 if result.recall > 0.5 else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    data, _, label = _load_points(args)
    outcome = tune_budget(
        data, target_recall=args.target_recall, k=args.k, c=args.c, seed=args.seed
    )
    rows = [
        {"t": t, "recall": r, "candidates": c} for t, r, c in outcome.trace
    ]
    print(format_table(rows, title=f"Budget sweep on {label}"))
    status = "reached" if outcome.reached_target else "NOT reached (best shown)"
    print(
        f"\ntarget recall {outcome.target_recall} {status}: "
        f"t = {outcome.best_t} -> recall {outcome.achieved_recall:.3f} "
        f"at {outcome.candidates_per_query:.0f} candidates/query"
    )
    return 0 if outcome.reached_target else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DB-LSH reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler, description in [
        ("info", _cmd_info, "dataset diagnostics + derived parameters"),
        ("bench", _cmd_bench, "miniature Table IV on one workload"),
        ("tune", _cmd_tune, "sweep the budget knob t for a target recall"),
        ("save", _cmd_save, "build an index and persist a snapshot"),
    ]:
        cmd = sub.add_parser(name, help=description)
        cmd.set_defaults(handler=handler)
        source = cmd.add_mutually_exclusive_group()
        source.add_argument(
            "--dataset", default="audio",
            choices=sorted(DATASET_REGISTRY), help="registry stand-in name",
        )
        source.add_argument("--fvecs", help="path to an .fvecs file")
        cmd.add_argument("--limit", type=int, default=None,
                         help="max vectors to read from --fvecs")
        cmd.add_argument("--scale", type=float, default=0.5,
                         help="registry stand-in scale factor")
        cmd.add_argument("--queries", type=int, default=20)
        cmd.add_argument("--k", type=int, default=10)
        cmd.add_argument("--c", type=float, default=1.5)
        cmd.add_argument("--t", type=int, default=16)
        cmd.add_argument("--seed", type=int, default=0)
        if name == "tune":
            cmd.add_argument("--target-recall", type=float, default=0.9)
        if name in ("bench", "save"):
            cmd.add_argument("--shards", type=int, default=1,
                             help="partition the DB-LSH index across this "
                                  "many parallel shards (1 = unsharded)")
            cmd.add_argument("--budget", choices=["full", "split"],
                             default="full",
                             help="sharded budget mode: every shard gets the "
                                  "full 2tL+k budget, or t is split t/S per "
                                  "shard (faster, slightly lower recall)")
            cmd.add_argument("--build-mode", choices=["auto", "process", "thread"],
                             default="auto", dest="build_mode",
                             help="how sharded fits parallelise the per-shard "
                                  "builds (auto: processes on multi-CPU hosts)")
        if name == "save":
            cmd.add_argument("--out", default="index.npz",
                             help="snapshot output path (.npz)")
            cmd.add_argument("--compress", action="store_true",
                             help="deflate the snapshot archive (smaller file, "
                                  "much slower save)")

    load_cmd = sub.add_parser(
        "load", help="restore a snapshot (zero rebuild) and smoke-test it"
    )
    load_cmd.set_defaults(handler=_cmd_load)
    load_cmd.add_argument("--index", required=True, help="snapshot path (.npz)")
    load_cmd.add_argument("--queries", type=int, default=20,
                          help="self-check queries sampled from the stored "
                               "data (0 disables the check)")
    load_cmd.add_argument("--k", type=int, default=10)
    load_cmd.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
