"""Command-line interface: ``python -m repro <command>``.

Seven commands cover the practitioner loop without writing code:

* ``info``     — dataset hardness diagnostics + derived DB-LSH parameters;
* ``bench``    — a miniature Table IV on a registry stand-in or fvecs file
  (``--shards S`` adds the sharded engine to the comparison);
* ``tune``     — sweep the budget knob ``t`` for a target recall;
* ``save``     — build an index (``--shards`` for a sharded one) and
  persist it as a versioned snapshot;
* ``load``     — restore a snapshot with zero rebuild and smoke-test it
  against its own stored data;
* ``serve``    — serve a snapshot from one worker process per shard and
  listen for query connections on a socket;
* ``query``    — connect to a running ``serve`` and answer a query set
  over the wire.

Data sources: a registry stand-in name (``--dataset audio``) or an
``.fvecs`` file (``--fvecs path``).

The ``serve``/``query`` pair speaks :mod:`multiprocessing.connection`
framing (:mod:`repro.serve.protocol`) over a unix socket (``--listen
/tmp/repro.sock``) or TCP (``--listen 127.0.0.1:7007``) — the
fit → save → serve → query loop of the README's serving quickstart.
``serve`` accepts any number of concurrent clients (one thread per
connection, FIFO-fair onto the shared worker pool), supervises its
workers (a killed worker is restarted and the request retried once),
answers ``status`` and ``reload`` protocol verbs, and with ``--watch``
hot-reloads a new snapshot generation when the file changes — in-flight
queries finish on the generation they started on.  With ``--mutable``
it also answers ``insert``/``delete``/``compact``: mutations are acked
only after the write-ahead-log fsync, recovered on restart, and folded
into fresh snapshot generations in the background; without the flag the
same verbs are refused with a clear read-only error.  The client side
retries its connection with exponential backoff (``--connect-timeout``),
so scripts may start ``serve`` and ``query`` back to back.

``serve --http HOST:PORT`` additionally opens the HTTP/JSON front door
(:mod:`repro.serve.http`): ``POST /query`` with micro-batching and 429
admission shedding, ``POST /insert``/``/delete`` when ``--mutable``,
``GET /healthz``/``/status``/``/metrics`` — composing with ``--watch``
and ``--mutable``, since the gateway fronts the same server object the
socket loop serves.  HTTP requests that reach the engine count toward
``--max-requests`` exactly like raw-socket verbs.

Resilience knobs: ``--query-timeout`` bounds any single worker answer
and arms the hang watchdog (``--hang-policy retry|fail`` decides
whether a killed hung worker's request is re-dispatched or failed with
a typed deadline error); ``query --timeout-ms`` sends a per-request
budget the server enforces end to end; ``--idle-timeout`` /
``--max-connections`` reap silent or excess raw-socket connections,
and ``--http-default-timeout`` / ``--http-idle-timeout`` /
``--http-max-connections`` do the same for the HTTP front door (HTTP
clients can also set a per-request ``X-Timeout-Ms`` header, answered
with 504 on overrun).
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
from typing import Optional

import numpy as np

from repro import DBLSH, ShardedDBLSH, derive_parameters
from repro.baselines import FBLSH, LinearScan, PMLSH, QALSH
from repro.data.analysis import hardness_report
from repro.data.datasets import DATASET_REGISTRY, make_dataset
from repro.data.loaders import read_fvecs
from repro.eval.report import format_table
from repro.eval.runner import evaluate_method, run_comparison
from repro.eval.tuning import tune_budget
from repro.io import load_index, read_header, save_index


def _load_points(args: argparse.Namespace) -> tuple:
    """Resolve (data, queries, label) from --dataset or --fvecs."""
    if args.fvecs:
        points = read_fvecs(args.fvecs, limit=args.limit)
        rng = np.random.default_rng(args.seed)
        query_ids = rng.choice(points.shape[0], size=args.queries, replace=False)
        mask = np.zeros(points.shape[0], dtype=bool)
        mask[query_ids] = True
        return points[~mask], points[mask], args.fvecs
    dataset = make_dataset(args.dataset, n_queries=args.queries, seed=args.seed,
                           scale=args.scale)
    return dataset.data, dataset.queries, dataset.name


def _cmd_info(args: argparse.Namespace) -> int:
    data, _, label = _load_points(args)
    report = hardness_report(data, sample=min(100, data.shape[0]))
    params = derive_parameters(data.shape[0], c=args.c)
    rows = [
        {"quantity": "points", "value": data.shape[0]},
        {"quantity": "dimensions", "value": data.shape[1]},
        {"quantity": "relative contrast", "value": round(report.relative_contrast, 3)},
        {"quantity": "local intrinsic dim", "value": round(report.lid, 2)},
        {"quantity": "mean NN distance", "value": round(report.mean_nn_distance, 4)},
        {"quantity": "derived K (Lemma 1)", "value": params.k_per_space},
        {"quantity": "derived L (Lemma 1)", "value": params.l_spaces},
        {"quantity": "rho*", "value": round(params.rho_star, 6)},
    ]
    print(format_table(rows, title=f"Dataset info: {label}"))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    data, queries, label = _load_points(args)
    methods = [
        DBLSH(c=args.c, l_spaces=5, k_per_space=10, t=args.t, seed=args.seed,
              auto_initial_radius=True),
        FBLSH(c=args.c, k_per_space=5, l_spaces=10, t=args.t, seed=args.seed,
              auto_initial_radius=True),
        QALSH(c=args.c, m=40, w=2.719, beta=0.05, seed=args.seed,
              auto_initial_radius=True),
        PMLSH(m=15, beta=0.08, seed=args.seed),
        LinearScan(),
    ]
    if args.shards > 1:
        methods.insert(1, ShardedDBLSH(
            shards=args.shards, c=args.c, l_spaces=5, k_per_space=10, t=args.t,
            seed=args.seed, auto_initial_radius=True, budget=args.budget,
            build_mode=None if args.build_mode == "auto" else args.build_mode,
        ))
    results = run_comparison(methods, data, queries, k=args.k, dataset_name=label)
    print(format_table([r.row() for r in results],
                       title=f"Benchmark: {label} (k={args.k})"))
    return 0


def _cmd_save(args: argparse.Namespace) -> int:
    data, _, label = _load_points(args)
    common = dict(c=args.c, l_spaces=5, k_per_space=10, t=args.t, seed=args.seed,
                  auto_initial_radius=True)
    if args.shards > 1:
        mode = None if args.build_mode == "auto" else args.build_mode
        index = ShardedDBLSH(shards=args.shards, budget=args.budget,
                             build_mode=mode, **common)
    else:
        index = DBLSH(**common)
    index.fit(data)
    # save_index appends .npz when missing; report the path it actually wrote.
    out = args.out if args.out.endswith(".npz") else args.out + ".npz"
    started = time.perf_counter()
    save_index(index, out, compress=args.compress, format=args.snapshot_format)
    save_seconds = time.perf_counter() - started
    size_mb = os.path.getsize(out) / 1e6
    print(index.describe())
    print(f"built on {label} in {index.build_seconds:.3f}s; "
          f"saved to {out} ({size_mb:.1f} MB) in {save_seconds:.3f}s")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    header = read_header(args.index)
    started = time.perf_counter()
    index = load_index(args.index)
    load_seconds = time.perf_counter() - started
    container = "arena" if header["version"] >= 3 else "npz"
    mapped = bool(getattr(index, "is_mapped", False))
    print(index.describe())
    print(f"snapshot kind={header['kind']} version={header['version']} "
          f"container={container}; loaded in {load_seconds:.3f}s "
          f"({'zero-copy mapped views' if mapped else 'private copy'}, "
          f"zero rebuild)")
    if args.queries < 1:
        return 0
    # Smoke-test the loaded index against its own stored points: perturbed
    # stored rows must come back with recall ~1 at this k.
    data = index.data
    rng = np.random.default_rng(args.seed)
    picks = rng.choice(data.shape[0], size=min(args.queries, data.shape[0]),
                       replace=False)
    queries = data[picks] + 0.01 * rng.standard_normal((picks.shape[0], data.shape[1]))
    result = evaluate_method(index, data, queries, k=args.k,
                             dataset_name=os.path.basename(args.index), fit=False)
    print(format_table([result.row()], title="Loaded-index smoke check"))
    return 0 if result.recall > 0.5 else 1


def _parse_address(addr: str):
    """``host:port`` -> TCP tuple; anything else -> unix socket path."""
    host, _, port = addr.rpartition(":")
    if host and port.isdigit():
        return (host, int(port))
    return addr


def _parse_http_address(addr: str) -> tuple:
    """``HOST:PORT``/``:PORT``/``PORT`` -> (host, port) for --http.

    HTTP has no unix-socket mode here, so a bare port is accepted and a
    missing host defaults to loopback (the gateway carries no auth; a
    non-loopback bind is the operator's deliberate choice).
    """
    host, _, port = addr.rpartition(":")
    if not port.isdigit():
        raise SystemExit(
            f"--http expects HOST:PORT, :PORT or PORT, got {addr!r}"
        )
    return (host or "127.0.0.1", int(port))


def _clear_stale_socket(address) -> Optional[str]:
    """Unlink a dead unix-socket file left by an unclean server exit.

    ``Listener`` only removes its socket path in ``close()``, so a
    killed server leaves the file behind and a restart would fail with
    EADDRINUSE.  A quick connect probe distinguishes a stale leftover
    (refused -> safe to unlink) from a live server (connected -> refuse
    to start).  Returns an error message instead of cleaning up when
    the path is busy or not a socket.
    """
    import socket
    import stat

    if not isinstance(address, str) or not os.path.exists(address):
        return None
    try:
        mode = os.stat(address).st_mode
    except FileNotFoundError:
        return None  # vanished since exists(): no stale socket after all
    if not stat.S_ISSOCK(mode):
        return (f"--listen path {address!r} exists and is not a socket; "
                f"refusing to overwrite it")
    if not hasattr(socket, "AF_UNIX"):
        return f"--listen path {address!r} already exists"
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.25)
    try:
        probe.connect(address)
    except OSError:
        try:
            os.unlink(address)  # nobody listening: stale leftover
        except FileNotFoundError:
            pass  # a concurrently restarting server beat us to it
        return None
    else:
        return f"another server is already listening on {address!r}"
    finally:
        probe.close()


class _ServeState:
    """Thread-safe loop state of one ``repro serve`` run.

    The accept loop hands every client connection to its own thread, so
    the request counter, the failure slot, and the stop signal are all
    guarded here.  ``request_stop`` also closes the listener: that is
    what unblocks the accept loop promptly instead of leaving it parked
    in ``accept()`` until one more client happens to connect.
    """

    def __init__(self, max_requests: Optional[int]) -> None:
        self.max_requests = max_requests
        self.handled = 0
        self.failure: Optional[str] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._listener = None
        self._address = None
        self._listener_closed = False
        # --max-requests 0 means "bind, then stop": start already done.
        if max_requests is not None and max_requests <= 0:
            self._stop.set()

    @property
    def stop(self) -> bool:
        return self._stop.is_set()

    def wait(self, timeout: float) -> bool:
        """Sleep until stop is requested or ``timeout`` elapses."""
        return self._stop.wait(timeout)

    def attach_listener(self, listener, address) -> None:
        with self._lock:
            self._listener = listener
            self._address = address

    def request_stop(self) -> None:
        self._stop.set()
        with self._lock:
            listener, self._listener = self._listener, None
            address = getattr(self, "_address", None)
            already = self._listener_closed
            self._listener_closed = True
        if listener is not None and not already:
            # Closing a listening socket does NOT wake a thread already
            # blocked in accept() on Linux; poke it with a throwaway
            # connection first so the accept loop observes the stop.
            self._poke(address)
            try:
                listener.close()
            except OSError:
                pass

    @staticmethod
    def _poke(address) -> None:
        import socket

        try:
            if isinstance(address, tuple):
                poke = socket.create_connection(address, timeout=1.0)
            elif isinstance(address, str) and hasattr(socket, "AF_UNIX"):
                poke = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                poke.settimeout(1.0)
                poke.connect(address)
            else:
                return
            poke.close()
        except OSError:
            pass  # nobody listening anymore: nothing to wake

    def count_request(self) -> None:
        with self._lock:
            self.handled += 1
            reached = (self.max_requests is not None
                       and self.handled >= self.max_requests)
        if reached:
            self.request_stop()

    def fail(self, message: str) -> None:
        with self._lock:
            if self.failure is None:
                self.failure = message
        self.request_stop()


class _ConnectionTable:
    """Raw-socket connection lifecycle: a hard cap and idle reaping.

    Every accepted connection is registered here; each received request
    refreshes its last-active stamp.  When ``max_connections`` is set
    and the table is full, admitting one more evicts the
    least-recently-active connection (the client that went quiet first
    loses its slot, not the newcomer).  A reaper thread periodically
    closes connections idle past ``idle_timeout``.  Closing happens
    from *this* side while the owning client thread is parked in
    ``conn.poll``; the poll observes the closed handle as an ``OSError``
    and the thread exits its loop cleanly — the double ``close()`` from
    the thread's ``with conn:`` is a no-op on an already-closed
    :class:`multiprocessing.connection.Connection`.
    """

    def __init__(self, max_connections: Optional[int] = None,
                 idle_timeout: Optional[float] = None) -> None:
        if max_connections is not None and max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError(
                f"idle_timeout must be > 0 seconds, got {idle_timeout}")
        self.max_connections = max_connections
        self.idle_timeout = idle_timeout
        self.reaped_idle = 0
        self.reaped_overflow = 0
        self._lock = threading.Lock()
        self._entries: dict = {}  # key -> [conn, last_active]
        self._next_key = 0

    def admit(self, conn):
        """Register ``conn``; evict the least-recently-active one at cap."""
        victim = None
        with self._lock:
            if (self.max_connections is not None
                    and len(self._entries) >= self.max_connections):
                oldest = min(self._entries,
                             key=lambda k: self._entries[k][1])
                victim = self._entries.pop(oldest)[0]
                self.reaped_overflow += 1
            key = self._next_key
            self._next_key += 1
            self._entries[key] = [conn, time.monotonic()]
        if victim is not None:
            self._close(victim)
        return key

    def touch(self, key) -> None:
        """Refresh a connection's last-active stamp (one per request)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry[1] = time.monotonic()

    def drop(self, key) -> None:
        """Forget a connection that closed on its own (no reap counted)."""
        with self._lock:
            self._entries.pop(key, None)

    def reap_idle(self) -> None:
        """Close every connection idle past ``idle_timeout``."""
        if self.idle_timeout is None:
            return
        cutoff = time.monotonic() - self.idle_timeout
        victims = []
        with self._lock:
            for key in [k for k, (_, last) in self._entries.items()
                        if last < cutoff]:
                victims.append(self._entries.pop(key)[0])
                self.reaped_idle += 1
        for conn in victims:
            self._close(conn)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def _close(conn) -> None:
        try:
            conn.close()
        except OSError:
            pass


def _connection_reaper(table: _ConnectionTable, state: _ServeState) -> None:
    """Periodically reap idle raw-socket connections until the serve stops."""
    interval = max(min(table.idle_timeout / 4.0, 1.0), 0.05)
    while not state.wait(interval):
        table.reap_idle()


def _serve_one_client(conn, server, state: _ServeState,
                      table: Optional[_ConnectionTable] = None,
                      key=None) -> None:
    """Answer one client connection until it disconnects or asks to stop.

    One of these runs per client thread; ``server`` dispatches the
    threads onto the worker pool in FIFO order, so clients cannot starve
    each other.  Client-side misbehavior (vanishing mid-request,
    resetting the connection) only ends *this* connection; a
    ``ServerError`` from the worker pool — which supervision could not
    recover — marks the run failed and stops the serve loop.  A
    ``DeadlineExceeded`` is *not* such a failure: the request simply ran
    out of its client-supplied ``timeout_ms`` budget, so it is answered
    with a typed error and the connection keeps serving.
    """
    from repro.io import SnapshotError, WALError
    from repro.serve import DeadlineExceeded, ReadOnlyError, ServerError
    from repro.serve.protocol import encode_result

    while not state.stop:
        try:
            # Bounded recv: wake periodically to observe a stop requested
            # by another client's shutdown even if this connection's fd
            # never EOFs (a worker forked while it was open would hold a
            # copy; the spawn context avoids that, this bounds the rest).
            if not conn.poll(0.2):
                continue
            message = conn.recv()
        except (EOFError, ConnectionResetError, OSError):
            return  # client went away (or the reaper closed this slot)
        if table is not None:
            table.touch(key)
        try:
            kind = message[0] if isinstance(message, tuple) and message else None
            if kind == "query_batch":
                queries = np.asarray(message[1], dtype=np.float64)
                timeout_ms = message[3] if len(message) > 3 else None
                try:
                    if timeout_ms is not None:
                        results = server.query_batch(
                            queries, k=int(message[2]),
                            timeout=float(timeout_ms) / 1000.0,
                        )
                    else:
                        results = server.query_batch(queries, k=int(message[2]))
                except DeadlineExceeded as exc:
                    # Typed, expected, recoverable: the request spent its
                    # budget.  Answer it and keep both the connection and
                    # the serve loop alive (it still counts as handled —
                    # the request reached the engine).
                    conn.send(("error", f"deadline exceeded: {exc}"))
                    state.count_request()
                    if state.stop:
                        return
                    continue
                except ValueError as exc:
                    conn.send(("error", str(exc)))
                    continue
                except ServerError as exc:
                    conn.send(("error", str(exc)))
                    state.fail(str(exc))
                    return
                conn.send(("ok", [encode_result(r) for r in results]))
                state.count_request()
                if state.stop:
                    return
            elif kind in ("insert", "delete", "compact"):
                # Mutation verbs: acked only after the WAL fsync inside
                # the server method returns; a read-only serve refuses
                # with a clear error instead of pretending.
                if not hasattr(server, "insert"):
                    conn.send(("error",
                               f"server is read-only: {kind} refused "
                               f"(restart serve with --mutable)"))
                    continue
                try:
                    if kind == "insert":
                        value = server.insert(
                            np.asarray(message[1], dtype=np.float64)
                        )
                    elif kind == "delete":
                        value = server.delete(int(message[1]))
                    else:
                        value = server.compact()
                except (ValueError, ReadOnlyError) as exc:
                    conn.send(("error", str(exc)))
                    continue
                except (WALError, OSError, ServerError) as exc:
                    # A mutation that could not be made durable poisons
                    # nothing that was already acked, but this serve can
                    # no longer honor its durability contract: fail loud.
                    conn.send(("error", str(exc)))
                    state.fail(str(exc))
                    return
                conn.send(("ok", value))
                state.count_request()
                if state.stop:
                    return
            elif kind == "status":
                conn.send(("ok", server.status()))
            elif kind == "reload":
                path = message[1] if len(message) > 1 and message[1] else None
                try:
                    conn.send(("ok", server.reload(path)))
                except (SnapshotError, ServerError) as exc:
                    # A refused reload (junk file, version skew, wrong
                    # dimensionality) leaves the old generation serving;
                    # report it to this client and keep the loop alive.
                    conn.send(("error", str(exc)))
            elif kind == "describe":
                conn.send(("ok", server.describe()))
            elif kind == "shutdown":
                conn.send(("ok", "shutting down"))
                state.request_stop()
                return
            else:
                conn.send(("error", f"unknown request kind {kind!r}"))
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client vanished mid-reply; the work is already done
        except (TypeError, ValueError, IndexError, KeyError) as exc:
            # Malformed payload (ragged query list, missing fields, a
            # non-tuple message): reject the request, keep the server.
            try:
                conn.send(("error", f"malformed request: {exc}"))
            except (BrokenPipeError, ConnectionResetError, OSError):
                return


def _client_thread(conn, server, state: _ServeState,
                   table: Optional[_ConnectionTable] = None, key=None) -> None:
    """Own one accepted connection for its lifetime (runs in a thread)."""
    try:
        with conn:
            _serve_one_client(conn, server, state, table, key)
    finally:
        if table is not None:
            table.drop(key)


def _watch_snapshot(server, path: str, interval: float,
                    state: _ServeState) -> None:
    """Poll ``path``'s mtime and hot-reload the server when it changes.

    A failed reload (half-written file, junk, version skew) keeps the
    old generation serving and is reported on stderr; the watcher keeps
    polling, so the next complete write still gets picked up.
    """
    from repro.io import SnapshotError
    from repro.serve import ServerError

    def _mtime() -> Optional[int]:
        try:
            return os.stat(path).st_mtime_ns
        except OSError:
            return None  # mid-replace (writer unlinked first); retry

    last = _mtime()
    while not state.wait(interval):
        stamp = _mtime()
        if stamp is None or stamp == last:
            continue
        last = stamp
        try:
            info = server.reload(path)
            print(f"[watch] reloaded {path} -> generation "
                  f"{info['generation']} ({info['shards']} shard(s))",
                  flush=True)
        except (SnapshotError, ServerError) as exc:
            print(f"[watch] reload of {path} failed ({exc}); the previous "
                  f"generation keeps serving", file=sys.stderr, flush=True)


_LOOPBACK_HOSTS = frozenset({"127.0.0.1", "localhost", "::1"})


def _cmd_serve(args: argparse.Namespace) -> int:
    import multiprocessing
    from multiprocessing.connection import Listener

    from repro.serve import MutableSnapshotServer, SnapshotServer
    from repro.serve.protocol import AUTHKEY, DEFAULT_AUTHKEY

    address = _parse_address(args.listen)
    if (isinstance(address, tuple)
            and address[0] not in _LOOPBACK_HOSTS
            and AUTHKEY == DEFAULT_AUTHKEY):
        # The wire protocol is authenticated pickle: the key is code
        # execution rights, and the default key is public.  Refuse to
        # pair it with a non-loopback bind.
        print(f"refusing to listen on {args.listen!r} with the default "
              f"authkey: anyone reaching the port could execute code in "
              f"this process. Set REPRO_SERVE_AUTHKEY (on server and "
              f"clients) or bind to 127.0.0.1/a unix socket.",
              file=sys.stderr)
        return 1
    problem = _clear_stale_socket(address)
    if problem is not None:
        print(problem, file=sys.stderr)
        return 1
    state = _ServeState(args.max_requests)
    table = _ConnectionTable(max_connections=args.max_connections,
                             idle_timeout=args.idle_timeout)
    client_threads = []
    # Workers are spawned, not forked: the serve loop is multi-threaded
    # and holds client sockets, and a forked worker would inherit copies
    # of those fds — after which a client hanging up no longer EOFs its
    # server-side connection (some process still holds the fd open).
    # Supervision restarts and reloads spawn workers mid-serve, so this
    # matters beyond startup.  --mp-context overrides for experiments.
    if args.mutable:
        # A mutable serve recovers snapshot + WAL on startup, acks
        # insert/delete only after the WAL fsync, and folds the delta
        # into fresh snapshot generations in the background.
        server_factory = MutableSnapshotServer(
            args.index, query_timeout=args.query_timeout,
            hang_policy=args.hang_policy,
            mp_context=args.mp_context, wal_path=args.wal,
            compact_threshold=args.compact_threshold,
            compact_wal_bytes=args.compact_wal_bytes,
            compact_overhead=args.compact_overhead,
            group_commit_ms=args.wal_group_commit_ms,
            group_bytes=args.wal_group_bytes,
            segment_bytes=args.wal_segment_bytes,
        )
    else:
        server_factory = SnapshotServer(
            args.index, query_timeout=args.query_timeout,
            hang_policy=args.hang_policy,
            mp_context=args.mp_context,
        )
    gateway = None
    with server_factory as server:
        listener = Listener(address, authkey=AUTHKEY)
        state.attach_listener(listener, address)
        try:
            print(server.describe())
            mode = "mutable" if args.mutable else "read-only"
            print(f"listening on {args.listen} "
                  f"(workers: {len(server.worker_pids)}, {mode})", flush=True)
            if args.http:
                from repro.serve import GatewayError, HttpGateway

                host, port = _parse_http_address(args.http)
                try:
                    gateway = HttpGateway(
                        server, host, port,
                        batch_window=args.http_batch_window,
                        max_batch=args.http_max_batch,
                        queue_limit=args.http_queue_limit,
                        default_timeout=args.http_default_timeout,
                        idle_timeout=args.http_idle_timeout,
                        max_connections=args.http_max_connections,
                        # HTTP requests that reach the engine count
                        # toward --max-requests like raw-socket verbs.
                        on_request=lambda endpoint: state.count_request(),
                    ).start()
                except GatewayError as exc:
                    print(f"could not open the HTTP front door: {exc}",
                          file=sys.stderr)
                    return 1
                print(f"http on {gateway.address} "
                      f"(batch window {gateway.batch_window * 1e3:g} ms, "
                      f"max batch {gateway.max_batch}, "
                      f"queue limit {gateway.queue_limit})", flush=True)
            if args.watch:
                threading.Thread(
                    target=_watch_snapshot,
                    args=(server, args.index, args.watch_interval, state),
                    name="repro-serve-watch",
                    daemon=True,
                ).start()
            if table.idle_timeout is not None:
                threading.Thread(
                    target=_connection_reaper, args=(table, state),
                    name="repro-serve-reaper", daemon=True,
                ).start()
            while not state.stop:
                try:
                    conn = listener.accept()
                except multiprocessing.AuthenticationError:
                    print("rejected a connection with a bad authkey",
                          file=sys.stderr)
                    continue
                except (ConnectionResetError, EOFError):
                    # A probe/scanner connected and vanished mid-handshake
                    # (repro serve's own stale-socket check does exactly
                    # this); never let a client kill the server.
                    continue
                except OSError:
                    if state.stop:
                        break  # request_stop() closed the listener
                    continue
                # One thread per client: many connections multiplex onto
                # the shared worker pool (the server's FIFO dispatch keeps
                # it fair), and a slow client no longer blocks accept().
                # Admission may evict the least-recently-active
                # connection when --max-connections is reached.
                key = table.admit(conn)
                thread = threading.Thread(
                    target=_client_thread, args=(conn, server, state,
                                                 table, key),
                    name="repro-serve-client", daemon=True,
                )
                thread.start()
                # Prune finished connections so a long-lived serve does
                # not retain one Thread object per connection ever made.
                client_threads = [t for t in client_threads if t.is_alive()]
                client_threads.append(thread)
        finally:
            state.request_stop()  # closes the listener (idempotent)
            if gateway is not None:
                gateway.close()
            for thread in client_threads:
                thread.join(timeout=30.0)
    handled, failure = state.handled, state.failure
    if table.reaped_idle or table.reaped_overflow:
        print(f"reaped {table.reaped_idle} idle and {table.reaped_overflow} "
              f"over-cap connection(s)", flush=True)
    if failure is not None:
        # Exit nonzero so supervisors (systemd, CI) see the crash for
        # what it is rather than a clean, intentional shutdown.
        print(f"serving failed after {handled} request(s): {failure}",
              file=sys.stderr)
        return 1
    print(f"served {handled} request(s); shut down cleanly")
    return 0


#: Consecutive connection *resets* tolerated before the dial gives up.
#: A reset means somebody IS listening and actively dropped us — after
#: this many in a row it is a refusal (authkey gate, a proxy, a port
#: squatter), not a startup race, and retrying until the timeout just
#: delays the inevitable error by the full --connect-timeout.
_MAX_CONSECUTIVE_RESETS = 8


def _connect_with_retry(address, timeout: float, *, initial_delay: float = 0.05,
                        max_delay: float = 1.0, _sleep=time.sleep):
    """Dial the server until it listens (covers serve's start-up window).

    Scripts and tests race ``repro serve``'s startup all the time (shell
    ``&``, CI jobs), so a refused-connect or not-yet-bound address is
    retried with exponential backoff — ``initial_delay`` doubling up to
    ``max_delay`` — until ``timeout`` is spent, then the last error
    propagates.  The backoff keeps the early retries snappy (a server
    that is milliseconds away from binding is caught within
    ``initial_delay``) without hammering a socket that is seconds away
    with hundreds of connect attempts.

    Not every connect error means "keep trying": a
    ``ConnectionResetError`` can be a listener mid-bind/mid-handshake
    teardown (transient — retry), but a *streak* of them means a live
    server is deliberately dropping this client, which no amount of
    waiting fixes; after :data:`_MAX_CONSECUTIVE_RESETS` in a row the
    dial fails immediately with a message saying so instead of burning
    the whole timeout.  One refused/unbound attempt resets the streak —
    a server restarting underneath us is back to being a startup race.

    ``_sleep`` is injectable so the regression test can record the
    backoff schedule instead of actually waiting it out.
    """
    from multiprocessing.connection import Client

    from repro.serve.protocol import AUTHKEY

    deadline = time.monotonic() + timeout
    delay = initial_delay
    resets = 0
    while True:
        try:
            return Client(address, authkey=AUTHKEY)
        except (ConnectionRefusedError, FileNotFoundError) as exc:
            resets = 0
            error = exc
        except ConnectionResetError as exc:
            resets += 1
            if resets >= _MAX_CONSECUTIVE_RESETS:
                raise ConnectionResetError(
                    f"server at {address!r} reset the connection {resets} "
                    f"times in a row: something is listening but refusing "
                    f"this client (authkey mismatch? not a repro serve?); "
                    f"giving up early instead of retrying for the full "
                    f"timeout") from exc
            error = exc
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise error
        _sleep(min(delay, remaining))
        delay = min(delay * 2, max_delay)


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serve.protocol import decode_result

    address = _parse_address(args.server)
    _, queries, label = _load_points(args)
    import multiprocessing

    try:
        client = _connect_with_retry(address, args.connect_timeout)
    except multiprocessing.AuthenticationError:
        print(f"authentication with {args.server} failed: the server was "
              f"started with a different authkey (set the same "
              f"REPRO_SERVE_AUTHKEY on both ends)", file=sys.stderr)
        return 1
    except (ConnectionRefusedError, FileNotFoundError, EOFError, OSError) as exc:
        print(f"could not connect to {args.server} within "
              f"{args.connect_timeout:.0f}s: {exc}", file=sys.stderr)
        return 1
    with client as conn:
        started = time.perf_counter()
        try:
            if args.timeout_ms is not None:
                # 4-tuple form: the server enforces this budget end to
                # end and answers ("error", "deadline exceeded: ...") on
                # overrun.  Older 3-tuple form kept for old servers.
                conn.send(("query_batch", queries, args.k, args.timeout_ms))
            else:
                conn.send(("query_batch", queries, args.k))
            if not conn.poll(args.reply_timeout):
                print(f"server did not reply within {args.reply_timeout:.0f}s",
                      file=sys.stderr)
                return 1
            reply = conn.recv()
        except (EOFError, ConnectionResetError, BrokenPipeError, OSError):
            # The server stopped (crashed, --max-requests elsewhere, a
            # concurrent shutdown) between accept and reply.
            print("server closed the connection before replying",
                  file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started
        if args.shutdown:
            try:
                conn.send(("shutdown",))
                conn.recv()
            except (EOFError, OSError):
                pass  # server already closed this connection (it may
                # have stopped on its own, e.g. --max-requests reached)
    if reply[0] != "ok":
        print(f"server error: {reply[1]}", file=sys.stderr)
        return 1
    results = [decode_result(wire) for wire in reply[1]]
    rows = [
        {
            "query": i,
            "top1_id": r.ids[0] if r.ids else "-",
            "top1_dist": round(r.distances[0], 4) if r.ids else "-",
            "found": len(r.neighbors),
        }
        for i, r in enumerate(results[:10])
    ]
    print(format_table(rows, title=f"Served answers: {label} (k={args.k})"))
    m = len(results)
    print(f"{m} queries in {elapsed:.3f}s over the wire "
          f"({m / max(elapsed, 1e-9):.1f} qps incl. transport)")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    data, _, label = _load_points(args)
    outcome = tune_budget(
        data, target_recall=args.target_recall, k=args.k, c=args.c, seed=args.seed
    )
    rows = [
        {"t": t, "recall": r, "candidates": c} for t, r, c in outcome.trace
    ]
    print(format_table(rows, title=f"Budget sweep on {label}"))
    status = "reached" if outcome.reached_target else "NOT reached (best shown)"
    print(
        f"\ntarget recall {outcome.target_recall} {status}: "
        f"t = {outcome.best_t} -> recall {outcome.achieved_recall:.3f} "
        f"at {outcome.candidates_per_query:.0f} candidates/query"
    )
    return 0 if outcome.reached_target else 1


def _add_source_args(cmd: argparse.ArgumentParser) -> None:
    """Arguments resolving a (data, queries) workload (see _load_points)."""
    source = cmd.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset", default="audio",
        choices=sorted(DATASET_REGISTRY), help="registry stand-in name",
    )
    source.add_argument("--fvecs", help="path to an .fvecs file")
    cmd.add_argument("--limit", type=int, default=None,
                     help="max vectors to read from --fvecs")
    cmd.add_argument("--scale", type=float, default=0.5,
                     help="registry stand-in scale factor")
    cmd.add_argument("--queries", type=int, default=20)
    cmd.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DB-LSH reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler, description in [
        ("info", _cmd_info, "dataset diagnostics + derived parameters"),
        ("bench", _cmd_bench, "miniature Table IV on one workload"),
        ("tune", _cmd_tune, "sweep the budget knob t for a target recall"),
        ("save", _cmd_save, "build an index and persist a snapshot"),
    ]:
        cmd = sub.add_parser(name, help=description)
        cmd.set_defaults(handler=handler)
        _add_source_args(cmd)
        cmd.add_argument("--k", type=int, default=10)
        cmd.add_argument("--c", type=float, default=1.5)
        cmd.add_argument("--t", type=int, default=16)
        if name == "tune":
            cmd.add_argument("--target-recall", type=float, default=0.9)
        if name in ("bench", "save"):
            cmd.add_argument("--shards", type=int, default=1,
                             help="partition the DB-LSH index across this "
                                  "many parallel shards (1 = unsharded)")
            cmd.add_argument("--budget", choices=["full", "split"],
                             default="full",
                             help="sharded budget mode: every shard gets the "
                                  "full 2tL+k budget, or t is split t/S per "
                                  "shard (faster, slightly lower recall)")
            cmd.add_argument("--build-mode", choices=["auto", "process", "thread"],
                             default="auto", dest="build_mode",
                             help="how sharded fits parallelise the per-shard "
                                  "builds (auto: processes on multi-CPU hosts)")
        if name == "save":
            cmd.add_argument("--out", default="index.npz",
                             help="snapshot output path (.npz)")
            cmd.add_argument("--snapshot-format", choices=["arena", "npz"],
                             default="arena", dest="snapshot_format",
                             help="container: arena (v3, zero-copy mmap "
                                  "loads) or npz (legacy v1)")
            cmd.add_argument("--compress", action="store_true",
                             help="deflate the snapshot archive (smaller file, "
                                  "much slower save; forces the npz "
                                  "container — deflated bytes cannot be "
                                  "mapped)")

    load_cmd = sub.add_parser(
        "load", help="restore a snapshot (zero rebuild) and smoke-test it"
    )
    load_cmd.set_defaults(handler=_cmd_load)
    load_cmd.add_argument("--index", required=True, help="snapshot path (.npz)")
    load_cmd.add_argument("--queries", type=int, default=20,
                          help="self-check queries sampled from the stored "
                               "data (0 disables the check)")
    load_cmd.add_argument("--k", type=int, default=10)
    load_cmd.add_argument("--seed", type=int, default=0)

    serve_cmd = sub.add_parser(
        "serve",
        help="serve a snapshot from one worker process per shard",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)
    serve_cmd.add_argument("--index", required=True,
                           help="snapshot path (.npz) to serve")
    serve_cmd.add_argument("--listen", default="repro-serve.sock",
                           help="unix socket path, or host:port for TCP")
    serve_cmd.add_argument("--query-timeout", type=float, default=120.0,
                           dest="query_timeout",
                           help="seconds before a silent worker is declared "
                                "hung")
    serve_cmd.add_argument("--hang-policy", choices=["retry", "fail"],
                           default="retry", dest="hang_policy",
                           help="after the watchdog kills a hung worker: "
                                "retry re-dispatches the request on a fresh "
                                "worker, fail answers it with a typed "
                                "deadline error (the worker restarts either "
                                "way)")
    serve_cmd.add_argument("--idle-timeout", type=float, default=None,
                           dest="idle_timeout", metavar="SECONDS",
                           help="close raw-socket connections idle this long "
                                "(default: never reap)")
    serve_cmd.add_argument("--max-connections", type=int, default=None,
                           dest="max_connections",
                           help="cap concurrent raw-socket connections; at "
                                "the cap, admitting one more evicts the "
                                "least-recently-active (default: unlimited)")
    serve_cmd.add_argument("--max-requests", type=int, default=None,
                           dest="max_requests",
                           help="exit after this many query requests "
                                "(default: serve until a client sends "
                                "shutdown)")
    serve_cmd.add_argument("--watch", action="store_true",
                           help="poll the snapshot file and hot-reload a new "
                                "generation when it changes (in-flight "
                                "queries finish on the old one)")
    serve_cmd.add_argument("--watch-interval", type=float, default=1.0,
                           dest="watch_interval",
                           help="seconds between --watch mtime polls")
    serve_cmd.add_argument("--mutable", action="store_true",
                           help="accept insert/delete verbs, acked after the "
                                "write-ahead-log fsync; recovers snapshot+WAL "
                                "on startup (default: read-only, mutations "
                                "refused)")
    serve_cmd.add_argument("--wal", default=None,
                           help="write-ahead log path for --mutable "
                                "(default: <snapshot>.wal)")
    serve_cmd.add_argument("--compact-threshold", type=int, default=4096,
                           dest="compact_threshold",
                           help="fold the delta buffer into a fresh snapshot "
                                "generation once this many pending mutations "
                                "accumulate (0 disables auto-compaction "
                                "entirely, including the byte/overhead "
                                "triggers below)")
    serve_cmd.add_argument("--compact-wal-bytes", type=int,
                           default=64 * 1024 * 1024, dest="compact_wal_bytes",
                           metavar="BYTES",
                           help="also compact once the live WAL segments "
                                "total this many bytes (bounds recovery "
                                "replay time; 0 disables this trigger)")
    serve_cmd.add_argument("--compact-overhead", type=float, default=0.25,
                           dest="compact_overhead", metavar="FRACTION",
                           help="also compact once the delta brute-force "
                                "sweep is measured at this fraction of query "
                                "time (EMA over recent batches; 0 disables "
                                "this trigger)")
    serve_cmd.add_argument("--wal-group-commit-ms", type=float, default=2.0,
                           dest="wal_group_commit_ms", metavar="MS",
                           help="group-commit window: concurrent mutations "
                                "arriving within it share one WAL fsync "
                                "(0 = fsync each record synchronously)")
    serve_cmd.add_argument("--wal-group-bytes", type=int, default=1 << 20,
                           dest="wal_group_bytes", metavar="BYTES",
                           help="flush a commit group early once its pending "
                                "records reach this many bytes")
    serve_cmd.add_argument("--wal-segment-bytes", type=int, default=4 << 20,
                           dest="wal_segment_bytes", metavar="BYTES",
                           help="rotate the WAL to a new segment file once "
                                "the live one reaches this size; compaction "
                                "deletes whole checkpointed segments")
    serve_cmd.add_argument("--http", default=None,
                           help="also serve HTTP/JSON on HOST:PORT (or :PORT "
                                "/ PORT, loopback by default): POST /query "
                                "with micro-batching, GET /healthz /status "
                                "/metrics; insert/delete need --mutable")
    serve_cmd.add_argument("--http-batch-window", type=float, default=0.002,
                           dest="http_batch_window", metavar="SECONDS",
                           help="micro-batch collection window: concurrent "
                                "POST /query requests arriving within it are "
                                "answered by one batched GEMM (0 = coalesce "
                                "only what is already queued)")
    serve_cmd.add_argument("--http-max-batch", type=int, default=32,
                           dest="http_max_batch",
                           help="max requests coalesced into one batch")
    serve_cmd.add_argument("--http-queue-limit", type=int, default=256,
                           dest="http_queue_limit",
                           help="bounded admission queue: further requests "
                                "are shed with 429 + Retry-After")
    serve_cmd.add_argument("--http-default-timeout", type=float, default=None,
                           dest="http_default_timeout", metavar="SECONDS",
                           help="deadline applied to HTTP requests that send "
                                "no X-Timeout-Ms header; overruns answer 504 "
                                "(default: no deadline)")
    serve_cmd.add_argument("--http-idle-timeout", type=float, default=60.0,
                           dest="http_idle_timeout", metavar="SECONDS",
                           help="close HTTP keep-alive connections idle this "
                                "long")
    serve_cmd.add_argument("--http-max-connections", type=int, default=512,
                           dest="http_max_connections",
                           help="cap concurrent HTTP connections; at the cap "
                                "the least-recently-active one is evicted")
    serve_cmd.add_argument("--mp-context", default="spawn",
                           choices=["spawn", "fork", "forkserver"],
                           dest="mp_context",
                           help="worker start method (spawn keeps client "
                                "connection fds out of workers started "
                                "mid-serve; fork starts faster)")

    query_cmd = sub.add_parser(
        "query", help="answer a query set against a running serve"
    )
    query_cmd.set_defaults(handler=_cmd_query)
    query_cmd.add_argument("--server", required=True,
                           help="address the serve is listening on "
                                "(socket path or host:port)")
    _add_source_args(query_cmd)
    query_cmd.add_argument("--k", type=int, default=10)
    query_cmd.add_argument("--connect-timeout", type=float, default=10.0,
                           dest="connect_timeout",
                           help="seconds to keep retrying the connection")
    query_cmd.add_argument("--reply-timeout", type=float, default=600.0,
                           dest="reply_timeout",
                           help="seconds to wait for the server's answer")
    query_cmd.add_argument("--timeout-ms", type=float, default=None,
                           dest="timeout_ms",
                           help="per-request deadline budget in milliseconds, "
                                "enforced end to end by the server (overrun "
                                "answers a typed deadline-exceeded error)")
    query_cmd.add_argument("--shutdown", action="store_true",
                           help="ask the server to shut down after answering")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
