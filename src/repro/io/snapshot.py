"""Versioned binary snapshots of fitted indexes (build once, serve anywhere).

Format
------
A snapshot is a single ``.npz`` archive.  The ``header`` entry is a JSON
document (stored as bytes) carrying the format name, the format *version*,
the snapshot *kind* (``"dblsh"`` or ``"sharded"``) and every scalar needed
to reconstruct the index; all array payloads live beside it as plain
``.npy`` members, so a snapshot is readable with nothing but numpy.

For the default ``rstar`` backend the payload includes the frozen
:class:`~repro.index.flat.FlatRStarTree` arrays of every projected space.
Loading adopts those arrays directly, so a restored index answers queries
with **zero rebuild** — no projection pass, no STR bulk load, no tree
construction.  The mutable pointer trees (needed only by ``add()`` and the
legacy engine) are rebuilt lazily on first use.  The ablation backends
(``kdtree``, ``grid``, ``rstar-insert``) snapshot without traversal arrays
and rebuild their tables from the stored projection tensor at load time.

Sharded snapshots store one such payload per shard under a ``shard{i}.``
key prefix; the shard partition is implicit in the stored shard sizes.

Durability
----------
``save_index`` is **atomic**: the archive is written to a temp file,
fsync'd, and renamed over ``path`` (with a directory fsync), so a crash
mid-save leaves the previous snapshot intact — never a half-written
archive.  The header carries a CRC32 per payload member, verified on
access, and a random ``uid`` naming this snapshot *generation* (plus the
``parent_uid`` it was compacted from and the mutation id counter
``next_id``), which is what the write-ahead log of :mod:`repro.io.wal`
binds to.  Logically deleted rows travel as a ``tombstones`` member per
shard — rows are never physically removed, so ids never renumber.

Versioning
----------
``SNAPSHOT_VERSION`` is bumped whenever the layout changes incompatibly.
:func:`load_index` refuses snapshots written under a different version
with a :class:`SnapshotError` instead of guessing at the layout.  The
durability fields above are all *optional* additions: snapshots written
before them still load (their members simply go unverified).
"""

from __future__ import annotations

import json
import os
import zipfile
from typing import Dict, List, Optional, Tuple
from zlib import crc32

import numpy as np

from repro.core.dblsh import DBLSH
from repro.index.flat import FlatRStarTree

SNAPSHOT_FORMAT = "repro-index-snapshot"
SNAPSHOT_VERSION = 1

#: Keys every serialized flat tree carries besides its per-level arrays.
_FLAT_FIXED_KEYS = ("meta", "leaf_ptr", "leaf_ids", "leaf_cat", "leaf_coords")


class SnapshotError(RuntimeError):
    """A file is not a readable snapshot (wrong format, version, or kind)."""


def _array_crc(array: np.ndarray) -> int:
    """CRC32 over a member's raw bytes (layout-normalized, no copy)."""
    return crc32(memoryview(np.ascontiguousarray(array)).cast("B"))


def _fsync_dir(path: str) -> None:
    """fsync the directory so a rename itself is durable."""
    fd = os.open(path or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class _VerifiedArchive:
    """An open ``.npz`` whose member reads are checksum-verified.

    Wraps the lazy ``NpzFile`` access so every ``archive[name]`` (a) maps
    a raw numpy/zipfile failure on truncated or corrupt member bytes to a
    :class:`SnapshotError` naming the member and its expected-vs-actual
    size, and (b) verifies the member against the CRC32 the header
    recorded at save time (snapshots written before checksums existed
    simply skip the verification).
    """

    def __init__(self, npz, path: str) -> None:
        self._npz = npz
        self._path = path
        self._checksums: Dict[str, int] = {}

    def set_checksums(self, checksums: Optional[Dict[str, int]]) -> None:
        self._checksums = dict(checksums or {})

    @property
    def files(self):
        return self._npz.files

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            array = self._npz[name]
        except KeyError:
            raise  # missing member: callers report it precisely
        except (ValueError, OSError, EOFError, zipfile.BadZipFile) as exc:
            raise SnapshotError(
                f"{self._path!r}: snapshot member {name!r} is truncated or "
                f"corrupt{self._size_detail(name)}"
            ) from exc
        expected = self._checksums.get(name)
        if expected is not None and _array_crc(array) != int(expected):
            raise SnapshotError(
                f"{self._path!r}: snapshot member {name!r} failed its "
                f"checksum (stored CRC32 {int(expected)}) — the archive "
                f"bytes were altered after save_index() wrote them"
            )
        return array

    def _size_detail(self, name: str) -> str:
        """Best-effort ``(expected N bytes, recovered M)`` suffix."""
        try:
            zf = self._npz.zip
            zname = name if name in zf.namelist() else name + ".npy"
            expected = zf.NameToInfo[zname].file_size
            recovered = 0
            try:
                with zf.open(zname) as member:
                    while True:
                        chunk = member.read(1 << 16)
                        if not chunk:
                            break
                        recovered += len(chunk)
            except Exception:
                pass  # count whatever decompressed before the failure
            return f" (expected {expected} bytes, recovered {recovered})"
        except Exception:
            return ""

    def close(self) -> None:
        self._npz.close()

    def __enter__(self) -> "_VerifiedArchive":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Packing
# ----------------------------------------------------------------------


def _frozen_tables(index: DBLSH) -> Optional[List[FlatRStarTree]]:
    """The frozen traversal of every space, freezing on demand.

    Returns ``None`` for backends whose tables are not snapshotted in
    array form (they rebuild from the projection tensor at load time).
    When every traversal is already frozen — the array-native builder and
    snapshot loading both leave the index in that state — no pointer tree
    is materialized (or even consulted): saving costs serialization only.
    """
    if index.backend != "rstar":
        return None
    if any(flat is None for flat in index._flat_tables):
        index._materialize_tables()
        for i, flat in enumerate(index._flat_tables):
            if flat is None:
                index._flat_tables[i] = index._tables[i].freeze()
    return list(index._flat_tables)


def _pack_dblsh(index: DBLSH, prefix: str) -> Tuple[dict, Dict[str, np.ndarray]]:
    """One index's header dict + array payload (keys under ``prefix``)."""
    if index.data is None or index.params is None or index._hasher is None:
        raise RuntimeError("fit() must be called before saving a snapshot")
    params = index.params
    # A pending delta buffer has no traversal arrays to serialize: fold
    # it first so the snapshot round-trips add()ed points (a no-op when
    # nothing is pending or the backend indexes inserts eagerly).
    index.compact()
    flats = _frozen_tables(index)
    header = {
        "n": int(index.num_points),
        "dim": int(index.dim),
        "c": params.c,
        "w0": params.w0,
        "k_per_space": params.k_per_space,
        "l_spaces": params.l_spaces,
        "t": params.t,
        "backend": index.backend,
        "engine": index.engine,
        "builder": index.builder,
        "max_entries": index.max_entries,
        "initial_radius": float(index.initial_radius),
        "patience": index.patience,
        "seed": int(index.seed) if isinstance(index.seed, (int, np.integer)) else None,
        "build_seconds": float(index.build_seconds),
        "has_flat": flats is not None,
        "has_tombstones": bool(index._tombstones),
    }
    arrays: Dict[str, np.ndarray] = {
        prefix + "data": index.data,
        prefix + "tensor": index._hasher.tensor,
        prefix + "table_low": np.stack(index._table_low),
        prefix + "table_high": np.stack(index._table_high),
    }
    tombstones = index._tombstone_array()
    if tombstones is not None:
        arrays[prefix + "tombstones"] = tombstones
    if flats is not None:
        for i, flat in enumerate(flats):
            for key, array in flat.to_arrays().items():
                arrays[f"{prefix}flat{i}.{key}"] = array
    return header, arrays


def save_index(
    index,
    path: str,
    compress: bool = False,
    *,
    uid: Optional[str] = None,
    parent_uid: Optional[str] = None,
    next_id: Optional[int] = None,
) -> None:
    """Persist a fitted :class:`DBLSH` or ``ShardedDBLSH`` to ``path``.

    The file is an ``.npz`` archive; see the module docstring for the
    layout.  A sharded index is stored shard-by-shard under ``shard{i}.``
    key prefixes (together with the parent's ``t`` and ``budget`` mode,
    so a ``budget="split"`` index round-trips its per-shard ``t/S``
    knobs), which is what lets serving workers later load single shards
    with :func:`load_shard` without touching the rest of the archive.

    The write is **crash-safe**: the archive lands in a temp file that is
    fsync'd and then atomically renamed over ``path`` (directory fsync
    included).  A process killed mid-save leaves the previous snapshot
    readable; it never corrupts it in place.  Every payload member's
    CRC32 is recorded in the header and re-verified when the member is
    read back.

    Parameters
    ----------
    index:
        A fitted :class:`DBLSH` or ``ShardedDBLSH``.
    path:
        Output path, conventionally ending in ``.npz`` (the suffix is
        appended if missing).
    uid:
        Generation identity recorded in the header; a fresh random hex
        uid is generated when omitted.  The write-ahead log
        (:mod:`repro.io.wal`) binds to this value.
    parent_uid:
        Uid of the snapshot generation this one was compacted from
        (``None`` for a from-scratch build) — recovery accepts a log
        bound to either end of that edge.
    next_id:
        Mutation id counter to persist (first id a future insert may
        use).  Defaults to the physical row count; a serving layer that
        has deleted the highest ids passes its own counter so ids are
        never reused.
    compress:
        By default the archive is **uncompressed**: the payload is dense
        float64 coordinates that deflate poorly (~10% on typical data),
        and compressing them made ``save`` take several seconds per
        100 MB while ``load`` stayed fast — saving now costs what
        loading costs.  Pass ``True`` to trade save time for the smaller
        archive.

    Raises
    ------
    RuntimeError
        If ``index`` has not been fitted (``fit()`` never called).
    TypeError
        If ``index`` is neither a :class:`DBLSH` nor a ``ShardedDBLSH``
        (baselines do not snapshot).

    Examples
    --------
    >>> import numpy as np, os, tempfile
    >>> from repro import DBLSH
    >>> from repro.io import save_index, load_index
    >>> data = np.random.default_rng(0).standard_normal((48, 6))
    >>> index = DBLSH(l_spaces=2, k_per_space=3, t=8, seed=0).fit(data)
    >>> path = os.path.join(tempfile.mkdtemp(), "index.npz")
    >>> save_index(index, path)
    >>> load_index(path).query(data[7], k=1).ids
    [7]
    """
    from repro.core.sharded import ShardedDBLSH

    if isinstance(index, ShardedDBLSH):
        shard_headers = []
        arrays: Dict[str, np.ndarray] = {}
        for i, shard in enumerate(index.shard_indexes):
            shard_header, shard_arrays = _pack_dblsh(shard, f"shard{i}.")
            shard_headers.append(shard_header)
            arrays.update(shard_arrays)
        header = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "kind": "sharded",
            "build_seconds": float(index.build_seconds),
            "t": int(index.t),
            "budget": index.budget,
            "shard_headers": shard_headers,
        }
    elif isinstance(index, DBLSH):
        index_header, arrays = _pack_dblsh(index, "")
        header = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "kind": "dblsh",
            "index": index_header,
        }
    else:
        raise TypeError(f"cannot snapshot object of type {type(index).__name__}")
    header["uid"] = str(uid) if uid is not None else os.urandom(8).hex()
    header["parent_uid"] = None if parent_uid is None else str(parent_uid)
    header["next_id"] = (
        int(next_id) if next_id is not None else int(index.num_points)
    )
    header["checksums"] = {
        name: _array_crc(array) for name, array in arrays.items()
    }
    writer = np.savez_compressed if compress else np.savez
    if not path.endswith(".npz"):
        path = path + ".npz"
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            writer(handle, header=np.bytes_(json.dumps(header).encode()), **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(os.path.dirname(path))


# ----------------------------------------------------------------------
# Unpacking
# ----------------------------------------------------------------------


def _open_archive(path: str):
    """Open ``path`` as an ``.npz`` archive, mapping junk to SnapshotError.

    ``FileNotFoundError`` propagates unchanged (the caller's path is
    wrong, not the file's contents); anything numpy cannot parse as a
    zip archive becomes a :class:`SnapshotError`.
    """
    try:
        return _VerifiedArchive(np.load(path, allow_pickle=False), path)
    except FileNotFoundError:
        raise
    except (ValueError, OSError, zipfile.BadZipFile) as exc:
        raise SnapshotError(
            f"{path!r} is not a {SNAPSHOT_FORMAT} file (not an .npz archive)"
        ) from exc


def _parse_header(archive, path: str) -> dict:
    """Extract and validate the JSON header of an open ``.npz`` archive."""
    if "header" not in archive.files:
        raise SnapshotError(f"{path!r} is not a {SNAPSHOT_FORMAT} file (no header)")
    try:
        header = json.loads(bytes(archive["header"]).decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"{path!r} has an unreadable snapshot header") from exc
    if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path!r} is not a {SNAPSHOT_FORMAT} file")
    version = header.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path!r} is snapshot version {version!r}; this build reads "
            f"version {SNAPSHOT_VERSION} (re-save the index with this build)"
        )
    if isinstance(archive, _VerifiedArchive):
        # Arm per-member CRC verification for every later payload read.
        archive.set_checksums(header.get("checksums"))
    return header


def _unpack_flats(
    header: dict, archive, prefix: str
) -> Optional[List[FlatRStarTree]]:
    if not header.get("has_flat"):
        return None
    flats = []
    for i in range(int(header["l_spaces"])):
        p = f"{prefix}flat{i}."
        arrays = {key: archive[p + key] for key in _FLAT_FIXED_KEYS}
        n_levels = int(np.asarray(arrays["meta"]).reshape(-1)[4])
        for j in range(n_levels):
            for part in ("cat", "start", "end"):
                key = f"level{j}_{part}"
                arrays[key] = archive[p + key]
        flats.append(FlatRStarTree.from_arrays(arrays))
    return flats


def _unpack_dblsh(header: dict, archive, prefix: str) -> DBLSH:
    seed = header.get("seed")
    data = archive[prefix + "data"]
    tensor = archive[prefix + "tensor"]
    expected = (int(header["l_spaces"]), int(header["k_per_space"]), int(header["dim"]))
    if tensor.shape != expected or data.ndim != 2 or data.shape[1] != expected[2]:
        raise SnapshotError(
            f"snapshot payload disagrees with its header: tensor shape "
            f"{tensor.shape} / data shape {data.shape}, expected (L, K, d) = {expected}"
        )
    return DBLSH._restore(
        data=data,
        tensor=tensor,
        c=float(header["c"]),
        w0=float(header["w0"]),
        k_per_space=int(header["k_per_space"]),
        l_spaces=int(header["l_spaces"]),
        t=int(header["t"]),
        backend=str(header["backend"]),
        engine=str(header["engine"]),
        max_entries=int(header["max_entries"]),
        initial_radius=float(header["initial_radius"]),
        patience=header.get("patience"),
        seed=0 if seed is None else int(seed),
        table_low=archive[prefix + "table_low"],
        table_high=archive[prefix + "table_high"],
        flats=_unpack_flats(header, archive, prefix),
        build_seconds=float(header.get("build_seconds", 0.0)),
        builder=str(header.get("builder", "array")),
        tombstones=(
            archive[prefix + "tombstones"]
            if header.get("has_tombstones")
            else None
        ),
    )


def read_header(path: str) -> dict:
    """Return a snapshot's JSON header without loading any payload arrays."""
    with _open_archive(path) as archive:
        return _parse_header(archive, path)


def shard_headers(header: dict) -> List[dict]:
    """The per-shard index headers of a parsed snapshot header.

    Uniform view over both snapshot kinds: a ``"sharded"`` snapshot
    yields one header per shard, a ``"dblsh"`` snapshot yields its
    single index header (a one-shard deployment).  Each entry carries
    the scalars serving needs before any payload is read — ``n``,
    ``dim``, ``k_per_space``, ``l_spaces``, ``t`` — so a coordinator can
    compute shard offsets and validate query shapes from
    :func:`read_header` alone.
    """
    kind = header.get("kind")
    if kind == "dblsh":
        return [header["index"]]
    if kind == "sharded":
        return list(header["shard_headers"])
    raise SnapshotError(f"unknown snapshot kind {kind!r}")


def load_index(path: str):
    """Restore the index persisted at ``path``.

    On the default ``rstar`` backend loading is **zero rebuild**: the
    frozen traversal arrays are adopted as stored, so the first query
    runs without a projection pass or bulk load.  The ablation backends
    (``kdtree``, ``grid``, ``rstar-insert``) rebuild their tables from
    the stored projection tensor during the load.

    Parameters
    ----------
    path:
        A snapshot written by :func:`save_index` (or ``index.save()``).

    Returns
    -------
    DBLSH or ShardedDBLSH
        According to the snapshot ``kind`` header field.  To serve a
        sharded snapshot one worker process per shard, see
        :func:`load_shard` and :class:`repro.serve.SnapshotServer`.

    Raises
    ------
    SnapshotError
        If the file has no readable snapshot header, was written under a
        different ``SNAPSHOT_VERSION``, declares an unknown kind, has a
        payload that disagrees with its header, or is missing payload
        entries (a truncated or hand-edited archive).

    Examples
    --------
    >>> from repro.io import load_index, SnapshotError
    >>> try:
    ...     load_index(__file__)  # not a snapshot
    ... except SnapshotError:
    ...     print("rejected")
    rejected
    """
    with _open_archive(path) as archive:
        header = _parse_header(archive, path)
        kind = header.get("kind")
        try:
            if kind == "dblsh":
                return _unpack_dblsh(header["index"], archive, "")
            if kind == "sharded":
                from repro.core.sharded import ShardedDBLSH

                shards = [
                    _unpack_dblsh(shard_header, archive, f"shard{i}.")
                    for i, shard_header in enumerate(header["shard_headers"])
                ]
                return ShardedDBLSH._restore(
                    shards=shards,
                    build_seconds=float(header.get("build_seconds", 0.0)),
                    t=header.get("t"),
                    budget=str(header.get("budget", "full")),
                )
        except KeyError as exc:
            # A valid header whose payload member is missing: truncated
            # write or hand-edited archive, not a compatible snapshot.
            raise SnapshotError(
                f"{path!r} is missing snapshot payload entry {exc.args[0]!r}"
            ) from exc
        raise SnapshotError(f"{path!r} has unknown snapshot kind {kind!r}")


def load_shard(path: str, shard: int) -> DBLSH:
    """Restore one shard of the snapshot at ``path`` as a standalone index.

    The worker-side entry point of multi-process serving
    (:mod:`repro.serve`): each worker process loads only *its* shard —
    ``.npz`` members are read on access, so the other shards' payloads
    are never pulled off disk — and answers queries against it with
    shard-local ids.  The coordinator maps ids back to global through
    the shard offsets (:func:`shard_headers` gives the sizes).

    A ``"dblsh"``-kind snapshot is served as a single shard: only
    ``shard == 0`` is valid and returns the whole index.

    Parameters
    ----------
    path:
        A snapshot written by :func:`save_index`.
    shard:
        Shard ordinal in ``[0, shards)``.

    Returns
    -------
    DBLSH
        The shard's sub-index, exactly as ``ShardedDBLSH.load(path)``
        would hold it (zero rebuild on the ``rstar`` backend), with the
        per-shard budget knob the snapshot recorded (``t/S`` for a
        ``budget="split"`` parent).

    Raises
    ------
    SnapshotError
        If the file is not a compatible snapshot, or ``shard`` is out of
        range for it.
    """
    with _open_archive(path) as archive:
        header = _parse_header(archive, path)
        headers = shard_headers(header)
        if not 0 <= int(shard) < len(headers):
            raise SnapshotError(
                f"{path!r} holds {len(headers)} shard(s); shard {shard} requested"
            )
        prefix = "" if header["kind"] == "dblsh" else f"shard{int(shard)}."
        try:
            return _unpack_dblsh(headers[int(shard)], archive, prefix)
        except KeyError as exc:
            raise SnapshotError(
                f"{path!r} is missing snapshot payload entry {exc.args[0]!r}"
            ) from exc


def load_data(path: str) -> np.ndarray:
    """The indexed points of a snapshot in global id order, nothing else.

    Reads only the ``data`` members — not the traversal arrays or the
    projection tensor — so evaluation code can compute ground truth
    against a served snapshot without restoring a queryable index in the
    evaluating process.
    """
    with _open_archive(path) as archive:
        header = _parse_header(archive, path)
        try:
            if header["kind"] == "dblsh":
                return archive["data"]
            return np.concatenate(
                [
                    archive[f"shard{i}.data"]
                    for i in range(len(shard_headers(header)))
                ]
            )
        except KeyError as exc:
            raise SnapshotError(
                f"{path!r} is missing snapshot payload entry {exc.args[0]!r}"
            ) from exc


def load_tombstones(path: str) -> np.ndarray:
    """Global ids of the snapshot's logically deleted rows (sorted int64).

    Reads only the per-shard ``tombstones`` members (shard-local ids are
    mapped to global through the header's shard sizes) — no traversal
    arrays, no data.  Recovery uses this to replay a write-ahead log
    idempotently over a freshly compacted snapshot: a logged delete whose
    id is already baked in here is a no-op.
    """
    with _open_archive(path) as archive:
        header = _parse_header(archive, path)
        parts: List[np.ndarray] = []
        offset = 0
        try:
            for i, shard_header in enumerate(shard_headers(header)):
                prefix = "" if header["kind"] == "dblsh" else f"shard{i}."
                if shard_header.get("has_tombstones"):
                    local = np.asarray(
                        archive[prefix + "tombstones"], dtype=np.int64
                    )
                    parts.append(local + offset)
                offset += int(shard_header["n"])
        except KeyError as exc:
            raise SnapshotError(
                f"{path!r} is missing snapshot payload entry {exc.args[0]!r}"
            ) from exc
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))
