"""Versioned binary snapshots of fitted indexes (build once, serve anywhere).

Containers
----------
Two on-disk containers share one logical layout (a JSON header carrying
the format name, the format *version*, the snapshot *kind* (``"dblsh"``
or ``"sharded"``) and every scalar needed to reconstruct the index,
plus named array members):

* **arena** (version ``ARENA_VERSION``, the default): one flat file —
  magic, a CRC-protected JSON header mapping each member to a 64-byte-
  aligned byte range, then the raw little-endian array bytes.  Loading
  maps the file once (``np.memmap``, read-only) and returns each member
  as a **zero-copy view** of the mapping: O(1) page mapping instead of
  a full read, and every process serving the same snapshot shares one
  physical copy of the pages through the page cache.
* **npz** (version ``SNAPSHOT_VERSION``, the legacy container): a
  ``.npz`` archive whose ``header`` entry is the JSON document and whose
  array payloads are plain ``.npy`` members, readable with nothing but
  numpy.  Loading copies members into private heap.  ``save_index``
  keeps writing it under ``format="npz"`` (and always for
  ``compress=True`` — deflated bytes cannot be mapped), and every
  snapshot ever written by it keeps loading.

The loader sniffs the container from the file's first bytes, so paths
keep their conventional ``.npz`` suffix regardless of container.

For the default ``rstar`` backend the payload includes the frozen
:class:`~repro.index.flat.FlatRStarTree` arrays of every projected space.
Loading adopts those arrays directly, so a restored index answers queries
with **zero rebuild** — no projection pass, no STR bulk load, no tree
construction.  The mutable pointer trees (needed only by ``add()`` and the
legacy engine) are rebuilt lazily on first use.  The ablation backends
(``kdtree``, ``grid``, ``rstar-insert``) snapshot without traversal arrays
and rebuild their tables from the stored projection tensor at load time.

Sharded snapshots store one such payload per shard under a ``shard{i}.``
key prefix; the shard partition is implicit in the stored shard sizes.

Durability
----------
``save_index`` is **atomic**: the archive is written to a temp file,
fsync'd, and renamed over ``path`` (with a directory fsync), so a crash
mid-save leaves the previous snapshot intact — never a half-written
archive.  The header carries a CRC32 per payload member, verified on
access, and a random ``uid`` naming this snapshot *generation* (plus the
``parent_uid`` it was compacted from and the mutation id counter
``next_id``), which is what the write-ahead log of :mod:`repro.io.wal`
binds to.  Logically deleted rows travel as a ``tombstones`` member per
shard — rows are never physically removed, so ids never renumber.

Versioning
----------
Each container has its own version constant, bumped whenever its layout
changes incompatibly: ``SNAPSHOT_VERSION`` for the npz container,
``ARENA_VERSION`` for the arena.  :func:`load_index` refuses snapshots
written under a different version with a :class:`SnapshotError` instead
of guessing at the layout.  The durability fields above are all
*optional* additions: snapshots written before them still load (their
members simply go unverified).

Verification discipline
-----------------------
Opening an arena validates its preamble, its header CRC32, and the
*structure* of every member (the byte range each one claims must exist
in the file) — all without faulting a single data page, so the O(1)
load cost holds.  Member *content* CRCs are checked only by the
explicit :func:`verify_snapshot` pass, which reads every byte.  The npz
container keeps its historical behavior: member CRCs verified on every
access (npz loading reads the bytes anyway).
"""

from __future__ import annotations

import json
import os
import struct
import zipfile
from typing import Dict, List, Optional, Tuple
from zlib import crc32

import numpy as np

from repro.core.dblsh import DBLSH
from repro.index.flat import FlatRStarTree

SNAPSHOT_FORMAT = "repro-index-snapshot"
#: Layout version of the legacy ``.npz`` container.
SNAPSHOT_VERSION = 1
#: Layout version of the mmap arena container (the ``save_index`` default).
ARENA_VERSION = 3

#: First bytes of every arena snapshot (the npz container starts with the
#: zip magic ``PK``, so one read disambiguates them).
ARENA_MAGIC = b"REPRO-ARENA\x00"
#: Fixed preamble after the magic: container version (u32), header CRC32
#: (u32), header length in bytes (u64), data-section start offset (u64).
_ARENA_PREAMBLE = struct.Struct("<IIQQ")
_ARENA_PREAMBLE_LEN = len(ARENA_MAGIC) + _ARENA_PREAMBLE.size
#: Every member's byte range starts on this alignment (relative to the
#: data section, which is itself aligned), so mapped views satisfy any
#: dtype's alignment and never share a cache line across members.
ARENA_ALIGN = 64

#: Keys every serialized flat tree carries besides its per-level arrays
#: and its coordinate member (``leaf_coords`` single-sided in the npz
#: container, ``coords_cat`` pre-mirrored in the arena).
_FLAT_FIXED_KEYS = ("meta", "leaf_ptr", "leaf_ids", "leaf_cat")


class SnapshotError(RuntimeError):
    """A file is not a readable snapshot (wrong format, version, or kind)."""


def _array_crc(array: np.ndarray) -> int:
    """CRC32 over a member's raw bytes (layout-normalized, no copy)."""
    arr = np.ascontiguousarray(array)
    if arr.nbytes == 0:
        return 0  # crc32(b""); memoryview.cast rejects zero-sized shapes
    return crc32(memoryview(arr).cast("B"))


def _fsync_dir(path: str) -> None:
    """fsync the directory so a rename itself is durable."""
    fd = os.open(path or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class _VerifiedArchive:
    """An open ``.npz`` whose member reads are checksum-verified.

    Wraps the lazy ``NpzFile`` access so every ``archive[name]`` (a) maps
    a raw numpy/zipfile failure on truncated or corrupt member bytes to a
    :class:`SnapshotError` naming the member and its expected-vs-actual
    size, and (b) verifies the member against the CRC32 the header
    recorded at save time (snapshots written before checksums existed
    simply skip the verification).
    """

    def __init__(self, npz, path: str) -> None:
        self._npz = npz
        self._path = path
        self._checksums: Dict[str, int] = {}

    def set_checksums(self, checksums: Optional[Dict[str, int]]) -> None:
        self._checksums = dict(checksums or {})

    @property
    def files(self):
        return self._npz.files

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            array = self._npz[name]
        except KeyError:
            raise  # missing member: callers report it precisely
        except (ValueError, OSError, EOFError, zipfile.BadZipFile) as exc:
            raise SnapshotError(
                f"{self._path!r}: snapshot member {name!r} is truncated or "
                f"corrupt{self._size_detail(name)}"
            ) from exc
        expected = self._checksums.get(name)
        if expected is not None and _array_crc(array) != int(expected):
            raise SnapshotError(
                f"{self._path!r}: snapshot member {name!r} failed its "
                f"checksum (stored CRC32 {int(expected)}) — the archive "
                f"bytes were altered after save_index() wrote them"
            )
        return array

    def _size_detail(self, name: str) -> str:
        """Best-effort ``(expected N bytes, recovered M)`` suffix."""
        try:
            zf = self._npz.zip
            zname = name if name in zf.namelist() else name + ".npy"
            expected = zf.NameToInfo[zname].file_size
            recovered = 0
            try:
                with zf.open(zname) as member:
                    while True:
                        chunk = member.read(1 << 16)
                        if not chunk:
                            break
                        recovered += len(chunk)
            except Exception:
                pass  # count whatever decompressed before the failure
            return f" (expected {expected} bytes, recovered {recovered})"
        except Exception:
            return ""

    def close(self) -> None:
        self._npz.close()

    def __enter__(self) -> "_VerifiedArchive":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _align_up(offset: int, alignment: int = ARENA_ALIGN) -> int:
    """Round ``offset`` up to the next multiple of ``alignment``."""
    return -(-offset // alignment) * alignment


def _member_names(archive) -> "object":
    """Member-name membership view over any payload source.

    Works for :class:`_VerifiedArchive` and :class:`_ArenaArchive` (their
    ``files`` list) and for the plain dicts the sharded process builders
    pass straight to :func:`_unpack_dblsh` (their keys).
    """
    files = getattr(archive, "files", None)
    return files if files is not None else archive.keys()


class _ArenaArchive:
    """An open arena snapshot: parsed header + lazy zero-copy member views.

    Construction reads and validates the preamble and the JSON header
    (magic, container version, header CRC32) and *structurally* checks
    every member — the byte range the header claims for it must exist in
    the file, otherwise a :class:`SnapshotError` names the member with
    its expected-vs-recovered sizes.  No data page is read or faulted.

    ``archive[name]`` maps the whole file once (``np.memmap``, read-only)
    and returns the member as a dtype/shape view of that mapping: the
    view's ``base`` chain leads to the memmap, ``writeable`` is False,
    and no bytes are copied.  Views hold their own reference to the
    mapping, so they outlive :meth:`close` (which merely drops this
    archive's reference).
    """

    def __init__(self, path: str) -> None:
        self._path = path
        self._arena: Optional[np.ndarray] = None
        with open(path, "rb") as handle:
            blob = handle.read(_ARENA_PREAMBLE_LEN)
            if len(blob) < _ARENA_PREAMBLE_LEN or not blob.startswith(ARENA_MAGIC):
                raise SnapshotError(
                    f"{path!r}: arena preamble is truncated or corrupt "
                    f"(expected {_ARENA_PREAMBLE_LEN} bytes, recovered {len(blob)})"
                )
            version, header_crc, header_len, data_start = _ARENA_PREAMBLE.unpack(
                blob[len(ARENA_MAGIC):]
            )
            if version != ARENA_VERSION:
                raise SnapshotError(
                    f"{path!r} is arena snapshot version {version}; this build "
                    f"reads version {ARENA_VERSION} (re-save the index with "
                    f"this build)"
                )
            header_bytes = handle.read(header_len)
        if len(header_bytes) != header_len:
            raise SnapshotError(
                f"{path!r}: arena header is truncated (expected {header_len} "
                f"bytes, recovered {len(header_bytes)})"
            )
        if crc32(header_bytes) != header_crc:
            raise SnapshotError(
                f"{path!r}: arena header failed its checksum (stored CRC32 "
                f"{header_crc}) — the file bytes were altered after "
                f"save_index() wrote them"
            )
        try:
            header = json.loads(header_bytes.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise SnapshotError(
                f"{path!r} has an unreadable snapshot header"
            ) from exc
        if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(f"{path!r} is not a {SNAPSHOT_FORMAT} file")
        members = header.get("members")
        if not isinstance(members, dict):
            raise SnapshotError(f"{path!r}: arena header has no member table")
        self.header = header
        self._data_start = int(data_start)
        self._members: Dict[str, dict] = members
        size = os.path.getsize(path)
        for name, meta in sorted(
            members.items(), key=lambda item: int(item[1]["offset"])
        ):
            start = self._data_start + int(meta["offset"])
            nbytes = int(meta["nbytes"])
            if start + nbytes > size:
                raise SnapshotError(
                    f"{path!r}: snapshot member {name!r} is truncated or "
                    f"corrupt (expected {nbytes} bytes, recovered "
                    f"{max(0, size - start)})"
                )

    @property
    def files(self) -> List[str]:
        return list(self._members)

    def __getitem__(self, name: str) -> np.ndarray:
        meta = self._members[name]  # KeyError: callers report it precisely
        if self._arena is None:
            self._arena = np.memmap(self._path, dtype=np.uint8, mode="r")
        start = self._data_start + int(meta["offset"])
        raw = self._arena[start : start + int(meta["nbytes"])]
        try:
            return raw.view(np.dtype(str(meta["dtype"]))).reshape(
                tuple(int(s) for s in meta["shape"])
            )
        except (TypeError, ValueError) as exc:
            raise SnapshotError(
                f"{self._path!r}: snapshot member {name!r} has an "
                f"inconsistent dtype/shape/nbytes record ({exc})"
            ) from exc

    def member_crc(self, name: str) -> Optional[int]:
        """The CRC32 the header recorded for ``name`` (None if absent)."""
        stored = self._members[name].get("crc32")
        return None if stored is None else int(stored)

    def close(self) -> None:
        # Views returned by __getitem__ keep the mapping alive through
        # their base chain; dropping our reference is all close() means.
        self._arena = None

    def __enter__(self) -> "_ArenaArchive":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Packing
# ----------------------------------------------------------------------


def _frozen_tables(index: DBLSH) -> Optional[List[FlatRStarTree]]:
    """The frozen traversal of every space, freezing on demand.

    Returns ``None`` for backends whose tables are not snapshotted in
    array form (they rebuild from the projection tensor at load time).
    When every traversal is already frozen — the array-native builder and
    snapshot loading both leave the index in that state — no pointer tree
    is materialized (or even consulted): saving costs serialization only.
    """
    if index.backend != "rstar":
        return None
    if any(flat is None for flat in index._flat_tables):
        index._materialize_tables()
        for i, flat in enumerate(index._flat_tables):
            if flat is None:
                index._flat_tables[i] = index._tables[i].freeze()
    return list(index._flat_tables)


def _pack_dblsh(
    index: DBLSH, prefix: str, *, mirrored_coords: bool = False
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """One index's header dict + array payload (keys under ``prefix``).

    ``mirrored_coords`` stores each flat tree's coordinates in the
    pre-mirrored ``[x, -x]`` form (``coords_cat``) the query engine
    actually uses, instead of the single-sided ``leaf_coords`` the npz
    container stores.  The arena pays those extra bytes on disk so a
    mapped load adopts the member as-is — re-mirroring at load time
    would copy every coordinate and defeat zero-copy.
    """
    if index.data is None or index.params is None or index._hasher is None:
        raise RuntimeError("fit() must be called before saving a snapshot")
    params = index.params
    # A pending delta buffer has no traversal arrays to serialize: fold
    # it first so the snapshot round-trips add()ed points (a no-op when
    # nothing is pending or the backend indexes inserts eagerly).
    index.compact()
    flats = _frozen_tables(index)
    header = {
        "n": int(index.num_points),
        "dim": int(index.dim),
        "c": params.c,
        "w0": params.w0,
        "k_per_space": params.k_per_space,
        "l_spaces": params.l_spaces,
        "t": params.t,
        "backend": index.backend,
        "engine": index.engine,
        "builder": index.builder,
        "max_entries": index.max_entries,
        "initial_radius": float(index.initial_radius),
        "patience": index.patience,
        "seed": int(index.seed) if isinstance(index.seed, (int, np.integer)) else None,
        "build_seconds": float(index.build_seconds),
        "has_flat": flats is not None,
        "has_tombstones": bool(index._tombstones),
        "has_norms2": True,
    }
    arrays: Dict[str, np.ndarray] = {
        prefix + "data": index.data,
        prefix + "tensor": index._hasher.tensor,
        # Ship the precomputed squared norms the chunked-GEMM verifier
        # needs, so loading never pays the O(n d) einsum recompute.
        prefix + "norms2": index._norms2[: index._n],
        prefix + "table_low": np.stack(index._table_low),
        prefix + "table_high": np.stack(index._table_high),
    }
    tombstones = index._tombstone_array()
    if tombstones is not None:
        arrays[prefix + "tombstones"] = tombstones
    if flats is not None:
        for i, flat in enumerate(flats):
            for key, array in flat.to_arrays(mirrored=mirrored_coords).items():
                arrays[f"{prefix}flat{i}.{key}"] = array
    return header, arrays


def _write_arena(path: str, header: dict, arrays: Dict[str, np.ndarray]) -> None:
    """Atomically write ``header`` + ``arrays`` as an arena file at ``path``.

    Lays out every member C-contiguously on an :data:`ARENA_ALIGN`
    boundary, records its ``(offset, nbytes, dtype, shape, crc32)`` in
    the header's member table, and lands the whole file through the same
    tmp + fsync + ``os.replace`` + directory-fsync dance as the npz
    writer, so a crash mid-save never touches the previous snapshot.
    """
    members: Dict[str, dict] = {}
    blobs: List[Tuple[int, np.ndarray]] = []
    offset = 0
    for name, array in arrays.items():
        arr = np.ascontiguousarray(array)
        offset = _align_up(offset)
        members[name] = {
            "offset": offset,
            "nbytes": int(arr.nbytes),
            "dtype": arr.dtype.str,
            # The *original* shape: ascontiguousarray promotes 0-d
            # members to 1-d, which must not leak into the round-trip.
            "shape": [int(s) for s in np.shape(array)],
            "crc32": _array_crc(arr),
        }
        blobs.append((offset, arr))
        offset += arr.nbytes
    span = offset
    header = dict(header, members=members)
    header_bytes = json.dumps(header).encode()
    data_start = _align_up(_ARENA_PREAMBLE_LEN + len(header_bytes))
    preamble = ARENA_MAGIC + _ARENA_PREAMBLE.pack(
        ARENA_VERSION, crc32(header_bytes), len(header_bytes), data_start
    )
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(preamble)
            handle.write(header_bytes)
            handle.write(b"\x00" * (data_start - _ARENA_PREAMBLE_LEN - len(header_bytes)))
            pos = 0  # relative to data_start from here on
            for member_offset, arr in blobs:
                handle.write(b"\x00" * (member_offset - pos))
                if arr.nbytes:  # memoryview.cast rejects zero-sized shapes
                    handle.write(memoryview(arr).cast("B"))
                pos = member_offset + arr.nbytes
            handle.write(b"\x00" * (span - pos))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(os.path.dirname(path))


def save_index(
    index,
    path: str,
    compress: bool = False,
    *,
    format: str = "arena",
    uid: Optional[str] = None,
    parent_uid: Optional[str] = None,
    next_id: Optional[int] = None,
) -> None:
    """Persist a fitted :class:`DBLSH` or ``ShardedDBLSH`` to ``path``.

    By default the snapshot is an **arena** file (see the module
    docstring): loading maps it read-only in O(1) and adopts every array
    as a zero-copy view, and concurrent serving workers share one
    physical copy of its pages.  ``format="npz"`` writes the legacy
    ``.npz`` container instead (version :data:`SNAPSHOT_VERSION`), which
    any numpy can read back without this package.  A sharded index is
    stored shard-by-shard under ``shard{i}.`` key prefixes in either
    container (together with the parent's ``t`` and ``budget`` mode, so
    a ``budget="split"`` index round-trips its per-shard ``t/S`` knobs),
    which is what lets serving workers later load single shards with
    :func:`load_shard` without touching the rest of the file.

    The write is **crash-safe**: the archive lands in a temp file that is
    fsync'd and then atomically renamed over ``path`` (directory fsync
    included).  A process killed mid-save leaves the previous snapshot
    readable; it never corrupts it in place.  Every payload member's
    CRC32 is recorded in the header and re-verified when the member is
    read back.

    Parameters
    ----------
    index:
        A fitted :class:`DBLSH` or ``ShardedDBLSH``.
    path:
        Output path, conventionally ending in ``.npz`` (the suffix is
        appended if missing — for both containers; the loader sniffs
        the container from the file's first bytes, never the suffix).
    format:
        ``"arena"`` (default) or ``"npz"``.  ``compress=True`` always
        writes the npz container: deflated bytes cannot be mapped.
    uid:
        Generation identity recorded in the header; a fresh random hex
        uid is generated when omitted.  The write-ahead log
        (:mod:`repro.io.wal`) binds to this value.
    parent_uid:
        Uid of the snapshot generation this one was compacted from
        (``None`` for a from-scratch build) — recovery accepts a log
        bound to either end of that edge.
    next_id:
        Mutation id counter to persist (first id a future insert may
        use).  Defaults to the physical row count; a serving layer that
        has deleted the highest ids passes its own counter so ids are
        never reused.
    compress:
        By default the archive is **uncompressed**: the payload is dense
        float64 coordinates that deflate poorly (~10% on typical data),
        and compressing them made ``save`` take several seconds per
        100 MB while ``load`` stayed fast — saving now costs what
        loading costs.  Pass ``True`` to trade save time for the smaller
        archive.

    Raises
    ------
    RuntimeError
        If ``index`` has not been fitted (``fit()`` never called).
    TypeError
        If ``index`` is neither a :class:`DBLSH` nor a ``ShardedDBLSH``
        (baselines do not snapshot).

    Examples
    --------
    >>> import numpy as np, os, tempfile
    >>> from repro import DBLSH
    >>> from repro.io import save_index, load_index
    >>> data = np.random.default_rng(0).standard_normal((48, 6))
    >>> index = DBLSH(l_spaces=2, k_per_space=3, t=8, seed=0).fit(data)
    >>> path = os.path.join(tempfile.mkdtemp(), "index.npz")
    >>> save_index(index, path)
    >>> load_index(path).query(data[7], k=1).ids
    [7]
    """
    from repro.core.sharded import ShardedDBLSH

    if format not in ("arena", "npz"):
        raise ValueError(f"format must be 'arena' or 'npz', got {format!r}")
    if compress:
        format = "npz"  # a deflated arena could not be mapped
    version = ARENA_VERSION if format == "arena" else SNAPSHOT_VERSION
    mirrored = format == "arena"
    if isinstance(index, ShardedDBLSH):
        shard_headers = []
        arrays: Dict[str, np.ndarray] = {}
        for i, shard in enumerate(index.shard_indexes):
            shard_header, shard_arrays = _pack_dblsh(
                shard, f"shard{i}.", mirrored_coords=mirrored
            )
            shard_headers.append(shard_header)
            arrays.update(shard_arrays)
        header = {
            "format": SNAPSHOT_FORMAT,
            "version": version,
            "kind": "sharded",
            "build_seconds": float(index.build_seconds),
            "t": int(index.t),
            "budget": index.budget,
            "shard_headers": shard_headers,
        }
    elif isinstance(index, DBLSH):
        index_header, arrays = _pack_dblsh(index, "", mirrored_coords=mirrored)
        header = {
            "format": SNAPSHOT_FORMAT,
            "version": version,
            "kind": "dblsh",
            "index": index_header,
        }
    else:
        raise TypeError(f"cannot snapshot object of type {type(index).__name__}")
    header["uid"] = str(uid) if uid is not None else os.urandom(8).hex()
    header["parent_uid"] = None if parent_uid is None else str(parent_uid)
    header["next_id"] = (
        int(next_id) if next_id is not None else int(index.num_points)
    )
    if not path.endswith(".npz"):
        path = path + ".npz"
    if format == "arena":
        _write_arena(path, header, arrays)
        return
    header["checksums"] = {
        name: _array_crc(array) for name, array in arrays.items()
    }
    writer = np.savez_compressed if compress else np.savez
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            writer(handle, header=np.bytes_(json.dumps(header).encode()), **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(os.path.dirname(path))


# ----------------------------------------------------------------------
# Unpacking
# ----------------------------------------------------------------------


def _open_archive(path: str):
    """Open ``path`` as a snapshot archive, mapping junk to SnapshotError.

    Sniffs the container from the file's first bytes: the arena magic
    opens an :class:`_ArenaArchive` (zero-copy mapped views), anything
    else is tried as an ``.npz`` archive.  ``FileNotFoundError``
    propagates unchanged (the caller's path is wrong, not the file's
    contents); anything that parses as neither container becomes a
    :class:`SnapshotError`.
    """
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(ARENA_MAGIC))
    except FileNotFoundError:
        raise
    except OSError as exc:
        raise SnapshotError(
            f"{path!r} is not a readable {SNAPSHOT_FORMAT} file"
        ) from exc
    if magic == ARENA_MAGIC:
        return _ArenaArchive(path)
    try:
        return _VerifiedArchive(np.load(path, allow_pickle=False), path)
    except FileNotFoundError:
        raise
    except (ValueError, OSError, zipfile.BadZipFile) as exc:
        raise SnapshotError(
            f"{path!r} is not a {SNAPSHOT_FORMAT} file (neither an arena "
            f"snapshot nor an .npz archive)"
        ) from exc


def _parse_header(archive, path: str) -> dict:
    """Validated JSON header of an open archive (either container).

    An arena archive validated its header (magic, version, CRC, member
    structure) when it was opened; the npz container stores the header
    as a member and validates it here.
    """
    if isinstance(archive, _ArenaArchive):
        return archive.header
    if "header" not in archive.files:
        raise SnapshotError(f"{path!r} is not a {SNAPSHOT_FORMAT} file (no header)")
    try:
        header = json.loads(bytes(archive["header"]).decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"{path!r} has an unreadable snapshot header") from exc
    if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path!r} is not a {SNAPSHOT_FORMAT} file")
    version = header.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path!r} is snapshot version {version!r}; this build reads "
            f"version {SNAPSHOT_VERSION} (re-save the index with this build)"
        )
    if isinstance(archive, _VerifiedArchive):
        # Arm per-member CRC verification for every later payload read.
        archive.set_checksums(header.get("checksums"))
    return header


def _unpack_flats(
    header: dict, archive, prefix: str
) -> Optional[List[FlatRStarTree]]:
    if not header.get("has_flat"):
        return None
    flats = []
    names = _member_names(archive)
    for i in range(int(header["l_spaces"])):
        p = f"{prefix}flat{i}."
        arrays = {key: archive[p + key] for key in _FLAT_FIXED_KEYS}
        # Arena snapshots store the pre-mirrored [x, -x] coordinates the
        # engine uses (adopted as a mapped view, no copy); npz snapshots
        # store the single-sided form and pay the mirror copy at load.
        coords_key = "coords_cat" if p + "coords_cat" in names else "leaf_coords"
        arrays[coords_key] = archive[p + coords_key]
        n_levels = int(np.asarray(arrays["meta"]).reshape(-1)[4])
        for j in range(n_levels):
            for part in ("cat", "start", "end"):
                key = f"level{j}_{part}"
                arrays[key] = archive[p + key]
        flats.append(FlatRStarTree.from_arrays(arrays))
    return flats


def _unpack_dblsh(header: dict, archive, prefix: str) -> DBLSH:
    seed = header.get("seed")
    data = archive[prefix + "data"]
    tensor = archive[prefix + "tensor"]
    expected = (int(header["l_spaces"]), int(header["k_per_space"]), int(header["dim"]))
    if tensor.shape != expected or data.ndim != 2 or data.shape[1] != expected[2]:
        raise SnapshotError(
            f"snapshot payload disagrees with its header: tensor shape "
            f"{tensor.shape} / data shape {data.shape}, expected (L, K, d) = {expected}"
        )
    return DBLSH._restore(
        data=data,
        tensor=tensor,
        c=float(header["c"]),
        w0=float(header["w0"]),
        k_per_space=int(header["k_per_space"]),
        l_spaces=int(header["l_spaces"]),
        t=int(header["t"]),
        backend=str(header["backend"]),
        engine=str(header["engine"]),
        max_entries=int(header["max_entries"]),
        initial_radius=float(header["initial_radius"]),
        patience=header.get("patience"),
        seed=0 if seed is None else int(seed),
        table_low=archive[prefix + "table_low"],
        table_high=archive[prefix + "table_high"],
        norms2=(
            archive[prefix + "norms2"] if header.get("has_norms2") else None
        ),
        flats=_unpack_flats(header, archive, prefix),
        build_seconds=float(header.get("build_seconds", 0.0)),
        builder=str(header.get("builder", "array")),
        tombstones=(
            archive[prefix + "tombstones"]
            if header.get("has_tombstones")
            else None
        ),
    )


def read_header(path: str) -> dict:
    """Return a snapshot's JSON header without loading any payload arrays."""
    with _open_archive(path) as archive:
        return _parse_header(archive, path)


def shard_headers(header: dict) -> List[dict]:
    """The per-shard index headers of a parsed snapshot header.

    Uniform view over both snapshot kinds: a ``"sharded"`` snapshot
    yields one header per shard, a ``"dblsh"`` snapshot yields its
    single index header (a one-shard deployment).  Each entry carries
    the scalars serving needs before any payload is read — ``n``,
    ``dim``, ``k_per_space``, ``l_spaces``, ``t`` — so a coordinator can
    compute shard offsets and validate query shapes from
    :func:`read_header` alone.
    """
    kind = header.get("kind")
    if kind == "dblsh":
        return [header["index"]]
    if kind == "sharded":
        return list(header["shard_headers"])
    raise SnapshotError(f"unknown snapshot kind {kind!r}")


def load_index(path: str):
    """Restore the index persisted at ``path``.

    On the default ``rstar`` backend loading is **zero rebuild**: the
    frozen traversal arrays are adopted as stored, so the first query
    runs without a projection pass or bulk load.  The ablation backends
    (``kdtree``, ``grid``, ``rstar-insert``) rebuild their tables from
    the stored projection tensor during the load.

    Parameters
    ----------
    path:
        A snapshot written by :func:`save_index` (or ``index.save()``).

    Returns
    -------
    DBLSH or ShardedDBLSH
        According to the snapshot ``kind`` header field.  To serve a
        sharded snapshot one worker process per shard, see
        :func:`load_shard` and :class:`repro.serve.SnapshotServer`.

    Raises
    ------
    SnapshotError
        If the file has no readable snapshot header, was written under a
        different ``SNAPSHOT_VERSION``, declares an unknown kind, has a
        payload that disagrees with its header, or is missing payload
        entries (a truncated or hand-edited archive).

    Examples
    --------
    >>> from repro.io import load_index, SnapshotError
    >>> try:
    ...     load_index(__file__)  # not a snapshot
    ... except SnapshotError:
    ...     print("rejected")
    rejected
    """
    with _open_archive(path) as archive:
        header = _parse_header(archive, path)
        kind = header.get("kind")
        try:
            if kind == "dblsh":
                return _unpack_dblsh(header["index"], archive, "")
            if kind == "sharded":
                from repro.core.sharded import ShardedDBLSH

                shards = [
                    _unpack_dblsh(shard_header, archive, f"shard{i}.")
                    for i, shard_header in enumerate(header["shard_headers"])
                ]
                return ShardedDBLSH._restore(
                    shards=shards,
                    build_seconds=float(header.get("build_seconds", 0.0)),
                    t=header.get("t"),
                    budget=str(header.get("budget", "full")),
                )
        except KeyError as exc:
            # A valid header whose payload member is missing: truncated
            # write or hand-edited archive, not a compatible snapshot.
            raise SnapshotError(
                f"{path!r} is missing snapshot payload entry {exc.args[0]!r}"
            ) from exc
        raise SnapshotError(f"{path!r} has unknown snapshot kind {kind!r}")


def load_shard(path: str, shard: int) -> DBLSH:
    """Restore one shard of the snapshot at ``path`` as a standalone index.

    The worker-side entry point of multi-process serving
    (:mod:`repro.serve`): each worker process loads only *its* shard —
    ``.npz`` members are read on access, so the other shards' payloads
    are never pulled off disk — and answers queries against it with
    shard-local ids.  The coordinator maps ids back to global through
    the shard offsets (:func:`shard_headers` gives the sizes).

    A ``"dblsh"``-kind snapshot is served as a single shard: only
    ``shard == 0`` is valid and returns the whole index.

    Parameters
    ----------
    path:
        A snapshot written by :func:`save_index`.
    shard:
        Shard ordinal in ``[0, shards)``.

    Returns
    -------
    DBLSH
        The shard's sub-index, exactly as ``ShardedDBLSH.load(path)``
        would hold it (zero rebuild on the ``rstar`` backend), with the
        per-shard budget knob the snapshot recorded (``t/S`` for a
        ``budget="split"`` parent).

    Raises
    ------
    SnapshotError
        If the file is not a compatible snapshot, or ``shard`` is out of
        range for it.
    """
    with _open_archive(path) as archive:
        header = _parse_header(archive, path)
        headers = shard_headers(header)
        if not 0 <= int(shard) < len(headers):
            raise SnapshotError(
                f"{path!r} holds {len(headers)} shard(s); shard {shard} requested"
            )
        prefix = "" if header["kind"] == "dblsh" else f"shard{int(shard)}."
        try:
            return _unpack_dblsh(headers[int(shard)], archive, prefix)
        except KeyError as exc:
            raise SnapshotError(
                f"{path!r} is missing snapshot payload entry {exc.args[0]!r}"
            ) from exc


def load_data(path: str) -> np.ndarray:
    """The indexed points of a snapshot in global id order, nothing else.

    Reads only the ``data`` members — not the traversal arrays or the
    projection tensor — so evaluation code can compute ground truth
    against a served snapshot without restoring a queryable index in the
    evaluating process.
    """
    with _open_archive(path) as archive:
        header = _parse_header(archive, path)
        try:
            if header["kind"] == "dblsh":
                return archive["data"]
            return np.concatenate(
                [
                    archive[f"shard{i}.data"]
                    for i in range(len(shard_headers(header)))
                ]
            )
        except KeyError as exc:
            raise SnapshotError(
                f"{path!r} is missing snapshot payload entry {exc.args[0]!r}"
            ) from exc


def load_tombstones(path: str) -> np.ndarray:
    """Global ids of the snapshot's logically deleted rows (sorted int64).

    Reads only the per-shard ``tombstones`` members (shard-local ids are
    mapped to global through the header's shard sizes) — no traversal
    arrays, no data.  Recovery uses this to replay a write-ahead log
    idempotently over a freshly compacted snapshot: a logged delete whose
    id is already baked in here is a no-op.
    """
    with _open_archive(path) as archive:
        header = _parse_header(archive, path)
        parts: List[np.ndarray] = []
        offset = 0
        try:
            for i, shard_header in enumerate(shard_headers(header)):
                prefix = "" if header["kind"] == "dblsh" else f"shard{i}."
                if shard_header.get("has_tombstones"):
                    local = np.asarray(
                        archive[prefix + "tombstones"], dtype=np.int64
                    )
                    parts.append(local + offset)
                offset += int(shard_header["n"])
        except KeyError as exc:
            raise SnapshotError(
                f"{path!r} is missing snapshot payload entry {exc.args[0]!r}"
            ) from exc
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))


def verify_snapshot(path: str) -> dict:
    """Full-content integrity pass over every member of the snapshot.

    The default load path deliberately stays O(1) for arena snapshots —
    it validates the preamble, the header CRC, and every member's byte
    range without faulting data pages.  This function is the explicit
    opposite trade: it reads **every member's bytes** and checks them
    against the CRC32 recorded at save time, raising a
    :class:`SnapshotError` that names the first corrupt member.  Run it
    after a copy, a download, or a suspected disk fault; serving setups
    can run it once per generation before ``reload``.

    Returns
    -------
    dict
        ``{"path", "container" ("arena" or "npz"), "version", "members",
        "payload_bytes"}`` summary of what was verified.

    Raises
    ------
    SnapshotError
        If the file is not a snapshot, its header is corrupt, or any
        member's bytes fail their recorded checksum.
    """
    with _open_archive(path) as archive:
        header = _parse_header(archive, path)
        container = "arena" if isinstance(archive, _ArenaArchive) else "npz"
        members = 0
        payload_bytes = 0
        for name in sorted(archive.files):
            if container == "npz" and name == "header":
                continue
            array = archive[name]  # npz: CRC verified by the archive itself
            members += 1
            payload_bytes += int(array.nbytes)
            if container == "arena":
                stored = archive.member_crc(name)
                if stored is not None and _array_crc(array) != stored:
                    raise SnapshotError(
                        f"{path!r}: snapshot member {name!r} failed its "
                        f"checksum (stored CRC32 {stored}) — the file bytes "
                        f"were altered after save_index() wrote them"
                    )
        return {
            "path": path,
            "container": container,
            "version": int(header["version"]),
            "members": members,
            "payload_bytes": payload_bytes,
        }
