"""Segmented, group-commit write-ahead log for live mutations.

The mutation path promises: *an acked mutation survives* ``kill -9``.
The snapshot alone cannot provide that — rewriting a multi-megabyte
``.npz`` per insert is absurd — so accepted mutations are first appended
to this log and ``fsync``'d, and only then acknowledged.  On restart the
server replays the log over the snapshot it was bound to and recovers
exactly the acked state.

Layout
------

The log is a **directory** of CRC-framed segments::

    <path>/
        wal.000001.seg
        wal.000002.seg
        ...

Each segment (all integers little-endian)::

    magic     8 bytes   b"REPROWAL"
    header    [u32 len][u32 crc32][len bytes of JSON]
    records   [u32 len][u32 crc32][len bytes of payload] ...

The JSON header binds the segment to one snapshot *generation*: it names
the ``snapshot_uid`` the records apply on top of (and that snapshot's
``parent_uid``, so recovery can accept a log written just *before* a
compaction flip), the id counter ``next_id``, and the segment's ordinal.
A log created as a single regular file by older builds is migrated into
the directory layout (the file becomes ``wal.000001.seg``) on open.

Record payloads are binary, one mutation each:

* ``insert`` — ``u8 op=1, u64 id, u32 dim,`` then ``dim`` float64s;
* ``delete`` — ``u8 op=2, u64 id``;
* ``checkpoint`` — ``u8 op=3,`` then a UTF-8 snapshot uid: everything
  before this record is folded into that snapshot generation.

Group commit
------------

With ``group_window > 0`` appends go through a single **committer
thread**: concurrent submitters enqueue framed records into a bounded
in-memory batch and receive a :class:`CommitTicket`; the committer
flushes + ``fsync``'s the whole batch once — when the window elapses
after the batch's first record, or the batch reaches ``group_bytes``,
whichever comes first — and only then resolves the tickets.  One disk
sync amortizes over every mutation in the group, but the fsync-before-
ack invariant is untouched: ``CommitTicket.wait`` returns only after
the group's fsync.  ``group_window == 0`` keeps the classic synchronous
one-fsync-per-append path (the ungrouped baseline the benchmarks
compare against).

Segments rotate when the live segment would exceed ``segment_bytes``.
Compaction no longer rewrites one monolithic file: it calls
:meth:`WriteAheadLog.roll_checkpoint`, which seals the live segment,
opens a fresh one bound to the new generation whose first record is a
checkpoint, re-logs the still-pending mutations, fsyncs, and only then
deletes the fully-checkpointed older segments.  Recovery replays
segments in ordinal order starting at the newest segment that *begins*
with a checkpoint record, truncates a torn tail **only in the last
segment** (a torn record in a sealed segment is corruption, not a
crash), and deletes stale pre-checkpoint segments left by a crash
between the checkpoint fsync and the deletes.

Fault injection (tests only): the ``REPRO_WAL_FAULT`` environment
variable arms a one-shot crash at a deterministic point, mirroring the
``REPRO_SERVE_FAULT`` idiom of :mod:`repro.serve.worker`.  Specs are
comma-separated ``<point>[:<nth>]``:

* ``pre-append`` — exit before writing the *nth* submitted record
  (mutation fully lost, never acked);
* ``torn`` — write *half* of the *nth* record, fsync the fragment,
  exit: the torn-tail case recovery must truncate;
* ``post-fsync`` — the group containing the *nth* record is fully
  durable but the process exits before any ticket resolves: recovery
  may surface the records, the clients just never heard the ack;
* ``mid-group`` — the *nth* flush group is written only up to its
  midpoint, that prefix fsync'd, then death: a partially-durable group
  none of whose mutations were acked;
* ``between-segment`` — exit right after the *nth* rotation makes the
  new segment's header durable, before any record lands in it;
* ``pre-segment-delete`` — exit after the *nth* checkpoint segment is
  durable but before the folded older segments are deleted: recovery
  must pick the checkpoint as base and clean the stale segments.

An additional ``REPRO_WAL_SLOW_FSYNC_MS`` variable injects a simulated
per-``fsync`` latency so group-commit amortization is measurable on
hosts whose real disk sync is faster than a scheduler tick.  Production
deployments simply never set either variable.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import struct
import threading
import time
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union
from zlib import crc32

import numpy as np

__all__ = [
    "WALError",
    "WriteAheadLog",
    "CommitTicket",
    "InsertRecord",
    "DeleteRecord",
    "CheckpointRecord",
    "wal_present",
]

WAL_MAGIC = b"REPROWAL"
WAL_FORMAT = "repro-wal"
WAL_VERSION = 2

_FRAME = struct.Struct("<II")  # (length, crc32) framing both header and records
_OP_INSERT, _OP_DELETE, _OP_CHECKPOINT = 1, 2, 3
_INSERT_HEAD = struct.Struct("<BQI")  # op, id, dim
_DELETE_HEAD = struct.Struct("<BQ")  # op, id
# A corrupt length field must not make recovery try to materialize
# gigabytes: no legitimate record (a point payload) approaches this.
_MAX_RECORD = 1 << 26

_SEGMENT_RE = re.compile(r"^wal\.(\d{6,})\.seg$")

DEFAULT_GROUP_BYTES = 1 << 20
DEFAULT_SEGMENT_BYTES = 1 << 22

#: Fault points that target one submitted record (0-based record ordinal).
_RECORD_FAULTS = ("pre-append", "torn", "post-fsync")


class WALError(Exception):
    """Raised for unreadable, mismatched, or corrupt write-ahead logs."""


class InsertRecord(NamedTuple):
    """An acked insert: global ``id`` and its float64 ``point``."""

    id: int
    point: np.ndarray


class DeleteRecord(NamedTuple):
    """An acked delete of global ``id``."""

    id: int


class CheckpointRecord(NamedTuple):
    """Everything before this record is folded into snapshot ``uid``."""

    uid: str


Record = Union[InsertRecord, DeleteRecord, CheckpointRecord]


def _segment_name(ordinal: int) -> str:
    return f"wal.{ordinal:06d}.seg"


def _fsync_dir(path: str) -> None:
    """fsync the directory so a rename/creation itself is durable."""
    fd = os.open(path or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def wal_present(path: str) -> bool:
    """True when a log (directory, legacy file, or mid-migration staging
    directory) exists at ``path`` — the check recovery must use so a
    crash mid-migration never looks like a missing log."""
    return os.path.exists(path) or os.path.isdir(path + ".migrating")


def _parse_faults() -> List[Tuple[str, int]]:
    out = []
    for part in filter(None, os.environ.get("REPRO_WAL_FAULT", "").split(",")):
        fields = part.split(":")
        try:
            target = int(fields[1]) if len(fields) > 1 else 0
        except ValueError:
            continue  # malformed spec: never let a typo crash serving
        out.append((fields[0], target))
    return out


def _armed_fault(point: str, ordinal: int) -> bool:
    """True when ``REPRO_WAL_FAULT`` arms ``point`` at this ordinal."""
    return any(p == point and t == ordinal for p, t in _parse_faults())


def _fsync_delay() -> float:
    """Injected per-fsync latency (seconds) from ``REPRO_WAL_SLOW_FSYNC_MS``."""
    raw = os.environ.get("REPRO_WAL_SLOW_FSYNC_MS", "")
    try:
        return max(0.0, float(raw)) / 1000.0 if raw else 0.0
    except ValueError:
        return 0.0


def _encode_insert(point_id: int, point: np.ndarray) -> bytes:
    vector = np.ascontiguousarray(point, dtype="<f8").ravel()
    return (
        _INSERT_HEAD.pack(_OP_INSERT, int(point_id), vector.shape[0])
        + vector.tobytes()
    )


def _encode_delete(point_id: int) -> bytes:
    return _DELETE_HEAD.pack(_OP_DELETE, int(point_id))


def _encode_checkpoint(uid: str) -> bytes:
    return bytes([_OP_CHECKPOINT]) + uid.encode("utf-8")


def _encode_record(record: Record) -> bytes:
    if isinstance(record, InsertRecord):
        return _encode_insert(record.id, record.point)
    if isinstance(record, DeleteRecord):
        return _encode_delete(record.id)
    if isinstance(record, CheckpointRecord):
        return _encode_checkpoint(record.uid)
    raise TypeError(f"not a WAL record: {record!r}")


def _decode(payload: bytes) -> Record:
    op = payload[0]
    if op == _OP_INSERT:
        _, rec_id, dim = _INSERT_HEAD.unpack_from(payload)
        point = np.frombuffer(
            payload, dtype="<f8", count=dim, offset=_INSERT_HEAD.size
        )
        return InsertRecord(int(rec_id), point.copy())
    if op == _OP_DELETE:
        _, rec_id = _DELETE_HEAD.unpack_from(payload)
        return DeleteRecord(int(rec_id))
    if op == _OP_CHECKPOINT:
        return CheckpointRecord(payload[1:].decode("utf-8"))
    # A valid CRC with an unknown op is not a torn tail — it is a log
    # written by something newer than this reader.  Refusing beats
    # silently dropping an acked mutation we cannot interpret.
    raise WALError(f"unknown WAL record op {op}")


class CommitTicket:
    """A pending group-commit acknowledgement.

    :meth:`wait` blocks until the group holding this record has been
    flushed and ``fsync``'d (or the commit failed), returning the log's
    durable byte count — the durability receipt the caller acks on.
    """

    __slots__ = ("_event", "_error", "_size")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._error: Optional[BaseException] = None
        self._size = 0

    def _resolve(self, size: int) -> None:
        self._size = size
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> int:
        if not self._event.wait(timeout):
            raise WALError("timed out waiting for the group commit fsync")
        if self._error is not None:
            raise self._error
        return self._size


class _PendingRecord(NamedTuple):
    payload: bytes
    ticket: CommitTicket
    fault: Optional[str]


class WriteAheadLog:
    """An append-only, CRC-framed, segmented, group-commit mutation log.

    Construct via :meth:`create` (new log bound to a snapshot uid) or
    :meth:`open` (existing log: validates the header binding, replays
    the segments into :attr:`recovered`, truncates a torn tail in the
    last segment, deletes stale pre-checkpoint segments, and positions
    the live segment for further appends).
    """

    def __init__(
        self,
        path,
        file,
        header,
        recovered,
        truncated_bytes,
        *,
        ordinal,
        seg_size,
        seg_records,
        sealed,
        group_window,
        group_bytes,
        segment_bytes,
    ):
        # Internal: use WriteAheadLog.create() / WriteAheadLog.open().
        self.path = path
        self._file = file
        self._header = header
        #: Records replayed by :meth:`open` (empty for a fresh log).
        self.recovered: List[Record] = recovered
        #: Bytes of torn tail discarded by :meth:`open`.
        self.truncated_bytes = truncated_bytes
        self._ordinal = ordinal  # ordinal of the live (appendable) segment
        self._seg_size = seg_size  # bytes in the live segment
        self._seg_records = seg_records  # records in the live segment
        #: Sealed (read-only) live segments: [(ordinal, bytes)].
        self._sealed: List[Tuple[int, int]] = list(sealed)
        self._size = seg_size + sum(size for _, size in self._sealed)
        self.group_window = max(0.0, float(group_window))
        self.group_bytes = max(1, int(group_bytes))
        self.segment_bytes = max(_FRAME.size + 1, int(segment_bytes))

        # Group-commit state.  _cond guards the pending batch; _io_lock
        # serializes the actual file writes so submitters can keep
        # enqueueing while a group's fsync is in flight.
        self._cond = threading.Condition()
        self._io_lock = threading.Lock()
        self._pending: List[_PendingRecord] = []
        self._pending_bytes = 0
        self._first_ts = 0.0
        self._flushing = False
        self._hurry = False
        self._closed = False
        self._records_submitted = 0  # record-fault ordinal counter
        self._groups = 0
        self._records_committed = 0
        self._rotations = 0
        self._checkpoints = 0
        self._last_group_records = 0
        self._committer: Optional[threading.Thread] = None
        if self.group_window > 0:
            self._committer = threading.Thread(
                target=self._committer_loop,
                name="repro-wal-committer",
                daemon=True,
            )
            self._committer.start()

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        snapshot_uid: str,
        parent_uid: Optional[str] = None,
        next_id: int = 0,
        *,
        group_window: float = 0.0,
        group_bytes: int = DEFAULT_GROUP_BYTES,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> "WriteAheadLog":
        """Create a fresh segmented log at directory ``path``.

        The first segment's header is written and fsync'd (file and
        directory both) before :meth:`open` takes over, so a crash
        during creation leaves either no log or a replayable empty one.
        An existing log (directory or legacy file) at ``path`` is
        replaced.
        """
        if os.path.isdir(path):
            shutil.rmtree(path)
        elif os.path.exists(path):
            os.unlink(path)
        header = {
            "format": WAL_FORMAT,
            "version": WAL_VERSION,
            "snapshot_uid": str(snapshot_uid),
            "parent_uid": None if parent_uid is None else str(parent_uid),
            "next_id": int(next_id),
            "segment": 1,
        }
        os.mkdir(path)
        seg = os.path.join(path, _segment_name(1))
        with open(seg, "wb") as handle:
            _write_segment_header(handle, header)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_dir(path)
        _fsync_dir(os.path.dirname(path))
        return cls.open(
            path,
            group_window=group_window,
            group_bytes=group_bytes,
            segment_bytes=segment_bytes,
        )

    @staticmethod
    def _migrate_legacy(path: str) -> None:
        """Turn a pre-segmentation single-file log into a directory.

        The regular file becomes ``wal.000001.seg`` via a hardlink into
        a staging directory, so every crash window leaves either the
        original file, both, or the finished directory — never neither.
        :meth:`open` (via this method) finishes an interrupted move.
        """
        staging = path + ".migrating"
        if os.path.isfile(path):
            if os.path.isdir(staging):
                shutil.rmtree(staging)  # stale attempt; the file is intact
            os.mkdir(staging)
            os.link(path, os.path.join(staging, _segment_name(1)))
            _fsync_dir(staging)
            os.unlink(path)
            _fsync_dir(os.path.dirname(path))
            os.rename(staging, path)
            _fsync_dir(os.path.dirname(path))
        elif os.path.isdir(staging) and not os.path.exists(path):
            # Crashed after unlinking the file, before the final rename.
            os.rename(staging, path)
            _fsync_dir(os.path.dirname(path))

    @classmethod
    def open(
        cls,
        path: str,
        accept_uids: Optional[Sequence[str]] = None,
        *,
        group_window: float = 0.0,
        group_bytes: int = DEFAULT_GROUP_BYTES,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> "WriteAheadLog":
        """Open an existing log, replaying segments and truncating a torn tail.

        ``accept_uids`` — when given, the uids of the snapshot(s) the
        caller intends to replay against (typically the live snapshot's
        ``uid`` *and* its ``parent_uid``, to cover a crash between a
        compaction's snapshot flip and its checkpoint roll).  A log
        bound to none of them raises :class:`WALError` rather than
        replaying mutations onto the wrong data.

        Replay starts at the **base segment** — the highest-ordinal
        segment whose first record is a checkpoint (everything older is
        folded into a snapshot and is deleted here), or the oldest
        segment when no checkpoint segment exists.  A torn record is
        truncated only in the last segment; inside a sealed segment it
        is corruption and raises.
        """
        cls._migrate_legacy(path)
        if not os.path.isdir(path):
            raise WALError(f"{path!r} is not a repro write-ahead log")
        entries: List[Tuple[int, str]] = []
        for name in os.listdir(path):
            match = _SEGMENT_RE.match(name)
            if match:
                entries.append((int(match.group(1)), os.path.join(path, name)))
        if not entries:
            raise WALError(f"{path!r}: log directory holds no segments")
        entries.sort()

        headers: Dict[int, dict] = {}
        base_idx = 0
        for idx, (ordinal, seg_path) in enumerate(entries):
            with open(seg_path, "rb") as handle:
                headers[ordinal] = _read_segment_header(handle, seg_path)
                if _peek_checkpoint(handle):
                    base_idx = idx

        base_header = headers[entries[base_idx][0]]
        if accept_uids is not None:
            accepted = {u for u in accept_uids if u}
            if base_header.get("snapshot_uid") not in accepted:
                raise WALError(
                    f"{path!r} is bound to snapshot uid "
                    f"{base_header.get('snapshot_uid')!r}, not one of "
                    f"{sorted(accepted)} — refusing to replay it"
                )

        # Segments older than the base are fully folded into a snapshot
        # (a crash between a checkpoint roll's fsync and its deletes
        # leaves them behind): finish the cleanup.
        if base_idx:
            for _, seg_path in entries[:base_idx]:
                os.unlink(seg_path)
            _fsync_dir(path)
            entries = entries[base_idx:]

        recovered: List[Record] = []
        truncated = 0
        next_id = 0
        sealed: List[Tuple[int, int]] = []
        last = len(entries) - 1
        live_offset = 0
        live_records = 0
        for idx, (ordinal, seg_path) in enumerate(entries):
            header = headers[ordinal]
            if header.get("snapshot_uid") != base_header.get("snapshot_uid"):
                raise WALError(
                    f"{seg_path!r} is bound to snapshot uid "
                    f"{header.get('snapshot_uid')!r} but the base segment "
                    f"binds {base_header.get('snapshot_uid')!r} — mixed log"
                )
            next_id = max(next_id, int(header.get("next_id", 0)))
            with open(seg_path, "rb") as handle:
                _read_segment_header(handle, seg_path)
                offset = handle.tell()
                size = os.fstat(handle.fileno()).st_size
                count = 0
                while True:
                    head = handle.read(_FRAME.size)
                    if len(head) < _FRAME.size:
                        break  # clean EOF or torn frame header
                    length, checksum = _FRAME.unpack(head)
                    if length > _MAX_RECORD:
                        break  # corrupt length field: treat as torn tail
                    payload = handle.read(length)
                    if len(payload) < length or crc32(payload) != checksum:
                        break  # torn or bit-flipped tail record
                    recovered.append(_decode(payload))
                    count += 1
                    offset = handle.tell()
            torn = size - offset
            if idx < last:
                if torn:
                    # Sealed segments were fsync'd before the next one
                    # opened: a bad record here lost acked data.
                    raise WALError(
                        f"{seg_path!r}: torn record inside a sealed segment "
                        f"— only the last segment may have a torn tail"
                    )
                sealed.append((ordinal, size))
            else:
                truncated = torn
                live_offset = offset
                live_records = count

        live_ordinal, live_path = entries[last]
        file = open(live_path, "r+b")
        try:
            if truncated:
                file.truncate(live_offset)
                file.flush()
                os.fsync(file.fileno())
            file.seek(live_offset)
            header = dict(headers[live_ordinal])
            header["next_id"] = max(next_id, int(header.get("next_id", 0)))
            return cls(
                path,
                file,
                header,
                recovered,
                truncated,
                ordinal=live_ordinal,
                seg_size=live_offset,
                seg_records=live_records,
                sealed=sealed,
                group_window=group_window,
                group_bytes=group_bytes,
                segment_bytes=segment_bytes,
            )
        except BaseException:
            file.close()
            raise

    # -- metadata ------------------------------------------------------

    @property
    def snapshot_uid(self) -> str:
        """Uid of the snapshot generation this log applies on top of."""
        return self._header["snapshot_uid"]

    @property
    def parent_uid(self) -> Optional[str]:
        """The bound snapshot's own parent uid (compaction lineage)."""
        return self._header.get("parent_uid")

    @property
    def next_id(self) -> int:
        """Id counter recorded at creation (before replaying inserts)."""
        return int(self._header.get("next_id", 0))

    @property
    def size_bytes(self) -> int:
        """Bytes of durable log across all live segments."""
        return self._size

    @property
    def segment_count(self) -> int:
        """Live segments on disk (sealed plus the appendable one)."""
        return len(self._sealed) + 1

    def segment_paths(self) -> List[str]:
        """Paths of the live segments, oldest first."""
        ordinals = [ordinal for ordinal, _ in self._sealed] + [self._ordinal]
        return [
            os.path.join(self.path, _segment_name(ordinal))
            for ordinal in sorted(ordinals)
        ]

    def stats(self) -> dict:
        """Group-commit and rotation counters (monotonic, lock-free reads)."""
        groups = self._groups
        records = self._records_committed
        return {
            "groups_committed": groups,
            "records_committed": records,
            "mean_group_records": (records / groups) if groups else 0.0,
            "last_group_records": self._last_group_records,
            "rotations": self._rotations,
            "checkpoints": self._checkpoints,
            "segments": self.segment_count,
        }

    # -- appends -------------------------------------------------------

    def submit_insert(self, point_id: int, point: np.ndarray) -> CommitTicket:
        """Enqueue an insert; the ticket resolves after its group's fsync."""
        return self._submit(_encode_insert(point_id, point))

    def submit_delete(self, point_id: int) -> CommitTicket:
        """Enqueue a delete; the ticket resolves after its group's fsync."""
        return self._submit(_encode_delete(point_id))

    def append_insert(self, point_id: int, point: np.ndarray) -> int:
        """Durably log an insert; returns the log size after the fsync."""
        return self.submit_insert(point_id, point).wait()

    def append_delete(self, point_id: int) -> int:
        """Durably log a delete; returns the log size after the fsync."""
        return self.submit_delete(point_id).wait()

    def append_checkpoint(self, uid: str) -> int:
        """Durably log that snapshot ``uid`` folds all prior records."""
        return self._submit(_encode_checkpoint(uid)).wait()

    def _submit(self, payload: bytes) -> CommitTicket:
        ticket = CommitTicket()
        with self._cond:
            if self._closed or self._file is None:
                raise WALError(f"{self.path!r}: log is closed")
            fault = self._next_record_fault()
            entry = _PendingRecord(payload, ticket, fault)
            if self._committer is not None:
                self._pending.append(entry)
                self._pending_bytes += _FRAME.size + len(payload)
                if len(self._pending) == 1:
                    self._first_ts = time.monotonic()
                self._cond.notify_all()
                return ticket
        # Synchronous mode: one write + fsync per append, inline.
        with self._io_lock:
            self._commit_group([entry])
        return ticket

    def _next_record_fault(self) -> Optional[str]:
        nth = self._records_submitted
        self._records_submitted += 1
        for point, target in _parse_faults():
            if point in _RECORD_FAULTS and target == nth:
                return point
        return None

    # -- the committer -------------------------------------------------

    def _committer_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending:
                    return  # closed and drained
                if not self._closed and not self._hurry:
                    deadline = self._first_ts + self.group_window
                    while (
                        not self._closed
                        and not self._hurry
                        and self._pending_bytes < self.group_bytes
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                batch = self._pending
                self._pending = []
                self._pending_bytes = 0
                self._flushing = True
            try:
                with self._io_lock:
                    self._commit_group(batch)
            except Exception:
                pass  # tickets already failed inside _commit_group
            finally:
                with self._cond:
                    self._flushing = False
                    self._cond.notify_all()

    def _commit_group(self, batch: List[_PendingRecord]) -> None:
        """Write + fsync one group, then resolve its tickets.

        Caller holds ``_io_lock``.  The deterministic kill points live
        here: per-record ``pre-append``/``torn``/``post-fsync`` and the
        group-level ``mid-group`` (write to the midpoint, fsync, die —
        a durable prefix nobody was ever acked for).
        """
        try:
            group_ordinal = self._groups
            mid_at = None
            if len(batch) and _armed_fault("mid-group", group_ordinal):
                mid_at = max(1, len(batch) // 2)
            post_fsync = False
            written = 0
            for entry in batch:
                if entry.fault == "pre-append":
                    os._exit(9)
                frame = (
                    _FRAME.pack(len(entry.payload), crc32(entry.payload))
                    + entry.payload
                )
                self._maybe_rotate(len(frame))
                if entry.fault == "torn":
                    # Half a record, made durable, then death: the exact
                    # state recovery's torn-tail truncation exists for.
                    self._file.write(frame[: max(1, len(frame) // 2)])
                    self._file.flush()
                    self._fsync_file()
                    os._exit(9)
                self._file.write(frame)
                self._seg_size += len(frame)
                self._seg_records += 1
                self._size += len(frame)
                written += 1
                post_fsync = post_fsync or entry.fault == "post-fsync"
                if mid_at is not None and written == mid_at:
                    self._file.flush()
                    self._fsync_file()
                    os._exit(9)
            self._file.flush()
            self._fsync_file()
            if post_fsync:
                os._exit(9)
            self._groups += 1
            self._records_committed += len(batch)
            self._last_group_records = len(batch)
            size = self._size
        except BaseException as exc:
            for entry in batch:
                entry.ticket._fail(exc)
            raise
        for entry in batch:
            entry.ticket._resolve(size)

    def _fsync_file(self) -> None:
        delay = _fsync_delay()
        if delay:
            time.sleep(delay)
        os.fsync(self._file.fileno())

    def _maybe_rotate(self, frame_len: int) -> None:
        """Seal the live segment and open the next when it would overflow.

        A segment always takes at least one record (a single frame larger
        than ``segment_bytes`` must not rotate forever).  The new
        segment's header is durable (file and directory fsync'd) before
        any record lands in it — the ``between-segment`` kill point fires
        right after that instant.
        """
        if (
            self._seg_records == 0
            or self._seg_size + frame_len <= self.segment_bytes
        ):
            return
        self._file.flush()
        self._fsync_file()
        self._file.close()
        self._sealed.append((self._ordinal, self._seg_size))
        rotation = self._rotations
        self._rotations += 1
        self._ordinal += 1
        self._open_live_segment(dict(self._header, segment=self._ordinal))
        if _armed_fault("between-segment", rotation):
            os._exit(9)

    def _open_live_segment(self, header: dict) -> None:
        """Open segment ``header['segment']`` for append, header durable."""
        seg_path = os.path.join(self.path, _segment_name(header["segment"]))
        file = open(seg_path, "wb")
        try:
            _write_segment_header(file, header)
            file.flush()
            os.fsync(file.fileno())
        except BaseException:
            file.close()
            raise
        _fsync_dir(self.path)
        self._file = file
        self._header = header
        self._seg_size = file.tell()
        self._seg_records = 0
        self._size += self._seg_size

    # -- checkpoint roll (compaction) ----------------------------------

    def roll_checkpoint(
        self,
        snapshot_uid: str,
        parent_uid: Optional[str] = None,
        next_id: int = 0,
        pending: Sequence[Record] = (),
    ) -> int:
        """Rebind the log to ``snapshot_uid`` and drop folded history.

        Seals the live segment, opens a fresh one bound to the new
        generation whose first record is ``checkpoint(snapshot_uid)``,
        re-logs ``pending`` (mutations not folded into the snapshot),
        fsyncs it, and only then deletes every older segment — their
        contents are checkpointed, and recovery replays from the newest
        checkpoint-first segment, so a crash at any instant leaves a
        replayable log (possibly with stale segments :meth:`open`
        cleans up).  Returns the live byte count afterwards.

        The caller must guarantee no concurrent submits (the server
        holds its mutation lock with zero in-flight mutations); pending
        group-commit batches are drained first.
        """
        self._drain()
        with self._io_lock:
            if self._closed or self._file is None:
                raise WALError(f"{self.path!r}: log is closed")
            ckpt_ordinal = self._checkpoints
            self._checkpoints += 1
            self._file.flush()
            self._fsync_file()
            self._file.close()
            self._sealed.append((self._ordinal, self._seg_size))
            self._ordinal += 1
            header = {
                "format": WAL_FORMAT,
                "version": WAL_VERSION,
                "snapshot_uid": str(snapshot_uid),
                "parent_uid": None if parent_uid is None else str(parent_uid),
                "next_id": int(next_id),
                "segment": self._ordinal,
            }
            self._open_live_segment(header)
            for record in (CheckpointRecord(str(snapshot_uid)), *pending):
                payload = _encode_record(record)
                frame = _FRAME.pack(len(payload), crc32(payload)) + payload
                self._file.write(frame)
                self._seg_size += len(frame)
                self._seg_records += 1
            self._file.flush()
            self._fsync_file()
            if _armed_fault("pre-segment-delete", ckpt_ordinal):
                os._exit(9)
            for ordinal, _ in self._sealed:
                os.unlink(os.path.join(self.path, _segment_name(ordinal)))
            self._sealed = []
            _fsync_dir(self.path)
            self._size = self._seg_size
            return self._size

    def _drain(self) -> None:
        """Block until every submitted record's group has hit the disk."""
        if self._committer is None:
            return
        with self._cond:
            self._hurry = True
            self._cond.notify_all()
            while self._pending or self._flushing:
                self._cond.wait(0.05)
            self._hurry = False

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Flush pending groups, stop the committer, close the segment."""
        with self._cond:
            if self._closed:
                committer = None
            else:
                self._closed = True
                committer = self._committer
            self._cond.notify_all()
        if committer is not None:
            committer.join(timeout=30.0)
            self._committer = None
        with self._io_lock:
            if self._file is not None:
                try:
                    self._file.close()
                finally:
                    self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog(path={self.path!r}, "
            f"snapshot_uid={self.snapshot_uid!r}, bytes={self._size}, "
            f"segments={self.segment_count})"
        )


def _write_segment_header(file, header: dict) -> None:
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    file.write(WAL_MAGIC)
    file.write(_FRAME.pack(len(blob), crc32(blob)))
    file.write(blob)


def _read_segment_header(file, path: str) -> dict:
    magic = file.read(len(WAL_MAGIC))
    if magic != WAL_MAGIC:
        raise WALError(f"{path!r} is not a repro write-ahead log segment")
    head = file.read(_FRAME.size)
    if len(head) < _FRAME.size:
        raise WALError(f"{path!r}: truncated WAL header")
    length, checksum = _FRAME.unpack(head)
    blob = file.read(length)
    if len(blob) < length or crc32(blob) != checksum:
        # The header is written and fsync'd before any record; a bad
        # one is corruption, not a torn append.
        raise WALError(f"{path!r}: corrupt WAL header")
    header = json.loads(blob.decode("utf-8"))
    if header.get("format") != WAL_FORMAT:
        raise WALError(f"{path!r}: unknown WAL format {header.get('format')!r}")
    if int(header.get("version", -1)) > WAL_VERSION:
        raise WALError(
            f"{path!r}: WAL version {header['version']} is newer "
            f"than supported version {WAL_VERSION}"
        )
    return header


def _peek_checkpoint(file) -> bool:
    """True when the next record in ``file`` is a valid checkpoint."""
    head = file.read(_FRAME.size)
    if len(head) < _FRAME.size:
        return False
    length, checksum = _FRAME.unpack(head)
    if length > _MAX_RECORD:
        return False
    payload = file.read(length)
    if len(payload) < length or crc32(payload) != checksum:
        return False
    return payload[:1] == bytes([_OP_CHECKPOINT])
