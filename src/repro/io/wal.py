"""Write-ahead log for live mutations (insert / delete / checkpoint).

The mutation path promises: *an acked mutation survives* ``kill -9``.
The snapshot alone cannot provide that — rewriting a multi-megabyte
``.npz`` per insert is absurd — so accepted mutations are first appended
to this log and ``fsync``'d, and only then acknowledged.  On restart the
server replays the log over the snapshot it was bound to and recovers
exactly the acked state.

Format (all integers little-endian)::

    magic     8 bytes   b"REPROWAL"
    header    [u32 len][u32 crc32][len bytes of JSON]
    records   [u32 len][u32 crc32][len bytes of payload] ...

The JSON header binds the log to one snapshot *generation*: it names the
``snapshot_uid`` the records apply on top of (and that snapshot's
``parent_uid``, so recovery can accept a log written just *before* a
compaction flip — see below), plus the id counter ``next_id`` at
creation time.  :meth:`WriteAheadLog.open` refuses a log whose header
names neither of the uids the caller will replay against — replaying
someone else's mutations over the wrong snapshot would fabricate state.

Record payloads are binary, one mutation each:

* ``insert`` — ``u8 op=1, u64 id, u32 dim,`` then ``dim`` float64s;
* ``delete`` — ``u8 op=2, u64 id``;
* ``checkpoint`` — ``u8 op=3,`` then a UTF-8 snapshot uid: everything
  up to this record is folded into that snapshot generation.

Durability discipline: every append is written, flushed, and
``os.fsync``'d before the method returns — the caller acks only after
that return.  Recovery (:meth:`WriteAheadLog.open`) replays records in
order and **truncates the torn tail** at the first record whose length
field runs past EOF or whose CRC32 does not match: a crash mid-append
loses only the unacked record being written, never an acked one.

Fault injection (tests only): the ``REPRO_WAL_FAULT`` environment
variable arms a one-shot crash at a deterministic point of the *nth*
append (0-based), mirroring the ``REPRO_SERVE_FAULT`` idiom of
:mod:`repro.serve.worker`.  Specs are comma-separated
``<point>[:<nth>]`` with points:

* ``pre-append`` — exit before writing anything (mutation fully lost,
  never acked);
* ``torn`` — write *half* the record, fsync the fragment, exit: the
  torn-tail case recovery must truncate;
* ``post-fsync`` — complete the append (durable) but exit before the
  caller can ack: recovery may surface the record, the client just
  never heard the ack.

Production deployments simply never set the variable.
"""

from __future__ import annotations

import json
import os
import struct
from typing import List, NamedTuple, Optional, Sequence, Union
from zlib import crc32

import numpy as np

__all__ = [
    "WALError",
    "WriteAheadLog",
    "InsertRecord",
    "DeleteRecord",
    "CheckpointRecord",
]

WAL_MAGIC = b"REPROWAL"
WAL_FORMAT = "repro-wal"
WAL_VERSION = 1

_FRAME = struct.Struct("<II")  # (length, crc32) framing both header and records
_OP_INSERT, _OP_DELETE, _OP_CHECKPOINT = 1, 2, 3
_INSERT_HEAD = struct.Struct("<BQI")  # op, id, dim
_DELETE_HEAD = struct.Struct("<BQ")  # op, id
# A corrupt length field must not make recovery try to materialize
# gigabytes: no legitimate record (a point payload) approaches this.
_MAX_RECORD = 1 << 26


class WALError(Exception):
    """Raised for unreadable, mismatched, or corrupt write-ahead logs."""


class InsertRecord(NamedTuple):
    """An acked insert: global ``id`` and its float64 ``point``."""

    id: int
    point: np.ndarray


class DeleteRecord(NamedTuple):
    """An acked delete of global ``id``."""

    id: int


class CheckpointRecord(NamedTuple):
    """Everything before this record is folded into snapshot ``uid``."""

    uid: str


Record = Union[InsertRecord, DeleteRecord, CheckpointRecord]


def _fsync_dir(path: str) -> None:
    """fsync the directory so a rename/creation itself is durable."""
    fd = os.open(path or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _decode(payload: bytes) -> Record:
    op = payload[0]
    if op == _OP_INSERT:
        _, rec_id, dim = _INSERT_HEAD.unpack_from(payload)
        point = np.frombuffer(
            payload, dtype="<f8", count=dim, offset=_INSERT_HEAD.size
        )
        return InsertRecord(int(rec_id), point.copy())
    if op == _OP_DELETE:
        _, rec_id = _DELETE_HEAD.unpack_from(payload)
        return DeleteRecord(int(rec_id))
    if op == _OP_CHECKPOINT:
        return CheckpointRecord(payload[1:].decode("utf-8"))
    # A valid CRC with an unknown op is not a torn tail — it is a log
    # written by something newer than this reader.  Refusing beats
    # silently dropping an acked mutation we cannot interpret.
    raise WALError(f"unknown WAL record op {op}")


class WriteAheadLog:
    """An append-only, CRC-framed, fsync-on-append mutation log.

    Construct via :meth:`create` (new log bound to a snapshot uid) or
    :meth:`open` (existing log: validates the header binding, replays
    the records into :attr:`recovered`, truncates any torn tail, and
    positions the file for further appends).
    """

    def __init__(self, path, file, header, recovered, truncated_bytes, size):
        # Internal: use WriteAheadLog.create() / WriteAheadLog.open().
        self.path = path
        self._file = file
        self._header = header
        #: Records replayed by :meth:`open` (empty for a fresh log).
        self.recovered: List[Record] = recovered
        #: Bytes of torn tail discarded by :meth:`open`.
        self.truncated_bytes = truncated_bytes
        self._size = size
        self._appends = 0

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        snapshot_uid: str,
        parent_uid: Optional[str] = None,
        next_id: int = 0,
    ) -> "WriteAheadLog":
        """Create a fresh log at ``path`` bound to ``snapshot_uid``.

        The header is written to a temp file, fsync'd, and renamed into
        place (directory fsync included), so a crash during creation
        leaves either the old log or the new one — never a torn header.
        An existing file at ``path`` is replaced.
        """
        header = {
            "format": WAL_FORMAT,
            "version": WAL_VERSION,
            "snapshot_uid": str(snapshot_uid),
            "parent_uid": None if parent_uid is None else str(parent_uid),
            "next_id": int(next_id),
        }
        blob = json.dumps(header, sort_keys=True).encode("utf-8")
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(WAL_MAGIC)
            handle.write(_FRAME.pack(len(blob), crc32(blob)))
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(os.path.dirname(path))
        return cls.open(path)

    @classmethod
    def open(
        cls, path: str, accept_uids: Optional[Sequence[str]] = None
    ) -> "WriteAheadLog":
        """Open an existing log, replaying records and truncating a torn tail.

        ``accept_uids`` — when given, the uids of the snapshot(s) the
        caller intends to replay against (typically the live snapshot's
        ``uid`` *and* its ``parent_uid``, to cover a crash between a
        compaction's snapshot flip and its log swap).  A log bound to
        none of them raises :class:`WALError` rather than replaying
        mutations onto the wrong data.
        """
        file = open(path, "r+b")
        try:
            magic = file.read(len(WAL_MAGIC))
            if magic != WAL_MAGIC:
                raise WALError(f"{path!r} is not a repro write-ahead log")
            head = file.read(_FRAME.size)
            if len(head) < _FRAME.size:
                raise WALError(f"{path!r}: truncated WAL header")
            length, checksum = _FRAME.unpack(head)
            blob = file.read(length)
            if len(blob) < length or crc32(blob) != checksum:
                # The header is written atomically at create(); a bad
                # one is corruption, not a torn append.
                raise WALError(f"{path!r}: corrupt WAL header")
            header = json.loads(blob.decode("utf-8"))
            if header.get("format") != WAL_FORMAT:
                raise WALError(
                    f"{path!r}: unknown WAL format {header.get('format')!r}"
                )
            if int(header.get("version", -1)) > WAL_VERSION:
                raise WALError(
                    f"{path!r}: WAL version {header['version']} is newer "
                    f"than supported version {WAL_VERSION}"
                )
            if accept_uids is not None:
                accepted = {u for u in accept_uids if u}
                if header.get("snapshot_uid") not in accepted:
                    raise WALError(
                        f"{path!r} is bound to snapshot uid "
                        f"{header.get('snapshot_uid')!r}, not one of "
                        f"{sorted(accepted)} — refusing to replay it"
                    )

            recovered: List[Record] = []
            offset = file.tell()
            file_size = os.fstat(file.fileno()).st_size
            while True:
                head = file.read(_FRAME.size)
                if len(head) < _FRAME.size:
                    break  # clean EOF or torn frame header
                length, checksum = _FRAME.unpack(head)
                if length > _MAX_RECORD:
                    break  # corrupt length field: treat as torn tail
                payload = file.read(length)
                if len(payload) < length or crc32(payload) != checksum:
                    break  # torn or bit-flipped tail record
                recovered.append(_decode(payload))
                offset = file.tell()

            truncated = file_size - offset
            if truncated:
                file.truncate(offset)
                file.flush()
                os.fsync(file.fileno())
            file.seek(offset)
            return cls(path, file, header, recovered, truncated, offset)
        except BaseException:
            file.close()
            raise

    # -- metadata ------------------------------------------------------

    @property
    def snapshot_uid(self) -> str:
        """Uid of the snapshot generation this log applies on top of."""
        return self._header["snapshot_uid"]

    @property
    def parent_uid(self) -> Optional[str]:
        """The bound snapshot's own parent uid (compaction lineage)."""
        return self._header.get("parent_uid")

    @property
    def next_id(self) -> int:
        """Id counter recorded at creation (before replaying inserts)."""
        return int(self._header.get("next_id", 0))

    @property
    def size_bytes(self) -> int:
        """Bytes of durable log (header plus acked records)."""
        return self._size

    # -- appends -------------------------------------------------------

    def append_insert(self, point_id: int, point: np.ndarray) -> int:
        """Durably log an insert; returns the log size after the append."""
        vector = np.ascontiguousarray(point, dtype="<f8").ravel()
        payload = (
            _INSERT_HEAD.pack(_OP_INSERT, int(point_id), vector.shape[0])
            + vector.tobytes()
        )
        return self._append(payload)

    def append_delete(self, point_id: int) -> int:
        """Durably log a delete; returns the log size after the append."""
        return self._append(_DELETE_HEAD.pack(_OP_DELETE, int(point_id)))

    def append_checkpoint(self, uid: str) -> int:
        """Durably log that snapshot ``uid`` folds all prior records."""
        return self._append(bytes([_OP_CHECKPOINT]) + uid.encode("utf-8"))

    def _append(self, payload: bytes) -> int:
        if self._file is None:
            raise WALError(f"{self.path!r}: log is closed")
        fault = self._armed_fault()
        if fault == "pre-append":
            os._exit(9)
        record = _FRAME.pack(len(payload), crc32(payload)) + payload
        if fault == "torn":
            # Half a record, made durable, then death: the exact state
            # recovery's torn-tail truncation exists for.
            self._file.write(record[: max(1, len(record) // 2)])
            self._file.flush()
            os.fsync(self._file.fileno())
            os._exit(9)
        self._file.write(record)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._size += len(record)
        if fault == "post-fsync":
            os._exit(9)
        return self._size

    def _armed_fault(self) -> Optional[str]:
        nth_append = self._appends
        self._appends += 1
        for part in filter(
            None, os.environ.get("REPRO_WAL_FAULT", "").split(",")
        ):
            fields = part.split(":")
            try:
                target = int(fields[1]) if len(fields) > 1 else 0
            except ValueError:
                continue  # malformed spec: never let a typo crash serving
            if fields[0] in ("pre-append", "torn", "post-fsync"):
                if nth_append == target:
                    return fields[0]
        return None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the underlying file (appends already durable)."""
        if self._file is not None:
            try:
                self._file.close()
            finally:
                self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog(path={self.path!r}, "
            f"snapshot_uid={self.snapshot_uid!r}, bytes={self._size})"
        )
