"""Index lifecycle I/O: versioned snapshots plus the mutation log.

:func:`save_index` / :func:`load_index` persist and restore a fitted
:class:`~repro.core.dblsh.DBLSH` or
:class:`~repro.core.sharded.ShardedDBLSH` through a single versioned
``.npz`` archive — including the frozen R*-tree traversal arrays, so a
loaded ``rstar``-backend index serves queries with zero rebuild.  The
write is atomic (temp file + rename + fsync) and every member carries a
CRC32 verified on read; see :mod:`repro.io.snapshot` for the format.

:class:`WriteAheadLog` (:mod:`repro.io.wal`) makes live mutations
durable: inserts/deletes are CRC-framed, fsync'd on append, and bound to
the snapshot generation they apply on top of, so a killed server
recovers exactly its acked mutations.
"""

from repro.io.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    load_data,
    load_index,
    load_shard,
    load_tombstones,
    read_header,
    save_index,
    shard_headers,
)
from repro.io.wal import (
    CheckpointRecord,
    DeleteRecord,
    InsertRecord,
    WALError,
    WriteAheadLog,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "load_data",
    "load_index",
    "load_shard",
    "load_tombstones",
    "read_header",
    "save_index",
    "shard_headers",
    "CheckpointRecord",
    "DeleteRecord",
    "InsertRecord",
    "WALError",
    "WriteAheadLog",
]
