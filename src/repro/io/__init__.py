"""Index lifecycle I/O: versioned snapshots plus the mutation log.

:func:`save_index` / :func:`load_index` persist and restore a fitted
:class:`~repro.core.dblsh.DBLSH` or
:class:`~repro.core.sharded.ShardedDBLSH` through a single versioned
archive — including the frozen R*-tree traversal arrays, so a loaded
``rstar``-backend index serves queries with zero rebuild.  The default
container is the v3 **arena** (one mmap-able file; loads are zero-copy
page mappings shared across processes); ``format="npz"`` writes the
legacy v1 ``.npz``.  Both writes are atomic (temp file + rename +
fsync) and carry CRC32 checksums — eagerly verified on read for npz,
on demand via :func:`verify_snapshot` for arenas; see
:mod:`repro.io.snapshot` for the formats.

:class:`WriteAheadLog` (:mod:`repro.io.wal`) makes live mutations
durable: inserts/deletes are CRC-framed into rotating segments, group-
commit fsync'd before the ack, and bound to the snapshot generation
they apply on top of, so a killed server recovers exactly its acked
mutations.
"""

from repro.io.snapshot import (
    ARENA_VERSION,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    load_data,
    load_index,
    load_shard,
    load_tombstones,
    read_header,
    save_index,
    shard_headers,
    verify_snapshot,
)
from repro.io.wal import (
    CheckpointRecord,
    CommitTicket,
    DeleteRecord,
    InsertRecord,
    WALError,
    WriteAheadLog,
    wal_present,
)

__all__ = [
    "ARENA_VERSION",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "load_data",
    "load_index",
    "load_shard",
    "load_tombstones",
    "read_header",
    "save_index",
    "shard_headers",
    "verify_snapshot",
    "CheckpointRecord",
    "CommitTicket",
    "DeleteRecord",
    "InsertRecord",
    "WALError",
    "WriteAheadLog",
    "wal_present",
]
