"""Index lifecycle I/O: versioned snapshots of fitted indexes.

:func:`save_index` / :func:`load_index` persist and restore a fitted
:class:`~repro.core.dblsh.DBLSH` or
:class:`~repro.core.sharded.ShardedDBLSH` through a single versioned
``.npz`` archive — including the frozen R*-tree traversal arrays, so a
loaded ``rstar``-backend index serves queries with zero rebuild.  See
:mod:`repro.io.snapshot` for the format.
"""

from repro.io.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    load_data,
    load_index,
    load_shard,
    read_header,
    save_index,
    shard_headers,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "load_data",
    "load_index",
    "load_shard",
    "read_header",
    "save_index",
    "shard_headers",
]
