"""Compound hashes ``G_i(o) = (h_{i1}(o), ..., h_{iK}(o))`` (Eq. 6/7).

A :class:`CompoundHasher` owns the full ``(L, K, d)`` projection tensor of
a (K, L)-index and evaluates all ``L * K`` hash functions of a point in a
single matrix product — the ``O(KLd)`` cost accounted for in Theorem 2.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import projection_tensor
from repro.utils.rng import SeedLike


class CompoundHasher:
    """Evaluates ``L`` compound hashes of ``K`` Gaussian projections each.

    Parameters
    ----------
    dim:
        Data dimensionality ``d``.
    l_spaces:
        Number of projected spaces ``L``.
    k_per_space:
        Functions per space ``K``.
    seed:
        Seed for the projection tensor.
    """

    def __init__(self, dim: int, l_spaces: int, k_per_space: int, seed: SeedLike = None) -> None:
        self.dim = int(dim)
        self.l_spaces = int(l_spaces)
        self.k_per_space = int(k_per_space)
        self.tensor = projection_tensor(dim, l_spaces, k_per_space, seed)
        # Flattened (L*K, d) view for single-matmul evaluation.
        self._flat = self.tensor.reshape(self.l_spaces * self.k_per_space, self.dim)

    @classmethod
    def from_tensor(cls, tensor: np.ndarray) -> "CompoundHasher":
        """Adopt an existing ``(L, K, d)`` projection tensor.

        Used by snapshot loading: the restored index must evaluate the
        *exact* functions the saved index drew, so no fresh tensor is
        sampled.
        """
        tensor = np.ascontiguousarray(tensor, dtype=np.float64)
        if tensor.ndim != 3:
            raise ValueError(f"projection tensor must be (L, K, d), got shape {tensor.shape}")
        hasher = cls.__new__(cls)
        hasher.l_spaces, hasher.k_per_space, hasher.dim = (int(s) for s in tensor.shape)
        hasher.tensor = tensor
        hasher._flat = tensor.reshape(hasher.l_spaces * hasher.k_per_space, hasher.dim)
        return hasher

    @property
    def num_functions(self) -> int:
        """Total number of hash functions ``L * K``."""
        return self.l_spaces * self.k_per_space

    def project_all(self, points: np.ndarray) -> np.ndarray:
        """Project (n, d) points into all spaces; returns shape (L, n, K).

        ``result[i]`` is the i-th projected space ``G_i`` applied to every
        point, ready for bulk loading into the i-th multi-dimensional index.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dim:
            raise ValueError(f"points have dimension {points.shape[1]}, expected {self.dim}")
        flat = points @ self._flat.T  # (n, L*K)
        stacked = flat.reshape(points.shape[0], self.l_spaces, self.k_per_space)
        return np.ascontiguousarray(np.transpose(stacked, (1, 0, 2)))

    def project_queries(self, queries: np.ndarray) -> np.ndarray:
        """Batched query projection; returns shape (L, m, K).

        One GEMM evaluates all ``m * L * K`` hash values — the batched
        query path uses this to amortise the per-query ``O(KLd)`` hashing
        cost of Theorem 2 across the whole batch.  ``result[:, j, :]`` is
        :meth:`project_query` of row ``j`` (up to last-ulp BLAS accumulation
        differences between the batched and single-vector products).
        """
        return self.project_all(queries)

    def project_query(self, query: np.ndarray) -> np.ndarray:
        """Compute ``G_1(q) .. G_L(q)``; returns shape (L, K)."""
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValueError(f"query has dimension {query.shape[0]}, expected {self.dim}")
        return (self._flat @ query).reshape(self.l_spaces, self.k_per_space)
