"""Collision probabilities and quality exponents for Euclidean LSH.

This module is the analytical heart of the reproduction.  It implements:

* Eq. 4 — the collision probability of the *dynamic* family
  ``h(o) = a . o`` (collision iff ``|h(o1) - h(o2)| <= w/2``):
  ``p(tau; w) = P(|N(0, tau^2)| <= w/2) = erf(w / (2 sqrt(2) tau))``.

* Eq. 2 — the collision probability of the *static* p-stable family
  ``h(o) = floor((a . o + b)/w)``, with the well-known closed form from
  Datar et al. (2004):
  ``p(tau; w) = 2 Phi(w/tau) - 1 - 2 tau / (sqrt(2 pi) w) (1 - exp(-w^2 / (2 tau^2)))``.

* the exponents ``rho = ln(1/p1) / ln(1/p2)`` for both families and the
  paper's bound ``rho* <= 1 / c^alpha`` (Lemma 3) with
  ``alpha = xi(gamma) = gamma f(gamma) / int_gamma^inf f(x) dx``
  for bucket width ``w0 = 2 gamma c^2``.

All functions are vectorised over numpy arrays and cross-checked against
direct numeric integration in the test suite.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import integrate, special, stats

from repro.utils.validation import check_positive

_SQRT2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)


def _normal_pdf(x: np.ndarray) -> np.ndarray:
    """Standard normal pdf ``f(x)`` from the paper's Table II."""
    return np.exp(-0.5 * np.square(x)) / _SQRT_2PI


def collision_probability_dynamic(tau, w) -> np.ndarray:
    """Eq. 4: collision probability of the dynamic family at distance ``tau``.

    ``p(tau; w) = int_{-w/(2 tau)}^{w/(2 tau)} f(t) dt = erf(w / (2 sqrt(2) tau))``.

    Accepts scalars or arrays (broadcast).  ``tau = 0`` yields probability 1.
    """
    tau = np.asarray(tau, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    if np.any(tau < 0):
        raise ValueError("tau must be non-negative")
    if np.any(w <= 0):
        raise ValueError("w must be positive")
    with np.errstate(divide="ignore"):
        ratio = np.where(tau > 0, w / (2.0 * _SQRT2 * np.where(tau > 0, tau, 1.0)), np.inf)
    return special.erf(ratio)


def collision_probability_static(tau, w) -> np.ndarray:
    """Eq. 2: collision probability of the static p-stable family.

    Closed form of ``2 int_0^w (1/tau) f(t/tau) (1 - t/w) dt`` for the
    2-stable (Gaussian) case, from Datar et al. (2004).
    """
    tau = np.asarray(tau, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    if np.any(tau < 0):
        raise ValueError("tau must be non-negative")
    if np.any(w <= 0):
        raise ValueError("w must be positive")
    safe_tau = np.where(tau > 0, tau, 1.0)
    ratio = np.where(tau > 0, w / safe_tau, np.inf)
    term1 = 2.0 * stats.norm.cdf(ratio) - 1.0
    with np.errstate(over="ignore", under="ignore"):
        term2 = 2.0 / (_SQRT_2PI * ratio) * (1.0 - np.exp(-0.5 * np.square(ratio)))
    return np.where(tau > 0, term1 - term2, 1.0)


def collision_probability_static_numeric(tau: float, w: float) -> float:
    """Eq. 2 evaluated by direct numeric quadrature (for cross-validation)."""
    tau = check_positive("tau", tau)
    w = check_positive("w", w)

    def integrand(t: float) -> float:
        return (1.0 / tau) * float(_normal_pdf(np.asarray(t / tau))) * (1.0 - t / w)

    value, _ = integrate.quad(integrand, 0.0, w)
    return 2.0 * value


def collision_probability_dynamic_numeric(tau: float, w: float) -> float:
    """Eq. 4 evaluated by direct numeric quadrature (for cross-validation)."""
    tau = check_positive("tau", tau)
    w = check_positive("w", w)
    half = w / (2.0 * tau)
    value, _ = integrate.quad(lambda t: float(_normal_pdf(np.asarray(t))), -half, half)
    return value


def rho_dynamic(c: float, w0: float, r: float = 1.0) -> float:
    """``rho* = ln(1/p1) / ln(1/p2)`` for the dynamic family.

    By Observation 1 the family is ``(r, cr, p(1; w0), p(c; w0))``-sensitive
    when the bucket width scales with the radius, so ``rho*`` only depends
    on ``c`` and the *base* width ``w0`` (``r`` kept for API symmetry).
    """
    c = check_positive("c", c)
    if c <= 1.0:
        raise ValueError(f"approximation ratio c must be > 1, got {c}")
    w0 = check_positive("w0", w0)
    r = check_positive("r", r)
    p1 = float(collision_probability_dynamic(1.0, w0))
    p2 = float(collision_probability_dynamic(c, w0))
    return math.log(1.0 / p1) / math.log(1.0 / p2)


def rho_static(c: float, w: float, r: float = 1.0) -> float:
    """``rho = ln(1/p1) / ln(1/p2)`` for the static p-stable family."""
    c = check_positive("c", c)
    if c <= 1.0:
        raise ValueError(f"approximation ratio c must be > 1, got {c}")
    w = check_positive("w", w)
    r = check_positive("r", r)
    p1 = float(collision_probability_static(r, w))
    p2 = float(collision_probability_static(c * r, w))
    return math.log(1.0 / p1) / math.log(1.0 / p2)


def alpha_for_gamma(gamma: float) -> float:
    """Lemma 3's exponent ``alpha = xi(gamma) = gamma f(gamma) / int_gamma^inf f``.

    With ``w0 = 2 gamma c^2`` the paper proves ``rho* <= 1 / c^alpha``.
    ``xi`` is the Gaussian hazard (inverse Mills) ratio scaled by ``gamma``;
    e.g. ``alpha_for_gamma(2.0) ~= 4.746`` as quoted in the abstract.
    """
    gamma = check_positive("gamma", gamma)
    tail = stats.norm.sf(gamma)  # int_gamma^inf f(x) dx
    return float(gamma * _normal_pdf(np.asarray(gamma)) / tail)


def gamma_for_w0(w0: float, c: float) -> float:
    """Invert ``w0 = 2 gamma c^2`` to recover ``gamma``."""
    w0 = check_positive("w0", w0)
    c = check_positive("c", c)
    return w0 / (2.0 * c * c)


def rho_star_bound(c: float, w0: float) -> float:
    """The paper's closed-form bound ``1 / c^alpha`` with ``alpha = xi(w0 / 2c^2)``."""
    if c <= 1.0:
        raise ValueError(f"approximation ratio c must be > 1, got {c}")
    alpha = alpha_for_gamma(gamma_for_w0(w0, c))
    return c ** (-alpha)


def rho_ratio_bound(c: float, w0: float) -> float:
    """The intermediate bound ``(1-p1)/(1-p2)`` from Eq. 9 (Lemma 1 of [8]).

    ``rho* <= (1 - p1) / (1 - p2)`` where ``p1 = p(1; w0)``, ``p2 = p(c; w0)``;
    with ``w0 = 2 gamma c^2`` this equals the ratio of Gaussian tails at
    ``gamma c^2`` and ``gamma c``.
    """
    if c <= 1.0:
        raise ValueError(f"approximation ratio c must be > 1, got {c}")
    w0 = check_positive("w0", w0)
    p1 = float(collision_probability_dynamic(1.0, w0))
    p2 = float(collision_probability_dynamic(c, w0))
    return (1.0 - p1) / (1.0 - p2)


def optimal_rho_curves(
    c_values: np.ndarray, w_factor: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate the three series of the paper's Fig. 4.

    For each approximation ratio ``c`` with bucket width ``w = w_factor * c^2``:

    * ``rho*`` of DB-LSH's dynamic family (Eq. 4 based),
    * ``rho`` of the static p-stable family at the same width (Eq. 2 based),
    * the classical bound ``1/c``.

    Returns ``(rho_star, rho, one_over_c)`` arrays aligned with ``c_values``.
    """
    c_values = np.asarray(c_values, dtype=np.float64)
    if np.any(c_values <= 1.0):
        raise ValueError("all approximation ratios must be > 1")
    check_positive("w_factor", w_factor)
    rho_star = np.array([rho_dynamic(c, w_factor * c * c) for c in c_values])
    rho = np.array([rho_static(c, w_factor * c * c) for c in c_values])
    return rho_star, rho, 1.0 / c_values


def xi(v: float) -> float:
    """The monotone function ``xi(v) = v f(v) / int_v^inf f(x) dx`` from Lemma 3."""
    v = check_positive("v", v)
    return float(v * _normal_pdf(np.asarray(v)) / stats.norm.sf(v))
