"""The two Euclidean LSH function families used throughout the paper.

Both families draw projection vectors ``a`` from the standard normal
(2-stable) distribution, so for points at Euclidean distance ``tau`` the
projected difference ``a . (o1 - o2)`` is ``N(0, tau^2)`` — the property
every probability formula in :mod:`repro.hashing.probability` rests on.

:class:`GaussianProjectionFamily` is the *dynamic* family of Eq. 3:
``h(o) = a . o``, no quantisation; bucketing happens at query time.
DB-LSH, QALSH, PM-LSH, SRS, VHP and R2LSH all build on it.

:class:`PStableHashFamily` is the *static* family of Eq. 1:
``h(o) = floor((a . o + b) / w)``; buckets are fixed at indexing time.
E2LSH, FB-LSH, LSB-Forest, C2LSH, LCCS-LSH and Multi-Probe build on it.
"""

from __future__ import annotations


import numpy as np

from repro.utils.rng import SeedLike, salted_rng
from repro.utils.validation import check_positive

# Component tags keeping each family's stream disjoint from user streams
# (see repro.utils.rng.salted_rng).
_GAUSSIAN_TAG = 0x6A01
_PSTABLE_TAG = 0x6A02
_TENSOR_TAG = 0x6A03


class GaussianProjectionFamily:
    """Dynamic LSH family ``h(o) = a . o`` (Eq. 3).

    Parameters
    ----------
    dim:
        Dimensionality ``d`` of the data space.
    size:
        Number of independent functions drawn from the family.
    seed:
        Seed for the projection vectors.

    The family is ``(r, cr, p(1; w0), p(c; w0))``-locality-sensitive for
    *any* radius ``r`` with width ``w = r * w0`` (Observation 1), which is
    exactly what lets DB-LSH keep a single suit of indexes.
    """

    def __init__(self, dim: int, size: int, seed: SeedLike = None) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.dim = int(dim)
        self.size = int(size)
        rng = salted_rng(seed, _GAUSSIAN_TAG)
        # Rows are the projection vectors a_1 .. a_size.
        self.vectors = rng.standard_normal((self.size, self.dim))

    def project(self, points: np.ndarray) -> np.ndarray:
        """Project ``points`` of shape (n, d) to shape (n, size)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dim:
            raise ValueError(f"points have dimension {points.shape[1]}, expected {self.dim}")
        return points @ self.vectors.T

    def project_one(self, point: np.ndarray) -> np.ndarray:
        """Project a single point of shape (d,) to shape (size,)."""
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        if point.shape[0] != self.dim:
            raise ValueError(f"point has dimension {point.shape[0]}, expected {self.dim}")
        return self.vectors @ point

    def collides(self, h1: np.ndarray, h2: np.ndarray, w: float) -> np.ndarray:
        """Dynamic collision predicate ``|h1 - h2| <= w / 2`` (elementwise)."""
        w = check_positive("w", w)
        return np.abs(np.asarray(h1) - np.asarray(h2)) <= w / 2.0


class PStableHashFamily:
    """Static p-stable LSH family ``h(o) = floor((a . o + b) / w)`` (Eq. 1).

    Parameters
    ----------
    dim:
        Dimensionality ``d`` of the data space.
    size:
        Number of independent functions.
    w:
        Fixed bucket width (the paper's ``w``; an "integer" in the original
        E2LSH description but any positive real works).
    seed:
        Seed for projection vectors and offsets ``b ~ U[0, w)``.
    """

    def __init__(self, dim: int, size: int, w: float, seed: SeedLike = None) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.dim = int(dim)
        self.size = int(size)
        self.w = check_positive("w", w)
        rng = salted_rng(seed, _PSTABLE_TAG)
        self.vectors = rng.standard_normal((self.size, self.dim))
        self.offsets = rng.uniform(0.0, self.w, size=self.size)

    def raw_project(self, points: np.ndarray) -> np.ndarray:
        """Un-quantised projections ``a . o + b`` of shape (n, size)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dim:
            raise ValueError(f"points have dimension {points.shape[1]}, expected {self.dim}")
        return points @ self.vectors.T + self.offsets

    def hash(self, points: np.ndarray) -> np.ndarray:
        """Bucket ids ``floor((a . o + b) / w)`` of shape (n, size), int64."""
        return np.floor(self.raw_project(points) / self.w).astype(np.int64)

    def hash_one(self, point: np.ndarray) -> np.ndarray:
        """Bucket ids for a single point, shape (size,)."""
        point = np.asarray(point, dtype=np.float64).reshape(1, -1)
        return self.hash(point)[0]

    def rehash(self, bucket_ids: np.ndarray, factor: int) -> np.ndarray:
        """Virtual rehashing (C2LSH): merge ``factor`` adjacent buckets.

        Enlarging the radius from ``r`` to ``c * r`` in C2LSH is equivalent
        to re-bucketing with width ``factor * w``; on integer bucket ids
        this is floor-division by ``factor`` — no re-projection needed.
        """
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return np.floor_divide(np.asarray(bucket_ids, dtype=np.int64), factor)


def projection_tensor(
    dim: int, l_spaces: int, k_per_space: int, seed: SeedLike = None
) -> np.ndarray:
    """Sample the full ``(L, K, d)`` Gaussian projection tensor of Eq. 7.

    Convenience used by (K, L)-index style methods; row ``[i, j]`` is the
    vector of hash function ``h_{ij}``.
    """
    if l_spaces < 1 or k_per_space < 1:
        raise ValueError("l_spaces and k_per_space must be >= 1")
    rng = salted_rng(seed, _TENSOR_TAG)
    return rng.standard_normal((l_spaces, k_per_space, dim))
