"""LSH substrate: hash families, compound hashes, collision probabilities.

The paper uses two families of locality-sensitive hash functions for
Euclidean space:

* the *static* p-stable family of E2LSH (Eq. 1),
  ``h(o) = floor((a . o + b) / w)``, whose collision probability is Eq. 2;
* the *dynamic* projection family of QALSH / DB-LSH (Eq. 3),
  ``h(o) = a . o``, where collision means ``|h(o1) - h(o2)| <= w / 2``
  and the collision probability is Eq. 4.

`repro.hashing.probability` implements both probabilities, the exponents
``rho`` and ``rho*``, and Lemma 3's bound ``alpha = xi(gamma)``.
"""

from repro.hashing.compound import CompoundHasher
from repro.hashing.families import GaussianProjectionFamily, PStableHashFamily
from repro.hashing.probability import (
    alpha_for_gamma,
    collision_probability_dynamic,
    collision_probability_static,
    optimal_rho_curves,
    rho_dynamic,
    rho_static,
    rho_star_bound,
)

__all__ = [
    "CompoundHasher",
    "GaussianProjectionFamily",
    "PStableHashFamily",
    "alpha_for_gamma",
    "collision_probability_dynamic",
    "collision_probability_static",
    "optimal_rho_curves",
    "rho_dynamic",
    "rho_static",
    "rho_star_bound",
]
