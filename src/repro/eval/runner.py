"""Experiment runner: build an index, run the query set, aggregate metrics.

Every method in this library (DB-LSH and all baselines) satisfies the same
informal protocol:

* ``fit(data) -> self`` building the index (records ``build_seconds``);
* ``query(q, k) -> QueryResult``;
* ``name`` attribute and ``num_hash_functions`` property (the paper's
  index-size proxy, §VI-B2).

:func:`evaluate_method` runs a full query set and reports the same
aggregates as Table IV: mean query time, overall ratio, recall, indexing
time — plus the hardware-independent work counters this reproduction adds
(mean candidates verified, distance computations, index node work).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.data.groundtruth import exact_knn
from repro.eval.metrics import overall_ratio, recall


@dataclass
class MethodResult:
    """Aggregated evaluation of one method on one workload."""

    method: str
    dataset: str
    k: int
    n: int
    dim: int
    build_seconds: float
    num_hash_functions: int
    query_time_ms: float
    ratio: float
    recall: float
    candidates_per_query: float
    distance_computations_per_query: float
    rounds_per_query: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "k": self.k,
            "query_ms": round(self.query_time_ms, 3),
            "ratio": round(self.ratio, 4),
            "recall": round(self.recall, 4),
            "build_s": round(self.build_seconds, 3),
            "hash_fns": self.num_hash_functions,
            "cands": round(self.candidates_per_query, 1),
            "dists": round(self.distance_computations_per_query, 1),
        }


def evaluate_method(
    method,
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    dataset_name: str = "dataset",
    gt_ids: Optional[np.ndarray] = None,
    gt_dists: Optional[np.ndarray] = None,
    fit: bool = True,
    batch: bool = True,
) -> MethodResult:
    """Build ``method`` on ``data`` (unless pre-fitted) and run all queries.

    When the method exposes ``query_batch`` (every method in this library
    does; DB-LSH's is a true batched path) and ``batch`` is left on, the
    whole query set is answered in one call and the reported per-query
    time is the batch wall time divided by the query count.  ``batch=False``
    forces the per-query loop (timing each ``query`` call separately).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    data = np.asarray(data, dtype=np.float64)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if gt_ids is None or gt_dists is None:
        gt_ids, gt_dists = exact_knn(queries, data, k)

    if fit:
        method.fit(data)

    query_batch = getattr(method, "query_batch", None) if batch else None
    if callable(query_batch):
        started = time.perf_counter()
        results = query_batch(queries, k=k)
        total_time = time.perf_counter() - started
    else:
        total_time = 0.0
        results = []
        for query in queries:
            started = time.perf_counter()
            results.append(method.query(query, k=k))
            total_time += time.perf_counter() - started

    ratios: List[float] = []
    recalls: List[float] = []
    candidates = 0.0
    dist_comps = 0.0
    rounds = 0.0
    for qi, result in enumerate(results):
        ratios.append(overall_ratio(result.distances, gt_dists[qi]))
        recalls.append(recall(result.ids, gt_ids[qi]))
        candidates += result.stats.candidates_verified
        dist_comps += result.stats.distance_computations
        rounds += result.stats.rounds

    m = queries.shape[0]
    finite_ratios = [r for r in ratios if np.isfinite(r)]
    return MethodResult(
        method=getattr(method, "name", type(method).__name__),
        dataset=dataset_name,
        k=k,
        n=int(data.shape[0]),
        dim=int(data.shape[1]),
        build_seconds=float(getattr(method, "build_seconds", 0.0)),
        num_hash_functions=int(getattr(method, "num_hash_functions", 0)),
        query_time_ms=total_time / m * 1e3,
        ratio=float(np.mean(finite_ratios)) if finite_ratios else float("inf"),
        recall=float(np.mean(recalls)),
        candidates_per_query=candidates / m,
        distance_computations_per_query=dist_comps / m,
        rounds_per_query=rounds / m,
    )


def evaluate_snapshot(
    path: str,
    queries: np.ndarray,
    k: int,
    dataset_name: str = "snapshot",
    gt_ids: Optional[np.ndarray] = None,
    gt_dists: Optional[np.ndarray] = None,
    batch: bool = True,
) -> MethodResult:
    """Load a persisted index snapshot and evaluate it without rebuilding.

    The serving-side counterpart of :func:`evaluate_method`: the index
    (single or sharded, see :mod:`repro.io.snapshot`) is restored from
    ``path`` and the query set runs against it as-is (``fit=False``), so
    the reported query times measure the *loaded* index — exactly what a
    process that received the snapshot over the wire would serve.  Ground
    truth is computed against the snapshot's own stored data unless
    supplied.
    """
    from repro.io.snapshot import load_index

    index = load_index(path)
    data = index.data
    assert data is not None  # load_index only returns fitted indexes
    return evaluate_method(
        index,
        data,
        queries,
        k,
        dataset_name=dataset_name,
        gt_ids=gt_ids,
        gt_dists=gt_dists,
        fit=False,
        batch=batch,
    )


class _ConcurrentClients:
    """Drive a :class:`~repro.serve.SnapshotServer` as N client threads.

    The server multiplexes concurrent callers onto its worker pool with
    FIFO dispatch, so splitting the query block across ``clients``
    threads measures the *concurrent-serving* path while returning the
    batch in original order — each chunk is answered by the same server
    against the same snapshot, so the reassembled answers are
    bit-identical to one big ``query_batch`` call (pinned by
    ``bench_serve.py``'s ``concurrent_clients`` parity flag).
    """

    def __init__(self, server, clients: int) -> None:
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        self._server = server
        self._clients = clients
        self.name = f"{server.name}x{clients}c"
        self.build_seconds = server.build_seconds
        self.num_hash_functions = server.num_hash_functions

    def query_batch(self, queries: np.ndarray, k: int = 1) -> List:
        import threading

        chunks = np.array_split(np.asarray(queries), self._clients)
        answers: List = [None] * len(chunks)
        errors: List[BaseException] = []

        def run(index: int) -> None:
            try:
                answers[index] = self._server.query_batch(chunks[index], k=k)
            except BaseException as exc:  # re-raised on the caller thread
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(i,), daemon=True)
            for i in range(len(chunks))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return [result for chunk in answers for result in chunk]


def evaluate_server(
    path: str,
    queries: np.ndarray,
    k: int,
    dataset_name: str = "server",
    gt_ids: Optional[np.ndarray] = None,
    gt_dists: Optional[np.ndarray] = None,
    batch: bool = True,
    clients: int = 1,
    **server_kwargs,
) -> MethodResult:
    """Serve the snapshot at ``path`` from worker processes and evaluate it.

    The multi-process counterpart of :func:`evaluate_snapshot`: a
    :class:`repro.serve.SnapshotServer` is started over the snapshot (one
    worker process per shard, zero rebuild), the query set is answered
    over IPC, and the server is shut down afterwards.  The reported
    ``build_seconds`` is the worker start-up time — the cost a serving
    deployment actually pays — and the query times include the
    scatter-gather transport, which is the point of measuring it.
    Ground truth is computed against the snapshot's stored data unless
    supplied.

    ``clients`` > 1 splits the query set across that many concurrent
    client threads sharing the one server (the accept-loop shape of
    ``repro serve``); answers are reassembled in order and remain
    bit-identical to the single-client run.  ``server_kwargs`` are
    forwarded to the server constructor (``query_timeout=...``,
    ``shm_min_bytes=...``, ``max_retries=...``, ...).
    """
    from repro.io.snapshot import load_data
    from repro.serve import SnapshotServer

    if clients > 1 and not batch:
        # The per-query loop would bypass _ConcurrentClients entirely and
        # measure serial single queries while claiming N clients.
        raise ValueError("clients > 1 requires batch=True (the concurrent "
                         "clients split one query batch)")
    with SnapshotServer(path, **server_kwargs) as server:
        if gt_ids is None or gt_dists is None:
            data = load_data(path)
        else:
            # With ground truth supplied, the dataset payload would only
            # feed the n/dim report columns — both known from the header
            # — so skip reading every shard's stored coordinates.
            data = np.broadcast_to(
                np.float64(0.0), (server.num_points, server.dim)
            )
        method = server if clients <= 1 else _ConcurrentClients(server, clients)
        return evaluate_method(
            method,
            data,
            queries,
            k,
            dataset_name=dataset_name,
            gt_ids=gt_ids,
            gt_dists=gt_dists,
            fit=False,
            batch=batch,
        )


@dataclass
class MutablePhaseResult:
    """One phase of a mixed read/write workload trajectory.

    A phase applies a block of mutations (inserts plus a fraction of
    deletes), then answers the full query set against whatever the
    server now holds.  Ground truth is recomputed against the *live*
    point set each phase, so ``recall`` measures the served quality of
    the mutated index — the delta sweep, the tombstones and any
    background compaction included — not the stale base snapshot.
    """

    phase: int
    inserts: int
    deletes: int
    live_points: int
    mutation_seconds: float
    mutation_qps: float
    query_time_ms: float
    recall: float
    ratio: float
    wal_bytes: int
    wal_segments: int
    compactions: int
    compaction_trigger: Optional[str]

    def row(self) -> Dict[str, object]:
        """Flat dict for table rendering / JSON reports."""
        return {
            "phase": self.phase,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "live": self.live_points,
            "mut_qps": round(self.mutation_qps, 1),
            "query_ms": round(self.query_time_ms, 3),
            "recall": round(self.recall, 4),
            "ratio": round(self.ratio, 4),
            "wal_bytes": self.wal_bytes,
            "wal_segments": self.wal_segments,
            "compactions": self.compactions,
            "trigger": self.compaction_trigger,
        }


def evaluate_mutable_workload(
    server,
    base_data: np.ndarray,
    insert_points: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    phases: int = 4,
    delete_fraction: float = 0.25,
    mutation_clients: int = 1,
    seed: int = 0,
) -> List[MutablePhaseResult]:
    """Drive a mutable server through interleaved write and read phases.

    ``insert_points`` is split into ``phases`` blocks.  Each phase
    inserts one block (across ``mutation_clients`` concurrent threads,
    so group commit actually gets groups to merge), deletes
    ``delete_fraction`` of the ids that phase just inserted, then runs
    the whole query set and scores recall/ratio against exact k-NN over
    the live point set at that instant.  The returned trajectory shows
    how serving quality and cost evolve as the delta grows and
    compactions fold it away — the mixed-workload curve a static
    ``evaluate_method`` run cannot produce.

    ``server`` must expose ``insert``/``delete``/``query_batch``/
    ``status`` (a started
    :class:`~repro.serve.mutable.MutableSnapshotServer`); ``base_data``
    must be the point set its snapshot was built from, ids ``0..n-1``.
    """
    import threading

    if phases < 1:
        raise ValueError(f"phases must be >= 1, got {phases}")
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError(
            f"delete_fraction must be in [0, 1], got {delete_fraction}"
        )
    if mutation_clients < 1:
        raise ValueError(
            f"mutation_clients must be >= 1, got {mutation_clients}"
        )
    base_data = np.asarray(base_data, dtype=np.float64)
    insert_points = np.atleast_2d(np.asarray(insert_points, dtype=np.float64))
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    rng = np.random.default_rng(seed)

    # id -> point for every live row, maintained in lockstep with the
    # server so each phase can recompute exact ground truth.
    live: Dict[int, np.ndarray] = {
        i: base_data[i] for i in range(base_data.shape[0])
    }

    trajectory: List[MutablePhaseResult] = []
    for phase_index, block in enumerate(np.array_split(insert_points, phases)):
        inserted: List[tuple] = []
        errors: List[BaseException] = []
        lock = threading.Lock()

        def insert_chunk(chunk: np.ndarray) -> None:
            try:
                for point in chunk:
                    new_id = server.insert(point)
                    with lock:
                        inserted.append((new_id, point))
            except BaseException as exc:  # re-raised on the caller thread
                errors.append(exc)

        mutation_started = time.perf_counter()
        if len(block):
            threads = [
                threading.Thread(target=insert_chunk, args=(chunk,),
                                 daemon=True)
                for chunk in np.array_split(block, mutation_clients)
                if len(chunk)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        doomed = (
            rng.choice(
                len(inserted),
                size=int(len(inserted) * delete_fraction),
                replace=False,
            )
            if inserted
            else np.empty(0, dtype=int)
        )
        doomed_ids = {inserted[i][0] for i in doomed}
        for doomed_id in sorted(doomed_ids):
            server.delete(doomed_id)
        mutation_seconds = time.perf_counter() - mutation_started

        for new_id, point in inserted:
            live[new_id] = point
        for doomed_id in doomed_ids:
            del live[doomed_id]

        id_array = np.fromiter(live.keys(), dtype=np.int64, count=len(live))
        matrix = np.stack([live[i] for i in id_array])
        gt_rows, gt_dists = exact_knn(queries, matrix, k)
        gt_ids = id_array[gt_rows]

        query_started = time.perf_counter()
        results = server.query_batch(queries, k=k)
        query_seconds = time.perf_counter() - query_started

        recalls = [
            recall(result.ids, gt_ids[qi]) for qi, result in enumerate(results)
        ]
        ratios = [
            overall_ratio(result.distances, gt_dists[qi])
            for qi, result in enumerate(results)
        ]
        finite = [r for r in ratios if np.isfinite(r)]
        info = server.status()
        mutations = len(inserted) + len(doomed_ids)
        trajectory.append(
            MutablePhaseResult(
                phase=phase_index,
                inserts=len(inserted),
                deletes=len(doomed_ids),
                live_points=len(live),
                mutation_seconds=mutation_seconds,
                mutation_qps=(
                    mutations / mutation_seconds if mutation_seconds > 0
                    else 0.0
                ),
                query_time_ms=query_seconds / queries.shape[0] * 1e3,
                recall=float(np.mean(recalls)),
                ratio=float(np.mean(finite)) if finite else float("inf"),
                wal_bytes=int(info.get("wal_bytes", 0)),
                wal_segments=int(info.get("wal_segments", 0)),
                compactions=int(info.get("compactions", 0)),
                compaction_trigger=info.get("last_compaction_trigger"),
            )
        )
    return trajectory


def run_comparison(
    methods: Iterable,
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    dataset_name: str = "dataset",
) -> List[MethodResult]:
    """Evaluate several methods on one workload with shared ground truth."""
    data = np.asarray(data, dtype=np.float64)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    gt_ids, gt_dists = exact_knn(queries, data, k)
    return [
        evaluate_method(
            method,
            data,
            queries,
            k,
            dataset_name=dataset_name,
            gt_ids=gt_ids,
            gt_dists=gt_dists,
        )
        for method in methods
    ]
