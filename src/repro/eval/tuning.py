"""Parameter tuning: pick DB-LSH's budget knob for a target recall.

Remark 2 leaves ``t`` as the practical dial between work and accuracy.
:func:`tune_budget` automates the choice a practitioner would make by
hand: hold out a small validation query set, sweep ``t`` over a
geometric grid, and return the smallest budget reaching the requested
recall.  The sweep reuses one fitted index per ``t`` (the projections
could in principle be shared; rebuilding keeps the code obvious and the
grids are small).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.dblsh import DBLSH
from repro.data.groundtruth import exact_knn
from repro.eval.metrics import recall as recall_metric
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_dataset


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a budget sweep."""

    best_t: int
    achieved_recall: float
    target_recall: float
    candidates_per_query: float
    trace: tuple  # ((t, recall, candidates), ...) over the sweep

    @property
    def reached_target(self) -> bool:
        return self.achieved_recall >= self.target_recall


def tune_budget(
    data: np.ndarray,
    target_recall: float = 0.9,
    k: int = 10,
    t_grid: Optional[Sequence[int]] = None,
    n_validation: int = 30,
    c: float = 1.5,
    l_spaces: int = 5,
    k_per_space: int = 10,
    seed: SeedLike = 0,
) -> TuningResult:
    """Smallest ``t`` in ``t_grid`` whose validation recall meets the target.

    Validation queries are dataset points perturbed by a fraction of the
    local NN distance, evaluated against exact ground truth on the full
    data.  If no grid point reaches the target, the best-performing ``t``
    is returned with ``reached_target == False``.
    """
    data = check_dataset(data)
    if not 0.0 < target_recall <= 1.0:
        raise ValueError(f"target_recall must be in (0, 1], got {target_recall}")
    if t_grid is None:
        t_grid = [4, 8, 16, 32, 64, 128]
    t_grid = sorted(set(int(t) for t in t_grid))
    if any(t < 1 for t in t_grid):
        raise ValueError("all t values must be >= 1")

    rng = default_rng(seed)
    n = data.shape[0]
    picks = rng.choice(n, size=min(n_validation, n), replace=False)
    queries = data[picks] + 0.05 * rng.standard_normal((len(picks), data.shape[1]))
    gt_ids, _ = exact_knn(queries, data, k)

    trace: List[tuple] = []
    best: Optional[tuple] = None
    for t in t_grid:
        index = DBLSH(
            c=c, l_spaces=l_spaces, k_per_space=k_per_space, t=t, seed=seed,
            auto_initial_radius=True,
        ).fit(data)
        recalls, candidates = [], 0
        for qi, q in enumerate(queries):
            result = index.query(q, k=k)
            recalls.append(recall_metric(result.ids, gt_ids[qi]))
            candidates += result.stats.candidates_verified
        mean_recall = float(np.mean(recalls))
        mean_candidates = candidates / len(queries)
        trace.append((t, round(mean_recall, 4), round(mean_candidates, 1)))
        if best is None or mean_recall > best[1]:
            best = (t, mean_recall, mean_candidates)
        if mean_recall >= target_recall:
            return TuningResult(
                best_t=t,
                achieved_recall=mean_recall,
                target_recall=target_recall,
                candidates_per_query=mean_candidates,
                trace=tuple(trace),
            )
    assert best is not None
    return TuningResult(
        best_t=best[0],
        achieved_recall=best[1],
        target_recall=target_recall,
        candidates_per_query=best[2],
        trace=tuple(trace),
    )
