"""The paper's two accuracy metrics (Eq. 11 and Eq. 12).

For a (c, k)-ANN query returning ``R = {o_1 .. o_k}`` (ascending by
distance) against exact k-NN ``R* = {o*_1 .. o*_k}``:

* overall ratio ``= (1/k) * sum_i ||q, o_i|| / ||q, o*_i||`` — how much
  farther the i-th returned point is than the true i-th neighbor (1.0 is
  perfect, values close to 1 are good);
* recall ``= |R intersect R*| / k``.

Methods occasionally return fewer than ``k`` points (tiny datasets,
exhausted budgets); recall's denominator stays ``k`` (missing positions
are misses), while the ratio is computed over the returned *prefix* —
position ``i`` of the result is always compared against position ``i`` of
the exact answer, never against a padded placeholder (padding can push
the ratio below 1, which is meaningless).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def overall_ratio(
    returned_distances: Sequence[float], true_distances: Sequence[float]
) -> float:
    """Eq. 11 with guards for short results and zero true distances."""
    true = np.asarray(true_distances, dtype=np.float64)
    got = np.asarray(returned_distances, dtype=np.float64)
    k = true.shape[0]
    if k == 0:
        raise ValueError("true_distances must be non-empty")
    if got.shape[0] > k:
        got = got[:k]
    if got.shape[0] == 0:
        return float("inf")
    ratios = []
    for returned, exact in zip(got, true):
        if exact <= 0.0:
            # Query coincides with its true neighbor: perfect iff matched.
            ratios.append(1.0 if returned <= 0.0 else np.nan)
        else:
            ratios.append(returned / exact)
    ratios_arr = np.asarray(ratios)
    valid = ~np.isnan(ratios_arr)
    if not valid.any():
        return float("inf")
    return float(ratios_arr[valid].mean())


def recall(returned_ids: Sequence[int], true_ids: Sequence[int]) -> float:
    """Eq. 12: fraction of the exact k-NN set that was returned."""
    true_set = set(int(i) for i in true_ids)
    if not true_set:
        raise ValueError("true_ids must be non-empty")
    got_set = set(int(i) for i in returned_ids)
    return len(got_set & true_set) / len(true_set)
