"""ASCII table rendering for benchmark output.

The benchmarks print tables shaped like the paper's (Table IV rows per
method per dataset, figure series as columns over a swept parameter);
:func:`format_table` is the single formatter they share.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as a fixed-width ASCII table.

    Column order follows ``columns`` when given, else the key order of the
    first row.  Values are stringified with ``str``; callers pre-round.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(str(row.get(col, ""))))
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    separator = "-" * len(header)
    body = [
        "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        for row in rows
    ]
    lines = []
    if title:
        lines.extend([title, "=" * len(title)])
    lines.extend([header, separator])
    lines.extend(body)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render figure-style data: one row per x value, one column per series."""
    rows: List[Dict[str, object]] = []
    for i, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()], title=title)
