"""Evaluation: the paper's metrics, the experiment runner, table reports."""

from repro.eval.metrics import overall_ratio, recall
from repro.eval.report import format_table
from repro.eval.runner import (
    MethodResult,
    MutablePhaseResult,
    evaluate_method,
    evaluate_mutable_workload,
    evaluate_server,
    evaluate_snapshot,
    run_comparison,
)

__all__ = [
    "overall_ratio",
    "recall",
    "format_table",
    "MethodResult",
    "MutablePhaseResult",
    "evaluate_method",
    "evaluate_mutable_workload",
    "evaluate_server",
    "evaluate_snapshot",
    "run_comparison",
]
