"""Dataset hardness diagnostics: relative contrast and intrinsic dimension.

§VI-B3 of the paper explains accuracy differences across datasets by
"intrinsically complex distribution (that can be quantified by relative
contrast and local intrinsic dimensionality [12], [22], [38])".  This
module implements both quantifiers so the benchmark suite can *verify*
that explanation on the stand-ins:

* **relative contrast** (He et al. [12]): ``Cr = E[d_mean] / E[d_nn]`` —
  the mean distance to a random point over the distance to the nearest
  neighbor.  Close to 1 means queries cannot distinguish their NN from
  noise (hard); large means easy.
* **local intrinsic dimensionality** (LID, Amsaleg et al. / [22]): the
  maximum-likelihood estimator from the k nearest distances,
  ``LID = -(1/k * sum_i ln(d_i / d_k))^{-1}``, averaged over sample
  points.  Higher LID means locally higher-dimensional, i.e. harder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.groundtruth import exact_knn
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_dataset


@dataclass(frozen=True)
class HardnessReport:
    """Summary hardness diagnostics of a dataset sample."""

    relative_contrast: float
    lid: float
    mean_distance: float
    mean_nn_distance: float
    sample_size: int

    def row(self) -> dict:
        return {
            "relative_contrast": round(self.relative_contrast, 3),
            "lid": round(self.lid, 2),
            "mean_dist": round(self.mean_distance, 3),
            "mean_nn_dist": round(self.mean_nn_distance, 3),
        }


def relative_contrast(
    data: np.ndarray, sample: int = 100, seed: SeedLike = 0
) -> float:
    """He et al.'s relative contrast ``Cr`` on a sampled query set.

    ``Cr -> 1`` is the hardest regime (the paper's NUS); well-clustered
    descriptor sets score far above 1.
    """
    data = check_dataset(data)
    n = data.shape[0]
    if n < 3:
        raise ValueError("relative contrast needs at least 3 points")
    rng = default_rng(seed)
    idx = rng.choice(n, size=min(sample, n), replace=False)
    queries = data[idx]
    _, dists = exact_knn(queries, data, k=2)
    # Column 0 is the point itself (distance 0); column 1 the true NN.
    nn = dists[:, 1]
    mean_all = np.array(
        [np.linalg.norm(data - q, axis=1).mean() for q in queries]
    )
    valid = nn > 0
    if not valid.any():
        raise ValueError("all sampled points are duplicates")
    return float(np.mean(mean_all[valid] / nn[valid]))


def local_intrinsic_dimensionality(
    data: np.ndarray, k: int = 20, sample: int = 100, seed: SeedLike = 0
) -> float:
    """Mean MLE-of-LID over a sample of points.

    Uses the Hill/MLE estimator on each sampled point's k-NN distances;
    degenerate neighborhoods (zero distances) are skipped.
    """
    data = check_dataset(data)
    n = data.shape[0]
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n <= k:
        raise ValueError(f"need more than k={k} points, got {n}")
    rng = default_rng(seed)
    idx = rng.choice(n, size=min(sample, n), replace=False)
    _, dists = exact_knn(data[idx], data, k=k + 1)
    # Drop the self column, keep the k genuine neighbors.
    neighbor_dists = dists[:, 1:]
    estimates = []
    for row in neighbor_dists:
        d_k = row[-1]
        if d_k <= 0 or np.any(row <= 0):
            continue
        log_ratios = np.log(row / d_k)
        denom = log_ratios.mean()
        if denom >= 0:
            continue
        estimates.append(-1.0 / denom)
    if not estimates:
        raise ValueError("no valid neighborhoods for LID estimation")
    return float(np.mean(estimates))


def hardness_report(
    data: np.ndarray, k: int = 20, sample: int = 100, seed: SeedLike = 0
) -> HardnessReport:
    """Both diagnostics plus the raw distance scales, in one pass-friendly call."""
    data = check_dataset(data)
    rng = default_rng(seed)
    n = data.shape[0]
    idx = rng.choice(n, size=min(sample, n), replace=False)
    queries = data[idx]
    _, dists = exact_knn(queries, data, k=2)
    nn = dists[:, 1]
    mean_all = np.array([np.linalg.norm(data - q, axis=1).mean() for q in queries])
    valid = nn > 0
    contrast = float(np.mean(mean_all[valid] / nn[valid])) if valid.any() else float("inf")
    return HardnessReport(
        relative_contrast=contrast,
        lid=local_intrinsic_dimensionality(data, k=k, sample=sample, seed=seed),
        mean_distance=float(mean_all.mean()),
        mean_nn_distance=float(nn[valid].mean()) if valid.any() else 0.0,
        sample_size=int(idx.shape[0]),
    )
