"""Readers/writers for the fvecs / ivecs formats of the TEXMEX corpora.

The paper's SIFT datasets ship in these formats (each vector is stored as
a little-endian int32 dimension header followed by the components).  The
stand-in registry does not need them, but users holding the real corpora
can load them and run every benchmark unchanged.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np


def _read_vecs(path: str, dtype: np.dtype, limit: Optional[int]) -> np.ndarray:
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    raw = np.fromfile(path, dtype=np.int32)
    if raw.size == 0:
        raise ValueError(f"{path} is empty")
    dim = int(raw[0])
    if dim <= 0:
        raise ValueError(f"{path}: invalid leading dimension {dim}")
    record = dim + 1
    if raw.size % record != 0:
        raise ValueError(f"{path}: size {raw.size} not a multiple of record {record}")
    count = raw.size // record
    if limit is not None:
        count = min(count, limit)
    table = raw[: count * record].reshape(count, record)
    headers = table[:, 0]
    if not np.all(headers == dim):
        raise ValueError(f"{path}: inconsistent per-vector dimensions")
    body = np.ascontiguousarray(table[:, 1:])
    if dtype == np.int32:
        return body.astype(np.int64)
    return body.view(np.float32).astype(np.float64)


def read_fvecs(path: str, limit: Optional[int] = None) -> np.ndarray:
    """Read an .fvecs file into an (n, d) float64 array (optionally first ``limit``)."""
    return _read_vecs(path, np.float32, limit)


def read_ivecs(path: str, limit: Optional[int] = None) -> np.ndarray:
    """Read an .ivecs file into an (n, d) int64 array (optionally first ``limit``)."""
    return _read_vecs(path, np.int32, limit)


def write_fvecs(path: str, vectors: np.ndarray) -> None:
    """Write an (n, d) array as .fvecs."""
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
    n, d = vectors.shape
    table = np.empty((n, d + 1), dtype=np.int32)
    table[:, 0] = d
    table[:, 1:] = vectors.view(np.int32)
    table.tofile(path)


def write_ivecs(path: str, vectors: np.ndarray) -> None:
    """Write an (n, d) int array as .ivecs."""
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.int32))
    n, d = vectors.shape
    table = np.empty((n, d + 1), dtype=np.int32)
    table[:, 0] = d
    table[:, 1:] = vectors
    table.tofile(path)
