"""Exact k-nearest-neighbor ground truth via blocked brute force.

The paper's recall and overall-ratio metrics (Eq. 11/12) compare against
the exact k-NN set, so every experiment needs ground truth.  Distances
are computed in query blocks with the ``||a - b||^2 = ||a||^2 - 2 a.b +
||b||^2`` expansion, keeping memory bounded for large ``n * m``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_dataset


def pairwise_distances_blocked(
    queries: np.ndarray, data: np.ndarray, block: int = 256
) -> np.ndarray:
    """Euclidean distances of shape (m, n), computed ``block`` queries at a time."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    data = check_dataset(data)
    if queries.shape[1] != data.shape[1]:
        raise ValueError(
            f"queries have dimension {queries.shape[1]}, data has {data.shape[1]}"
        )
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    data_sq = np.einsum("ij,ij->i", data, data)
    out = np.empty((queries.shape[0], data.shape[0]))
    for start in range(0, queries.shape[0], block):
        chunk = queries[start : start + block]
        chunk_sq = np.einsum("ij,ij->i", chunk, chunk)
        sq = chunk_sq[:, None] - 2.0 * (chunk @ data.T) + data_sq[None, :]
        np.maximum(sq, 0.0, out=sq)  # clamp negative rounding artifacts
        out[start : start + block] = np.sqrt(sq)
    return out


def exact_knn(
    queries: np.ndarray, data: np.ndarray, k: int, block: int = 256
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact k-NN: returns ``(ids, distances)`` of shape (m, k), ascending."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    distances = pairwise_distances_blocked(queries, data, block=block)
    k = min(k, data.shape[0] if data.ndim == 2 else distances.shape[1])
    part = np.argpartition(distances, k - 1, axis=1)[:, :k]
    part_d = np.take_along_axis(distances, part, axis=1)
    order = np.argsort(part_d, axis=1, kind="stable")
    ids = np.take_along_axis(part, order, axis=1)
    dists = np.take_along_axis(part_d, order, axis=1)
    return ids.astype(np.int64), dists
