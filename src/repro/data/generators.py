"""Synthetic point-cloud generators used by the dataset stand-ins.

LSH behaviour on real corpora is governed by a handful of distributional
properties — dimensionality, clusteredness (relative contrast), and local
intrinsic dimensionality (the paper's §VI-B3 explanation of why all
methods degrade on NUS cites exactly these).  Each generator exposes one
of those knobs:

* :func:`gaussian_mixture` — clustered data (SIFT/GIST-like descriptors);
* :func:`low_intrinsic_dim` — high ambient but low intrinsic dimension
  (image datasets such as MNIST/Cifar/Trevi);
* :func:`uniform_hypercube` — the hardest, contrast-free regime;
* :func:`scaled_heavy_tailed` — skewed norms (NUS-like "complex"
  distributions with poor relative contrast);
* :func:`planted_neighbors` — queries with neighbors planted at known
  distances, used by correctness tests for (r, c)-NN guarantees.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, default_rng


def _check_shape(n: int, d: int) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")


def gaussian_mixture(
    n: int,
    d: int,
    n_clusters: int = 10,
    cluster_std: float = 1.0,
    center_spread: float = 10.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Points drawn from a mixture of ``n_clusters`` spherical Gaussians.

    ``center_spread / cluster_std`` controls the relative contrast: large
    values give the easy, well-clustered regime of descriptor datasets.
    """
    _check_shape(n, d)
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    rng = default_rng(seed)
    centers = rng.standard_normal((n_clusters, d)) * center_spread
    assignment = rng.integers(0, n_clusters, size=n)
    return centers[assignment] + rng.standard_normal((n, d)) * cluster_std


def uniform_hypercube(
    n: int, d: int, low: float = 0.0, high: float = 1.0, seed: SeedLike = None
) -> np.ndarray:
    """I.i.d. uniform points in ``[low, high]^d`` (worst-case contrast)."""
    _check_shape(n, d)
    if not high > low:
        raise ValueError(f"high must exceed low, got [{low}, {high}]")
    rng = default_rng(seed)
    return rng.uniform(low, high, size=(n, d))


def low_intrinsic_dim(
    n: int,
    d: int,
    intrinsic_dim: int = 8,
    noise: float = 0.01,
    scale: float = 5.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Points on a random ``intrinsic_dim``-flat embedded in ``R^d`` + noise.

    Mirrors image datasets whose pixels are highly correlated: ambient
    dimensionality is large but the data occupy a low-dimensional
    subspace, which is the regime where LSH recall is highest.
    """
    _check_shape(n, d)
    if not 1 <= intrinsic_dim <= d:
        raise ValueError(f"intrinsic_dim must be in [1, {d}], got {intrinsic_dim}")
    rng = default_rng(seed)
    basis = rng.standard_normal((intrinsic_dim, d)) / np.sqrt(intrinsic_dim)
    latent = rng.standard_normal((n, intrinsic_dim)) * scale
    ambient_noise = rng.standard_normal((n, d)) * noise
    return latent @ basis + ambient_noise


def scaled_heavy_tailed(
    n: int,
    d: int,
    tail: float = 1.0,
    n_clusters: int = 20,
    seed: SeedLike = None,
) -> np.ndarray:
    """Clustered points with log-normal per-point scaling (skewed norms).

    Approximates "intrinsically complex" distributions like NUS where
    relative contrast is poor and every LSH method loses recall.
    """
    _check_shape(n, d)
    rng = default_rng(seed)
    base = gaussian_mixture(
        n, d, n_clusters=n_clusters, cluster_std=2.0, center_spread=3.0, seed=rng
    )
    scales = rng.lognormal(mean=0.0, sigma=tail, size=(n, 1))
    return base * scales


def planted_neighbors(
    n_background: int,
    d: int,
    n_queries: int,
    planted_distance: float = 1.0,
    background_distance: float = 20.0,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Dataset + queries where each query has one planted near neighbor.

    Background points are kept at least ``background_distance`` from every
    query center (in expectation, via a distant shell), while one planted
    point sits exactly ``planted_distance`` away.  Used to test the
    (r, c)-NN guarantee: with ``r >= planted_distance`` a correct method
    must return a point within ``c * r``.

    Returns ``(data, queries)`` where ``data[i]`` for ``i < n_queries`` is
    the planted neighbor of ``queries[i]``.
    """
    _check_shape(n_background, d)
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    if planted_distance <= 0 or background_distance <= planted_distance:
        raise ValueError("need 0 < planted_distance < background_distance")
    rng = default_rng(seed)
    queries = rng.standard_normal((n_queries, d))
    directions = rng.standard_normal((n_queries, d))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    planted = queries + directions * planted_distance

    background = rng.standard_normal((n_background, d))
    norms = np.linalg.norm(background, axis=1, keepdims=True)
    # Push background onto a shell far from the (near-origin) queries.
    background = background / norms * (background_distance + rng.uniform(
        0.0, background_distance, size=(n_background, 1)
    ))
    data = np.vstack([planted, background])
    return data, queries
