"""Datasets, generators, loaders and exact ground truth.

The paper evaluates on 10 real datasets (Table III).  Those corpora are
not redistributable and no network is available here, so
:mod:`repro.data.datasets` provides a registry of *synthetic stand-ins*
that mirror each dataset's dimensionality and clusteredness at laptop
scale; :mod:`repro.data.loaders` reads the standard fvecs/ivecs formats
for users who do have the originals.
"""

from repro.data.datasets import DATASET_REGISTRY, Dataset, DatasetSpec, make_dataset
from repro.data.generators import (
    gaussian_mixture,
    low_intrinsic_dim,
    planted_neighbors,
    scaled_heavy_tailed,
    uniform_hypercube,
)
from repro.data.groundtruth import exact_knn, pairwise_distances_blocked
from repro.data.loaders import read_fvecs, read_ivecs, write_fvecs, write_ivecs

__all__ = [
    "DATASET_REGISTRY",
    "Dataset",
    "DatasetSpec",
    "make_dataset",
    "gaussian_mixture",
    "low_intrinsic_dim",
    "planted_neighbors",
    "scaled_heavy_tailed",
    "uniform_hypercube",
    "exact_knn",
    "pairwise_distances_blocked",
    "read_fvecs",
    "read_ivecs",
    "write_fvecs",
    "write_ivecs",
]
