"""Registry of synthetic stand-ins for the paper's Table III datasets.

Each entry mirrors one of the 10 real corpora: the *ambient
dimensionality is kept exactly* (it drives hash-evaluation and distance
costs) while cardinality is scaled down to laptop size (recorded next to
the paper's original so reports can show both).  The generator family and
its knobs are chosen to match what is known about each corpus:
descriptor datasets (SIFT/DEEP/GIST/Audio) are clustered mixtures, image
datasets (MNIST/Cifar/Trevi) have low intrinsic dimension, and NUS is
heavy-tailed with poor relative contrast (the paper's own explanation of
why every method does worst there).

Queries follow §VI-A: ``n_queries`` points are generated jointly with the
data and *removed* from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.data import generators
from repro.utils.rng import SeedLike, default_rng, derive_seed


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one stand-in and its real counterpart."""

    name: str
    paper_cardinality: int
    paper_dim: int
    kind: str
    cardinality: int
    dim: int
    generator: str
    params: Tuple[Tuple[str, float], ...] = ()

    def describe(self) -> str:
        return (
            f"{self.name}: paper n={self.paper_cardinality:,} d={self.paper_dim} "
            f"({self.kind}); stand-in n={self.cardinality:,} d={self.dim} "
            f"via {self.generator}"
        )


@dataclass
class Dataset:
    """A materialised dataset: points, held-out queries, and its spec."""

    spec: DatasetSpec
    data: np.ndarray
    queries: np.ndarray

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n(self) -> int:
        return int(self.data.shape[0])

    @property
    def dim(self) -> int:
        return int(self.data.shape[1])


def _spec(
    name: str,
    paper_n: int,
    paper_d: int,
    kind: str,
    n: int,
    d: int,
    generator: str,
    **params: float,
) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        paper_cardinality=paper_n,
        paper_dim=paper_d,
        kind=kind,
        cardinality=n,
        dim=d,
        generator=generator,
        params=tuple(sorted(params.items())),
    )


#: Table III of the paper, mapped to synthetic stand-ins.
DATASET_REGISTRY: Dict[str, DatasetSpec] = {
    "audio": _spec(
        "audio", 54_387, 192, "Audio", 6_000, 192, "gaussian_mixture",
        n_clusters=30, cluster_std=1.0, center_spread=6.0,
    ),
    "mnist": _spec(
        "mnist", 60_000, 784, "Image", 6_000, 784, "low_intrinsic_dim",
        intrinsic_dim=12, noise=0.05, scale=5.0,
    ),
    "cifar": _spec(
        "cifar", 60_000, 1024, "Image", 6_000, 1024, "low_intrinsic_dim",
        intrinsic_dim=16, noise=0.05, scale=5.0,
    ),
    "trevi": _spec(
        "trevi", 101_120, 4096, "Image", 2_000, 4096, "low_intrinsic_dim",
        intrinsic_dim=24, noise=0.02, scale=4.0,
    ),
    "nus": _spec(
        "nus", 269_648, 500, "SIFT Description", 8_000, 500, "scaled_heavy_tailed",
        tail=1.0, n_clusters=40,
    ),
    "deep1m": _spec(
        "deep1m", 1_000_000, 256, "DEEP Description", 12_000, 256, "gaussian_mixture",
        n_clusters=64, cluster_std=1.0, center_spread=5.0,
    ),
    "gist": _spec(
        "gist", 1_000_000, 960, "GIST Description", 8_000, 960, "low_intrinsic_dim",
        intrinsic_dim=20, noise=0.05, scale=4.0,
    ),
    "sift10m": _spec(
        "sift10m", 10_000_000, 128, "SIFT Description", 20_000, 128, "gaussian_mixture",
        n_clusters=100, cluster_std=1.0, center_spread=6.0,
    ),
    "tiny80m": _spec(
        "tiny80m", 79_302_017, 384, "GIST Description", 24_000, 384, "gaussian_mixture",
        n_clusters=120, cluster_std=1.0, center_spread=5.0,
    ),
    "sift100m": _spec(
        "sift100m", 100_000_000, 128, "SIFT Description", 30_000, 128, "gaussian_mixture",
        n_clusters=150, cluster_std=1.0, center_spread=6.0,
    ),
}

_GENERATORS: Dict[str, Callable[..., np.ndarray]] = {
    "gaussian_mixture": generators.gaussian_mixture,
    "low_intrinsic_dim": generators.low_intrinsic_dim,
    "scaled_heavy_tailed": generators.scaled_heavy_tailed,
    "uniform_hypercube": generators.uniform_hypercube,
}


def make_dataset(
    name: str,
    n_queries: int = 100,
    seed: SeedLike = 0,
    scale: float = 1.0,
) -> Dataset:
    """Materialise a registered stand-in (or a custom spec by name).

    ``scale`` multiplies the stand-in cardinality (used by the vary-``n``
    experiments of Fig. 5-7, which subsample 0.2n .. n).  Queries are
    drawn jointly and removed from the data, following §VI-A.
    """
    try:
        spec = DATASET_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_REGISTRY))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    n_total = max(n_queries + 1, int(round(spec.cardinality * scale)) + n_queries)
    generator = _GENERATORS[spec.generator]
    points = generator(n_total, spec.dim, seed=seed, **dict(spec.params))
    # Query selection derives a child seed from ``seed`` (never Python's
    # process-salted ``hash``) so datasets are identical across processes.
    rng = default_rng(seed if seed is None else derive_seed(seed, 17))
    query_ids = rng.choice(n_total, size=n_queries, replace=False)
    mask = np.zeros(n_total, dtype=bool)
    mask[query_ids] = True
    return Dataset(spec=spec, data=points[~mask], queries=points[mask])


def registry_table() -> str:
    """Render the stand-in registry as an ASCII table (Table III analogue)."""
    header = (
        f"{'Dataset':<10} {'Paper n':>12} {'Paper d':>8} {'Stand-in n':>11} "
        f"{'d':>6} {'Generator':<20} {'Type'}"
    )
    lines = [header, "-" * len(header)]
    for spec in DATASET_REGISTRY.values():
        lines.append(
            f"{spec.name:<10} {spec.paper_cardinality:>12,} {spec.paper_dim:>8} "
            f"{spec.cardinality:>11,} {spec.dim:>6} {spec.generator:<20} {spec.kind}"
        )
    return "\n".join(lines)
