"""DB-LSH reproduction: dynamic query-centric bucketing for c-ANN search.

A complete, pure-Python implementation of *DB-LSH: Locality-Sensitive
Hashing with Query-based Dynamic Bucketing* (Tian, Zhao, Zhou; ICDE 2022),
including every substrate the paper depends on (R*-tree, KD-tree, B+-tree,
Z-order curves, M-tree, two LSH families) and every baseline it compares
against (E2LSH, FB-LSH, LSB-Forest, C2LSH, QALSH, R2LSH, VHP, PM-LSH, SRS,
LCCS-LSH, Multi-Probe).

Quickstart
----------
>>> import numpy as np
>>> from repro import DBLSH
>>> rng = np.random.default_rng(0)
>>> data = rng.standard_normal((1000, 32))
>>> index = DBLSH(c=1.5, l_spaces=5, k_per_space=8, seed=0).fit(data)
>>> result = index.query(data[0], k=5)
>>> result.neighbors[0].id
0
"""

from repro.core import (
    DBLSH,
    DBLSHParams,
    Neighbor,
    QueryResult,
    QueryStats,
    ShardedDBLSH,
    derive_parameters,
)

__version__ = "1.1.0"

__all__ = [
    "DBLSH",
    "DBLSHParams",
    "Neighbor",
    "QueryResult",
    "QueryStats",
    "ShardedDBLSH",
    "derive_parameters",
    "__version__",
]
