"""Result and statistics types shared by DB-LSH and every baseline.

A query returns a :class:`QueryResult`: the neighbor list (ascending by
distance) plus a :class:`QueryStats` record of the *work* performed —
distance computations, window queries, index node visits, radius rounds.
The paper's efficiency claims are about this work, so the counters are
first-class citizens rather than debug extras.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, NamedTuple


class Neighbor(NamedTuple):
    """One returned neighbor: dataset row id and exact Euclidean distance.

    A named tuple rather than a dataclass: queries construct ``k`` of
    these apiece, and tuple construction is several times cheaper while
    keeping the same field access, ``point_id, dist = neighbor``
    unpacking, equality and immutability semantics.
    """

    id: int
    distance: float


@dataclass
class QueryStats:
    """Hardware-independent work counters for a single query."""

    candidates_verified: int = 0
    distance_computations: int = 0
    hash_evaluations: int = 0
    window_queries: int = 0
    index_node_visits: int = 0
    rounds: int = 0
    final_radius: float = 0.0
    terminated_by: str = ""
    elapsed_seconds: float = 0.0

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters (used for averaging)."""
        self.candidates_verified += other.candidates_verified
        self.distance_computations += other.distance_computations
        self.hash_evaluations += other.hash_evaluations
        self.window_queries += other.window_queries
        self.index_node_visits += other.index_node_visits
        self.rounds += other.rounds
        self.elapsed_seconds += other.elapsed_seconds


@dataclass
class QueryResult:
    """Neighbors (ascending distance) plus the work that produced them."""

    neighbors: List[Neighbor] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)

    @classmethod
    def from_heap(cls, heap, stats: QueryStats) -> "QueryResult":
        """Package a bounded max-heap's retained candidates as a result.

        ``heap`` is any object whose ``items()`` yields ``(distance, id)``
        pairs in ascending-distance order (:class:`repro.utils.heaps.BoundedMaxHeap`).
        """
        return cls(
            neighbors=[Neighbor(int(i), float(d)) for d, i in heap.items()],
            stats=stats,
        )

    def __len__(self) -> int:
        return len(self.neighbors)

    def __iter__(self) -> Iterator[Neighbor]:
        return iter(self.neighbors)

    @property
    def ids(self) -> List[int]:
        """Neighbor ids in ascending-distance order."""
        return [n.id for n in self.neighbors]

    @property
    def distances(self) -> List[float]:
        """Neighbor distances in ascending order."""
        return [n.distance for n in self.neighbors]

    def is_empty(self) -> bool:
        return not self.neighbors
