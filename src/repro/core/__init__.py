"""The paper's primary contribution: the DB-LSH index.

:class:`~repro.core.dblsh.DBLSH` implements the indexing phase (§IV-B: L
K-dimensional projected spaces indexed by R*-trees) and the query phase
(§IV-C: query-centric dynamic bucketing via window queries, Algorithms 1
and 2, and their (c, k)-ANN adaptation).  Parameter derivation following
Lemma 1 / Remark 2 lives in :mod:`repro.core.params`.
"""

from repro.core.dblsh import DBLSH
from repro.core.params import DBLSHParams, derive_parameters
from repro.core.plan import merge_shard_batches, merge_shard_results
from repro.core.result import Neighbor, QueryResult, QueryStats
from repro.core.sharded import ShardedDBLSH

__all__ = [
    "DBLSH",
    "DBLSHParams",
    "ShardedDBLSH",
    "derive_parameters",
    "merge_shard_batches",
    "merge_shard_results",
    "Neighbor",
    "QueryResult",
    "QueryStats",
]
