"""DB-LSH: dynamic query-centric bucketing over a (K, L)-index (§IV).

Indexing phase (§IV-B)
    Each data point is projected into ``L`` independent ``K``-dimensional
    spaces by ``L x K`` Gaussian LSH functions (Eq. 7) and the projected
    points of each space are stored in a multi-dimensional index — by
    default a bulk-loaded R*-tree.

Query phase (§IV-C)
    An ``(r, c)``-NN query builds, per space, the query-centric hypercubic
    bucket ``W(G_i(q), w0 * r)`` (Eq. 8) as an index window query and
    verifies the points streaming out of it.  A ``c``-ANN (or
    ``(c, k)``-ANN) query issues ``(r, c)``-NN queries at radii
    ``r = r0, c r0, c^2 r0, ...`` until either

    * ``2tL + k`` distinct candidates have been verified, or
    * the k-th nearest neighbor found so far is within ``c * r``

    (the two termination conditions of Algorithm 1 / §IV-C).  Observation 1
    guarantees the single set of indexes serves every radius.

The implementation keeps a per-query *seen set* so a point is verified at
most once even though windows at successive radii nest; this matches the
paper's accounting of "points accessed".
"""

from __future__ import annotations

import math
import time
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.params import DBLSHParams, derive_parameters
from repro.core.result import Neighbor, QueryResult, QueryStats
from repro.hashing.compound import CompoundHasher
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rstar import RStarTree
from repro.utils.heaps import BoundedMaxHeap
from repro.utils.rng import SeedLike
from repro.utils.scale import estimate_nn_distance
from repro.utils.validation import check_dataset, check_positive, check_query

_BACKENDS = ("rstar", "rstar-insert", "kdtree", "grid")


class DBLSH:
    """The DB-LSH index.

    Parameters
    ----------
    c:
        Approximation ratio ``c > 1`` (paper default 1.5).  Theorem 1
        guarantees a ``c^2``-ANN with constant probability.
    w0:
        Base bucket width; defaults to the paper's ``4 c^2``.
    k_per_space, l_spaces:
        The (K, L)-index shape.  ``None`` derives them from Lemma 1 at
        ``fit`` time; the paper's experiments pin ``l_spaces = 5`` and
        ``k_per_space = 10..12``.
    t:
        Remark 2's budget constant; a query verifies at most ``2tL + k``
        candidates.
    backend:
        ``"rstar"`` (STR bulk-loaded R*-tree, the paper's choice),
        ``"rstar-insert"`` (same tree built by repeated R* insertion, for
        the bulk-loading ablation), ``"kdtree"`` or ``"grid"`` (backend
        ablation).
    max_entries:
        R*-tree node capacity.
    initial_radius:
        The starting radius ``r0`` of Algorithm 2 (paper assumes 1).
        ``auto_initial_radius=True`` instead estimates ``r0`` from a data
        sample at fit time, useful when feature scales are far from 1.
    patience:
        Optional early-termination extension (§VII future work): stop a
        query after this many consecutive verified candidates fail to
        improve the current k-th distance.  ``None`` disables it.
    seed:
        Seed for the projection tensor.
    """

    def __init__(
        self,
        c: float = 1.5,
        w0: Optional[float] = None,
        k_per_space: Optional[int] = None,
        l_spaces: Optional[int] = None,
        t: int = 16,
        backend: str = "rstar",
        max_entries: int = 32,
        initial_radius: float = 1.0,
        auto_initial_radius: bool = False,
        patience: Optional[int] = None,
        seed: SeedLike = 0,
    ) -> None:
        if c <= 1.0:
            raise ValueError(f"approximation ratio c must be > 1, got {c}")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        if patience is not None and patience < 1:
            raise ValueError(f"patience must be >= 1 or None, got {patience}")
        self.c = float(c)
        self._w0_arg = w0
        self._k_arg = k_per_space
        self._l_arg = l_spaces
        self.t = int(t)
        self.backend = backend
        self.max_entries = int(max_entries)
        self.initial_radius = check_positive("initial_radius", initial_radius)
        self.auto_initial_radius = bool(auto_initial_radius)
        self.patience = patience
        self.seed = seed

        self.params: Optional[DBLSHParams] = None
        self.data: Optional[np.ndarray] = None
        self.dim: int = 0
        self._hasher: Optional[CompoundHasher] = None
        self._tables: list = []
        self._table_low: list = []
        self._table_high: list = []
        self.build_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Indexing phase
    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> "DBLSH":
        """Build the (K, L)-index over ``data`` (n, d)."""
        started = time.perf_counter()
        data = check_dataset(data)
        n, dim = data.shape
        self.data = data
        self.dim = dim
        self.params = derive_parameters(
            n,
            c=self.c,
            w0=self._w0_arg,
            t=self.t,
            k_per_space=self._k_arg,
            l_spaces=self._l_arg,
        )
        self._hasher = CompoundHasher(
            dim, self.params.l_spaces, self.params.k_per_space, self.seed
        )
        projections = self._hasher.project_all(data)  # (L, n, K)
        self._tables = [self._build_table(projections[i]) for i in range(self.params.l_spaces)]
        self._table_low = [proj.min(axis=0) for proj in projections]
        self._table_high = [proj.max(axis=0) for proj in projections]
        if self.auto_initial_radius:
            self.initial_radius = self._estimate_initial_radius(data)
        self.build_seconds = time.perf_counter() - started
        return self

    def _build_table(self, projected: np.ndarray):
        if self.backend == "rstar":
            return RStarTree.bulk_load(projected, max_entries=self.max_entries)
        if self.backend == "rstar-insert":
            tree = RStarTree(projected.shape[1], max_entries=self.max_entries)
            for point_id, point in enumerate(projected):
                tree.insert(point_id, point)
            return tree
        if self.backend == "kdtree":
            return KDTree(projected, leaf_size=self.max_entries)
        if self.backend == "grid":
            assert self.params is not None
            return GridIndex(projected, cell_width=self.params.w0)
        raise AssertionError(f"unknown backend {self.backend!r}")

    def _estimate_initial_radius(self, data: np.ndarray) -> float:
        """Anchor the radius schedule two c-steps below the typical NN distance.

        The paper assumes data scaled so ``r0 = 1`` is meaningful; for
        arbitrary feature scales the shared sampled-NN estimator provides
        the anchor (every method in this library uses the same estimator,
        so auto-scaling never favours one of them).
        """
        base = estimate_nn_distance(data)
        if base <= 0:
            return self.initial_radius
        return max(base / (self.c**2), np.finfo(np.float64).tiny)

    def add(self, points: np.ndarray) -> None:
        """Incrementally index new points (R*-tree backends only).

        Not part of the paper's evaluation but a natural capability of the
        decoupled design: the dynamic bucketing never looks at bucket
        boundaries, so insertion is a plain R*-tree insert per space.
        """
        if self.data is None or self.params is None or self._hasher is None:
            raise RuntimeError("fit() must be called before add()")
        if self.backend not in ("rstar", "rstar-insert"):
            raise NotImplementedError("add() requires an R*-tree backend")
        points = check_dataset(points)
        if points.shape[1] != self.dim:
            raise ValueError(f"points have dimension {points.shape[1]}, expected {self.dim}")
        start_id = self.data.shape[0]
        projections = self._hasher.project_all(points)  # (L, m, K)
        for i, tree in enumerate(self._tables):
            for offset, projected in enumerate(projections[i]):
                tree.insert(start_id + offset, projected)
            self._table_low[i] = np.minimum(self._table_low[i], projections[i].min(axis=0))
            self._table_high[i] = np.maximum(self._table_high[i], projections[i].max(axis=0))
        self.data = np.vstack([self.data, points])

    # ------------------------------------------------------------------
    # Query phase
    # ------------------------------------------------------------------

    def query(self, query: np.ndarray, k: int = 1) -> QueryResult:
        """(c, k)-ANN search (Algorithm 2 with the §IV-C adaptation)."""
        self._require_fitted()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        assert self.params is not None and self.data is not None and self._hasher is not None
        started = time.perf_counter()
        query = check_query(query, self.dim)
        stats = QueryStats()
        q_proj = self._hasher.project_query(query)
        stats.hash_evaluations = self._hasher.num_functions

        heap = BoundedMaxHeap(k)
        seen = np.zeros(self.data.shape[0], dtype=bool)
        budget = self.params.budget(k)
        radius = self.initial_radius
        no_improve = 0

        while True:
            stats.rounds += 1
            stats.final_radius = radius
            reason = self._probe_round(
                query, q_proj, radius, heap, seen, budget, stats, no_improve_box=[no_improve]
            )
            if reason is not None:
                stats.terminated_by = reason
                break
            if self._window_covers_all(q_proj, self.params.w0 * radius):
                stats.terminated_by = "exhausted"
                break
            radius *= self.c

        stats.elapsed_seconds = time.perf_counter() - started
        neighbors = [Neighbor(int(i), float(d)) for d, i in heap.items()]
        return QueryResult(neighbors=neighbors, stats=stats)

    def query_batch(self, queries: np.ndarray, k: int = 1) -> list:
        """(c, k)-ANN for each row of ``queries``; returns a list of results.

        Convenience wrapper — queries are independent, so this is a loop
        over :meth:`query` (the per-query radius schedules diverge too
        early for useful cross-query vectorisation).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return [self.query(q, k=k) for q in queries]

    def range_query(self, query: np.ndarray, radius: float, k: int = 1) -> QueryResult:
        """A single (r, c)-NN query (Algorithm 1) at the given radius.

        Returns up to ``k`` points within ``c * radius`` of the query, or
        an empty result when Algorithm 1 would return nothing.
        """
        self._require_fitted()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        check_positive("radius", radius)
        assert self.params is not None and self.data is not None and self._hasher is not None
        started = time.perf_counter()
        query = check_query(query, self.dim)
        stats = QueryStats()
        stats.rounds = 1
        stats.final_radius = radius
        q_proj = self._hasher.project_query(query)
        stats.hash_evaluations = self._hasher.num_functions

        heap = BoundedMaxHeap(k)
        seen = np.zeros(self.data.shape[0], dtype=bool)
        budget = self.params.budget(k)
        reason = self._probe_round(query, q_proj, radius, heap, seen, budget, stats)
        stats.terminated_by = reason if reason is not None else "no_result"
        stats.elapsed_seconds = time.perf_counter() - started

        # Algorithm 1 only *returns* points when a termination condition
        # fired; points farther than c*r found along the way are dropped.
        cutoff = self.params.c * radius
        neighbors = [
            Neighbor(int(i), float(d)) for d, i in heap.items() if d <= cutoff
        ]
        if reason == "budget":
            # Budget exhaustion returns the current best found so far even
            # if beyond c*r (Lemma 2 shows that under E2 it cannot be).
            neighbors = [Neighbor(int(i), float(d)) for d, i in heap.items()]
        return QueryResult(neighbors=neighbors, stats=stats)

    def _probe_round(
        self,
        query: np.ndarray,
        q_proj: np.ndarray,
        radius: float,
        heap: BoundedMaxHeap,
        seen: np.ndarray,
        budget: int,
        stats: QueryStats,
        no_improve_box: Optional[list] = None,
    ) -> Optional[str]:
        """Run the L window queries of one (r, c)-NN round.

        Returns the termination reason (``"budget"``, ``"radius"``,
        ``"patience"``) or ``None`` when the round finished without
        triggering Algorithm 1's conditions.
        """
        assert self.params is not None and self.data is not None
        width = self.params.w0 * radius
        cutoff = self.params.c * radius
        no_improve = no_improve_box[0] if no_improve_box is not None else 0
        for i, table in enumerate(self._tables):
            w_low = q_proj[i] - width / 2.0
            w_high = q_proj[i] + width / 2.0
            stats.window_queries += 1
            for chunk in self._iter_window(table, w_low, w_high):
                fresh = chunk[~seen[chunk]]
                if fresh.shape[0] == 0:
                    continue
                seen[fresh] = True
                dists = np.linalg.norm(self.data[fresh] - query, axis=1)
                stats.distance_computations += int(fresh.shape[0])
                for point_id, dist in zip(fresh, dists):
                    stats.candidates_verified += 1
                    improved = heap.push(float(dist), int(point_id))
                    if improved:
                        no_improve = 0
                    else:
                        no_improve += 1
                    if stats.candidates_verified >= budget:
                        return "budget"
                    if heap.full and heap.bound <= cutoff:
                        return "radius"
                    if self.patience is not None and no_improve >= self.patience:
                        return "patience"
        if no_improve_box is not None:
            no_improve_box[0] = no_improve
        return None

    def _iter_window(self, table, w_low: np.ndarray, w_high: np.ndarray) -> Iterator[np.ndarray]:
        return table.window_query_iter(w_low, w_high)

    def _window_covers_all(self, q_proj: np.ndarray, width: float) -> bool:
        """True when every space's window already contains all points.

        At that radius each window query enumerates the full dataset, so
        every point has been verified and further enlargement is futile.
        One covering space suffices (its window returns everything).
        """
        half = width / 2.0
        for i in range(len(self._tables)):
            if np.all(q_proj[i] - half <= self._table_low[i]) and np.all(
                q_proj[i] + half >= self._table_high[i]
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.data is None:
            raise RuntimeError("fit() must be called before querying")

    @property
    def num_points(self) -> int:
        return 0 if self.data is None else int(self.data.shape[0])

    @property
    def num_hash_functions(self) -> int:
        """Index-size proxy used by the paper's §VI-B2 comparison."""
        if self.params is None:
            return 0
        return self.params.k_per_space * self.params.l_spaces

    def index_size_floats(self) -> int:
        """Stored projected coordinates: ``n * K * L`` floats."""
        if self.params is None or self.data is None:
            return 0
        return self.num_points * self.num_hash_functions

    def save(self, path: str) -> None:
        """Persist the fitted index to an ``.npz`` archive.

        Stores the data, the projection tensor and the scalar parameters;
        the per-space trees are *rebuilt* on load (STR bulk loading makes
        reconstruction cheaper than serialising node graphs — the same
        trade disk-based systems make with their bulk-load paths).
        """
        if self.data is None or self.params is None or self._hasher is None:
            raise RuntimeError("fit() must be called before save()")
        np.savez_compressed(
            path,
            data=self.data,
            tensor=self._hasher.tensor,
            c=self.params.c,
            w0=self.params.w0,
            k_per_space=self.params.k_per_space,
            l_spaces=self.params.l_spaces,
            t=self.params.t,
            max_entries=self.max_entries,
            initial_radius=self.initial_radius,
            backend=np.bytes_(self.backend.encode()),
        )

    @classmethod
    def load(cls, path: str) -> "DBLSH":
        """Rebuild an index persisted with :meth:`save`."""
        archive = np.load(path, allow_pickle=False)
        index = cls(
            c=float(archive["c"]),
            w0=float(archive["w0"]),
            k_per_space=int(archive["k_per_space"]),
            l_spaces=int(archive["l_spaces"]),
            t=int(archive["t"]),
            backend=bytes(archive["backend"]).decode(),
            max_entries=int(archive["max_entries"]),
            initial_radius=float(archive["initial_radius"]),
        )
        data = archive["data"]
        tensor = archive["tensor"]
        index.fit(data)
        # Restore the exact projection tensor (fit drew a fresh one).
        assert index._hasher is not None
        if tensor.shape != index._hasher.tensor.shape:
            raise ValueError("archive tensor shape does not match parameters")
        index._hasher.tensor = tensor
        index._hasher._flat = tensor.reshape(
            index._hasher.l_spaces * index._hasher.k_per_space, index._hasher.dim
        )
        projections = index._hasher.project_all(data)
        index._tables = [
            index._build_table(projections[i]) for i in range(index.params.l_spaces)  # type: ignore[union-attr]
        ]
        index._table_low = [proj.min(axis=0) for proj in projections]
        index._table_high = [proj.max(axis=0) for proj in projections]
        return index

    def describe(self) -> str:
        """One-line human-readable parameter summary."""
        if self.params is None:
            return "DBLSH(unfitted)"
        p = self.params
        return (
            f"DBLSH(n={self.num_points}, d={self.dim}, c={p.c}, w0={p.w0:.3g}, "
            f"K={p.k_per_space}, L={p.l_spaces}, t={p.t}, rho*={p.rho_star:.4f}, "
            f"backend={self.backend})"
        )
