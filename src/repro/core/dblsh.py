"""DB-LSH: dynamic query-centric bucketing over a (K, L)-index (§IV).

Indexing phase (§IV-B)
    Each data point is projected into ``L`` independent ``K``-dimensional
    spaces by ``L x K`` Gaussian LSH functions (Eq. 7) and the projected
    points of each space are stored in a multi-dimensional index — by
    default the *frozen array form* of an STR-packed R*-tree, built
    directly from the projected points without materializing pointer
    nodes (``builder="array"``; see :mod:`repro.index.str_build`).  The
    mutable pointer tree only comes into existence lazily, when ``add()``
    or a legacy-engine query needs one.

Query phase (§IV-C)
    An ``(r, c)``-NN query builds, per space, the query-centric hypercubic
    bucket ``W(G_i(q), w0 * r)`` (Eq. 8) as an index window query and
    verifies the points streaming out of it.  A ``c``-ANN (or
    ``(c, k)``-ANN) query issues ``(r, c)``-NN queries at radii
    ``r = r0, c r0, c^2 r0, ...`` until either

    * ``2tL + k`` distinct candidates have been verified, or
    * the k-th nearest neighbor found so far is within ``c * r``

    (the two termination conditions of Algorithm 1 / §IV-C).  Observation 1
    guarantees the single set of indexes serves every radius.

The implementation keeps a per-query *seen set* so a point is verified at
most once even though windows at successive radii nest; this matches the
paper's accounting of "points accessed".

Query engines
    Two engines implement the same algorithm:

    * ``"vectorized"`` (default) — the ``rstar`` backend traverses the
      frozen array form of the tree (:class:`repro.index.flat.FlatRStarTree`,
      level-wise MBR masks instead of per-node recursion), candidates are
      verified chunk-at-a-time with precomputed squared norms and a single
      matmul per chunk, and the per-query seen set is a generation-stamped
      scratch buffer (:class:`repro.utils.scratch.GenerationMask`) reused
      across queries instead of an O(n) allocation per query.  Chunk
      consumption emulates the sequential semantics exactly (budget /
      radius / patience stop at the same candidate boundary), so results
      match the legacy engine candidate-for-candidate.
    * ``"legacy"`` — the original pointer-chasing traversal with a
      per-candidate Python verification loop; kept as the baseline for
      ``benchmarks/bench_query_engine.py`` and the engine-equivalence
      tests.

    Both engines verify candidates in the same order, so budget-truncated
    queries return identical neighbor sets at a fixed seed (distances may
    differ in the last few ulps because the vectorized engine expands
    ``|x - q|^2 = |x|^2 - 2 x.q + |q|^2``).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.core.params import DBLSHParams, derive_parameters
from repro.core.result import Neighbor, QueryResult, QueryStats
from repro.hashing.compound import CompoundHasher
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rstar import RStarTree
from repro.index.str_build import build_flat_str
from repro.utils.heaps import BoundedMaxHeap
from repro.utils.rng import SeedLike
from repro.utils.scale import estimate_nn_distance
from repro.utils.scratch import GenerationMask
from repro.utils.validation import (
    check_dataset,
    check_positive,
    check_queries,
    check_query,
)

_BACKENDS = ("rstar", "rstar-insert", "kdtree", "grid")
_ENGINES = ("vectorized", "legacy")
_BUILDERS = ("array", "pointer")

#: ``query_batch(workers=...)`` falls back to the serial loop when the
#: per-query candidate budget ``2tL + k`` is below this.  Small-budget
#: queries finish in roughly one window probe, so their wall time is
#: per-query Python bookkeeping that holds the GIL — fanning such queries
#: out adds contention and loses to the serial loop
#: (``BENCH_query_engine.json``, ``fixed_t`` regime).  Large budgets
#: spend their time in chunked numpy verification, which releases the
#: GIL and does overlap.
MIN_PARALLEL_BUDGET = 1024

#: Sentinel returned by the chunk-merge fast path when the chunk contains
#: a mid-stream radius stop and must be replayed candidate-by-candidate.
_SLOW_PATH = object()


class DBLSH:
    """The DB-LSH index.

    Parameters
    ----------
    c:
        Approximation ratio ``c > 1`` (paper default 1.5).  Theorem 1
        guarantees a ``c^2``-ANN with constant probability.
    w0:
        Base bucket width; defaults to the paper's ``4 c^2``.
    k_per_space, l_spaces:
        The (K, L)-index shape.  ``None`` derives them from Lemma 1 at
        ``fit`` time; the paper's experiments pin ``l_spaces = 5`` and
        ``k_per_space = 10..12``.
    t:
        Remark 2's budget constant; a query verifies at most ``2tL + k``
        candidates.
    backend:
        ``"rstar"`` (STR bulk-loaded R*-tree, the paper's choice),
        ``"rstar-insert"`` (same tree built by repeated R* insertion, for
        the bulk-loading ablation), ``"kdtree"`` or ``"grid"`` (backend
        ablation).
    max_entries:
        R*-tree node capacity.
    initial_radius:
        The starting radius ``r0`` of Algorithm 2 (paper assumes 1).
        ``auto_initial_radius=True`` instead estimates ``r0`` from a data
        sample at fit time, useful when feature scales are far from 1.
    patience:
        Optional early-termination extension (§VII future work): stop a
        query after this many consecutive verified candidates fail to
        improve the current k-th distance.  The counter carries across
        radius rounds (a stall is a stall regardless of the radius at
        which it happens).  ``None`` disables it.
    engine:
        ``"vectorized"`` (default) or ``"legacy"`` — see the module
        docstring.  Both return the same neighbors; the vectorized engine
        is what the throughput numbers in ``BENCH_query_engine.json`` are
        measured on.
    builder:
        How ``fit`` constructs the per-space indexes on the ``rstar``
        backend with the vectorized engine.  ``"array"`` (default) builds
        the frozen :class:`~repro.index.flat.FlatRStarTree` arrays
        directly from the projected points
        (:func:`repro.index.str_build.build_flat_str`) — no pointer tree
        exists until ``add()`` or a legacy-engine query rematerializes
        one lazily.  ``"pointer"`` keeps the historical path (STR bulk
        load into ``_Node`` objects, frozen lazily on first query); it is
        the baseline ``benchmarks/bench_build.py`` measures against.
        Both builders produce byte-identical traversal arrays.
    seed:
        Seed for the projection tensor.
    """

    def __init__(
        self,
        c: float = 1.5,
        w0: Optional[float] = None,
        k_per_space: Optional[int] = None,
        l_spaces: Optional[int] = None,
        t: int = 16,
        backend: str = "rstar",
        max_entries: int = 32,
        initial_radius: float = 1.0,
        auto_initial_radius: bool = False,
        patience: Optional[int] = None,
        engine: str = "vectorized",
        builder: str = "array",
        seed: SeedLike = 0,
    ) -> None:
        if c <= 1.0:
            raise ValueError(f"approximation ratio c must be > 1, got {c}")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        if builder not in _BUILDERS:
            raise ValueError(f"builder must be one of {_BUILDERS}, got {builder!r}")
        if patience is not None and patience < 1:
            raise ValueError(f"patience must be >= 1 or None, got {patience}")
        self.c = float(c)
        self._w0_arg = w0
        self._k_arg = k_per_space
        self._l_arg = l_spaces
        self.t = int(t)
        self.backend = backend
        self.engine = engine
        self.builder = builder
        self.max_entries = int(max_entries)
        self.initial_radius = check_positive("initial_radius", initial_radius)
        self.auto_initial_radius = bool(auto_initial_radius)
        self.patience = patience
        self.seed = seed

        self.params: Optional[DBLSHParams] = None
        self.dim: int = 0
        self._hasher: Optional[CompoundHasher] = None
        self._tables: list = []
        self._flat_tables: list = []
        self._table_low: list = []
        self._table_high: list = []
        self._cov_low: Optional[np.ndarray] = None
        self._cov_high: Optional[np.ndarray] = None
        # Capacity-doubling storage: ``_buffer[:_n]`` is the live dataset.
        self._buffer: Optional[np.ndarray] = None
        self._norms2: Optional[np.ndarray] = None
        self._n: int = 0
        # Rows ``[_frozen_n, _n)`` are the *delta buffer*: appended after
        # the frozen traversals were built, never projected, swept
        # brute-force at the start of every query until ``compact()``
        # folds them in.  Non-flat paths keep ``_frozen_n == _n``.
        self._frozen_n: int = 0
        # Tombstoned (deleted) row ids.  Rows stay physically in the
        # buffer — ids are never renumbered — and are pre-marked into the
        # per-query seen mask so they are never verified, never charged
        # against the budget, and never enter the heap.
        self._tombstones: set = set()
        self._tomb_cache: Optional[np.ndarray] = None
        # One scratch mask per thread: reuse across queries without
        # breaking concurrent query() calls from user threads.
        self._scratch_locals = threading.local()
        self.build_seconds: float = 0.0
        # Time spent constructing the per-space index structures inside
        # fit() (excludes projection/validation; the build benchmark's
        # subject).  The pointer builder's lazy freeze is *not* included;
        # bench_build times _ensure_frozen() separately.
        self.table_build_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Indexing phase
    # ------------------------------------------------------------------

    @property
    def data(self) -> Optional[np.ndarray]:
        """The indexed points (a view over the growable buffer)."""
        if self._buffer is None:
            return None
        return self._buffer[: self._n]

    def fit(self, data: np.ndarray) -> "DBLSH":
        """Build the (K, L)-index over ``data`` (n, d).

        With the default ``builder="array"`` (``rstar`` backend,
        vectorized engine) the frozen traversal arrays are built directly
        from the projected points and **no pointer tree is materialized**
        — ``add()`` and legacy-engine queries rebuild one lazily through
        the same machinery snapshot loading uses.
        """
        started = time.perf_counter()
        data = check_dataset(data)
        n, dim = data.shape
        self._buffer = data
        self._norms2 = np.einsum("ij,ij->i", data, data)
        self._n = n
        self._frozen_n = n
        self._tombstones = set()
        self._tomb_cache = None
        self.dim = dim
        self.params = derive_parameters(
            n,
            c=self.c,
            w0=self._w0_arg,
            t=self.t,
            k_per_space=self._k_arg,
            l_spaces=self._l_arg,
        )
        self._hasher = CompoundHasher(
            dim, self.params.l_spaces, self.params.k_per_space, self.seed
        )
        projections = self._hasher.project_all(data)  # (L, n, K)
        build_started = time.perf_counter()
        if self.builder == "array" and self._uses_flat():
            self._tables = [None] * self.params.l_spaces
            self._flat_tables = [
                build_flat_str(projections[i], max_entries=self.max_entries)
                for i in range(self.params.l_spaces)
            ]
        else:
            self._tables = [
                self._build_table(projections[i])
                for i in range(self.params.l_spaces)
            ]
            self._reset_flat_tables()
        self.table_build_seconds = time.perf_counter() - build_started
        self._table_low = [proj.min(axis=0) for proj in projections]
        self._table_high = [proj.max(axis=0) for proj in projections]
        self._refresh_cover_bounds()
        if self.auto_initial_radius:
            self.initial_radius = self._estimate_initial_radius(data)
        self.build_seconds = time.perf_counter() - started
        return self

    def _build_table(self, projected: np.ndarray):
        if self.backend == "rstar":
            return RStarTree.bulk_load(projected, max_entries=self.max_entries)
        if self.backend == "rstar-insert":
            tree = RStarTree(projected.shape[1], max_entries=self.max_entries)
            for point_id, point in enumerate(projected):
                tree.insert(point_id, point)
            return tree
        if self.backend == "kdtree":
            return KDTree(projected, leaf_size=self.max_entries)
        if self.backend == "grid":
            assert self.params is not None
            return GridIndex(projected, cell_width=self.params.w0)
        raise AssertionError(f"unknown backend {self.backend!r}")

    def _uses_flat(self) -> bool:
        """The frozen traversal serves the bulk-loaded ``rstar`` backend.

        ``rstar-insert`` stays on the dynamic pointer path (its point is
        the insertion ablation), and the alternative backends have their
        own traversals.
        """
        return self.engine == "vectorized" and self.backend == "rstar"

    def _reset_flat_tables(self) -> None:
        """Drop any frozen traversals; they are rebuilt lazily on query."""
        self._flat_tables = [None] * len(self._tables)

    def _ensure_frozen(self) -> None:
        """Freeze every table up front (before fanning out worker threads)."""
        if self._uses_flat():
            if any(
                flat is None and self._tables[i] is None
                for i, flat in enumerate(self._flat_tables)
            ):
                self._materialize_tables()
            for i, flat in enumerate(self._flat_tables):
                if flat is None:
                    self._flat_tables[i] = self._tables[i].freeze()

    def _materialize_tables(self) -> None:
        """Rebuild any pointer trees a snapshot load left out.

        Loading a snapshot restores only the frozen traversals — the
        mutable R*-trees they were frozen from are not serialized.  The
        vectorized query path never needs them; the first ``add()`` or
        legacy-engine query does, and lands here to rebuild them from the
        (recomputed) projections.
        """
        if all(table is not None for table in self._tables):
            return
        assert self._hasher is not None and self.data is not None
        projections = self._hasher.project_all(self.data)
        for i, table in enumerate(self._tables):
            if table is None:
                self._tables[i] = self._build_table(projections[i])

    def _get_scratch(self) -> GenerationMask:
        """This thread's reusable seen-set mask, sized to the buffer."""
        assert self._buffer is not None
        mask: Optional[GenerationMask] = getattr(self._scratch_locals, "mask", None)
        capacity = self._buffer.shape[0]
        if mask is None:
            mask = GenerationMask(capacity)
            self._scratch_locals.mask = mask
        elif len(mask) < capacity:
            mask.grow(capacity)
        return mask

    def _estimate_initial_radius(self, data: np.ndarray) -> float:
        """Anchor the radius schedule two c-steps below the typical NN distance.

        The paper assumes data scaled so ``r0 = 1`` is meaningful; for
        arbitrary feature scales the shared sampled-NN estimator provides
        the anchor (every method in this library uses the same estimator,
        so auto-scaling never favours one of them).
        """
        base = estimate_nn_distance(data)
        if base <= 0:
            return self.initial_radius
        return max(base / (self.c**2), np.finfo(np.float64).tiny)

    def add(self, points: np.ndarray) -> None:
        """Incrementally index new points (R*-tree backends only).

        Not part of the paper's evaluation but a natural capability of the
        decoupled design: the dynamic bucketing never looks at bucket
        boundaries, so insertion never repartitions anything.

        On the default configuration (``rstar`` backend, vectorized
        engine, frozen traversals materialized — the state ``fit`` with
        ``builder="array"`` and snapshot loading both leave the index in)
        the new points land in the **delta buffer**: an O(m) append with
        no projection pass and no tree surgery.  Queries sweep the delta
        brute-force before the probe rounds, so the points are visible
        immediately; :meth:`compact` folds them into fresh traversals
        when the sweep grows noticeable.  The pointer paths (legacy
        engine, ``rstar-insert``, unfrozen pointer builder) keep the
        historical per-point R*-tree insertion.

        The dataset lives in a capacity-doubling buffer, so a sequence of
        ``add`` calls costs amortised O(1) copies per point rather than a
        full-dataset copy per call.
        """
        if self._buffer is None or self.params is None or self._hasher is None:
            raise RuntimeError("fit() must be called before add()")
        if self.backend not in ("rstar", "rstar-insert"):
            raise NotImplementedError("add() requires an R*-tree backend")
        delta_path = self._uses_flat() and all(
            flat is not None for flat in self._flat_tables
        )
        if not delta_path:
            self._materialize_tables()
        points = check_dataset(points)
        if points.shape[1] != self.dim:
            raise ValueError(f"points have dimension {points.shape[1]}, expected {self.dim}")
        start_id = self._n
        needed = self._n + points.shape[0]
        # Reallocate when out of capacity *or* when the buffer is a
        # read-only mapped snapshot view (arena loads): first-write after
        # a zero-copy load promotes the dataset to private heap; until
        # then the snapshot pages stay shared across processes.
        if needed > self._buffer.shape[0] or not self._buffer.flags.writeable:
            capacity = max(2 * self._buffer.shape[0], needed)
            buffer = np.empty((capacity, self.dim), dtype=np.float64)
            buffer[: self._n] = self._buffer[: self._n]
            self._buffer = buffer
            norms2 = np.empty(capacity, dtype=np.float64)
            norms2[: self._n] = self._norms2[: self._n]  # type: ignore[index]
            self._norms2 = norms2
        self._buffer[start_id:needed] = points
        self._norms2[start_id:needed] = np.einsum(  # type: ignore[index]
            "ij,ij->i", points, points
        )
        if delta_path:
            # Delta append: the frozen traversals stay valid for rows
            # [0, _frozen_n); the new rows are swept at query time.  No
            # projections are computed until compact() folds them in.
            self._n = needed
            return
        projections = self._hasher.project_all(points)  # (L, m, K)
        for i, tree in enumerate(self._tables):
            for offset, projected in enumerate(projections[i]):
                tree.insert(start_id + offset, projected)
            self._table_low[i] = np.minimum(self._table_low[i], projections[i].min(axis=0))
            self._table_high[i] = np.maximum(self._table_high[i], projections[i].max(axis=0))
        self._refresh_cover_bounds()
        self._n = needed
        self._frozen_n = needed
        # The frozen traversals are stale snapshots now; refreeze lazily
        # (per-thread scratch masks grow on their next use).
        self._reset_flat_tables()

    def delete(self, ids) -> int:
        """Tombstone the given row ids; returns how many were newly deleted.

        Deletion is logical and O(1): the rows stay in the buffer (ids
        are **never renumbered** — a snapshot/serving invariant), but
        every subsequent query pre-marks them into its seen mask, so a
        deleted point is never verified, never charged against the
        ``2tL + k`` budget, and never returned.  Deleting an id twice is
        a no-op (write-ahead-log replay relies on that idempotence).
        """
        self._require_fitted()
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64)).ravel()
        if ids.size and (ids.min() < 0 or ids.max() >= self._n):
            bad = ids[(ids < 0) | (ids >= self._n)][0]
            raise ValueError(
                f"cannot delete id {int(bad)}: ids must be in [0, {self._n})"
            )
        before = len(self._tombstones)
        self._tombstones.update(int(i) for i in ids)
        newly = len(self._tombstones) - before
        if newly:
            self._tomb_cache = None
        return newly

    def compact(self) -> bool:
        """Fold the delta buffer into fresh frozen traversals.

        Recomputes the projections over the whole buffer and rebuilds the
        per-space frozen arrays (an O(n) rebuild — amortize it over many
        ``add`` calls), after which queries stop paying the per-query
        delta sweep.  Tombstones stay logical: rows are never removed,
        so ids never shift.  Returns ``True`` when a fold happened,
        ``False`` when there was no delta to fold.  No-op (``False``) on
        the pointer paths, which index inserts eagerly.
        """
        self._require_fitted()
        if self._frozen_n >= self._n or not self._uses_flat():
            return False
        assert self._hasher is not None
        projections = self._hasher.project_all(self.data)  # (L, n, K)
        self._flat_tables = [
            build_flat_str(projections[i], max_entries=self.max_entries)
            for i in range(len(self._flat_tables))
        ]
        self._tables = [None] * len(self._flat_tables)
        self._table_low = [proj.min(axis=0) for proj in projections]
        self._table_high = [proj.max(axis=0) for proj in projections]
        self._refresh_cover_bounds()
        self._frozen_n = self._n
        return True

    def _tombstone_array(self) -> Optional[np.ndarray]:
        """The tombstoned ids as a sorted int64 array (``None`` when empty)."""
        if not self._tombstones:
            return None
        if self._tomb_cache is None or self._tomb_cache.shape[0] != len(
            self._tombstones
        ):
            self._tomb_cache = np.fromiter(
                sorted(self._tombstones), dtype=np.int64, count=len(self._tombstones)
            )
        return self._tomb_cache

    # ------------------------------------------------------------------
    # Query phase
    # ------------------------------------------------------------------

    def query(self, query: np.ndarray, k: int = 1) -> QueryResult:
        """(c, k)-ANN search (Algorithm 2 with the §IV-C adaptation).

        Safe to call concurrently from multiple threads: every thread
        reuses its own scratch buffers.
        """
        self._require_fitted()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        assert self._hasher is not None
        query = check_query(query, self.dim)
        q_proj = self._hasher.project_query(query)
        return self._query_one(query, q_proj, k, self._get_scratch())

    def query_batch(
        self, queries: np.ndarray, k: int = 1, workers: Optional[int] = None
    ) -> List[QueryResult]:
        """(c, k)-ANN for each row of ``queries``; returns a list of results.

        A true batched path: all ``m * L * K`` hash evaluations happen in
        one projection matmul (:meth:`CompoundHasher.project_queries`),
        and the per-query scratch buffers are reused across the batch.
        ``workers`` optionally fans the (independent) queries out over
        that many threads, each with its own scratch; results are returned
        in input order either way and match sequential :meth:`query`
        calls candidate-for-candidate (the internal ``RTreeStats`` work
        counters become approximate under workers — they are shared and
        updated without locks).

        ``workers`` is a hint, not a command: when the per-query budget
        ``2tL + k`` is below :data:`MIN_PARALLEL_BUDGET` the batch runs
        serially regardless, because tiny-budget queries are dominated by
        GIL-holding per-query bookkeeping and fan-out only adds
        contention (measured in ``BENCH_query_engine.json``: the
        ``fixed_t`` regime loses ~15% under workers, the scaled regime
        does not).
        """
        self._require_fitted()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        assert self._hasher is not None and self.params is not None
        queries = check_queries(queries, self.dim)
        m = queries.shape[0]
        if m == 0:
            return []
        # Freeze up front so worker threads never race the lazy refreeze.
        self._ensure_frozen()
        q_projs = self._hasher.project_queries(queries)  # (L, m, K)
        if (
            workers is not None
            and workers > 1
            and m > 1
            and self.params.budget(k) >= MIN_PARALLEL_BUDGET
        ):
            n_workers = min(int(workers), m)
            parts = np.array_split(np.arange(m), n_workers)

            def run(part: np.ndarray) -> List[Tuple[int, QueryResult]]:
                scratch = self._get_scratch()  # this worker thread's own
                return [
                    (int(j), self._query_one(queries[j], q_projs[:, j, :], k, scratch))
                    for j in part
                ]

            results: List[Optional[QueryResult]] = [None] * m
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                for future in [pool.submit(run, part) for part in parts]:
                    for j, result in future.result():
                        results[j] = result
            return results  # type: ignore[return-value]
        scratch = self._get_scratch()
        return [
            self._query_one(queries[j], q_projs[:, j, :], k, scratch) for j in range(m)
        ]

    def range_query(self, query: np.ndarray, radius: float, k: int = 1) -> QueryResult:
        """A single (r, c)-NN query (Algorithm 1) at the given radius.

        Returns up to ``k`` points within ``c * radius`` of the query, or
        an empty result when Algorithm 1 would return nothing.
        """
        self._require_fitted()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        check_positive("radius", radius)
        assert self.params is not None and self._hasher is not None
        started = time.perf_counter()
        query = check_query(query, self.dim)
        stats = QueryStats()
        stats.rounds = 1
        stats.final_radius = radius
        q_proj = self._hasher.project_query(query)
        stats.hash_evaluations = self._hasher.num_functions

        heap = BoundedMaxHeap(k)
        budget = self.params.budget(k)
        no_improve_box = [0]
        tombs = self._tombstone_array()
        if self.engine == "legacy":
            seen = np.zeros(self._n, dtype=bool)
            if tombs is not None:
                seen[tombs] = True
            reason = self._probe_round_legacy(
                query, q_proj, radius, heap, seen, budget, stats, no_improve_box
            )
        else:
            scratch = self._get_scratch().begin()
            if tombs is not None:
                scratch.mark(tombs)
            q_norm2 = float(query @ query)
            if self._n > self._frozen_n:
                self._sweep_delta(query, q_norm2, heap, scratch, stats)
            reason = self._probe_round(
                query,
                q_proj,
                q_norm2,
                radius,
                heap,
                scratch,
                budget,
                stats,
                no_improve_box,
            )
        stats.terminated_by = reason if reason is not None else "no_result"
        stats.elapsed_seconds = time.perf_counter() - started

        # Algorithm 1 only *returns* points when a termination condition
        # fired; points farther than c*r found along the way are dropped.
        if reason == "budget":
            # Budget exhaustion returns the current best found so far even
            # if beyond c*r (Lemma 2 shows that under E2 it cannot be).
            return QueryResult.from_heap(heap, stats)
        cutoff = self.params.c * radius
        neighbors = [
            Neighbor(int(i), float(d)) for d, i in heap.items() if d <= cutoff
        ]
        return QueryResult(neighbors=neighbors, stats=stats)

    def _query_one(
        self,
        query: np.ndarray,
        q_proj: np.ndarray,
        k: int,
        scratch: GenerationMask,
    ) -> QueryResult:
        """Run Algorithm 2 for one (validated) query and its projections."""
        assert self.params is not None
        started = time.perf_counter()
        stats = QueryStats()
        stats.hash_evaluations = self._hasher.num_functions  # type: ignore[union-attr]
        heap = BoundedMaxHeap(k)
        budget = self.params.budget(k)
        radius = self.initial_radius
        # The no-improvement counter deliberately survives radius rounds;
        # the box is shared with every probe round of this query.
        no_improve_box = [0]
        legacy = self.engine == "legacy"
        tombs = self._tombstone_array()
        if legacy:
            seen: object = np.zeros(self._n, dtype=bool)
            if tombs is not None:
                seen[tombs] = True  # deleted rows count as already seen
            q_norm2 = 0.0
        else:
            seen = scratch.begin()
            if tombs is not None:
                seen.mark(tombs)
            q_norm2 = float(query @ query)
            if self._n > self._frozen_n:
                self._sweep_delta(query, q_norm2, heap, seen, stats)

        while True:
            stats.rounds += 1
            stats.final_radius = radius
            if legacy:
                reason = self._probe_round_legacy(
                    query, q_proj, radius, heap, seen, budget, stats, no_improve_box
                )
            else:
                reason = self._probe_round(
                    query, q_proj, q_norm2, radius, heap, seen, budget, stats,
                    no_improve_box,
                )
            if reason is not None:
                stats.terminated_by = reason
                break
            if self._window_covers_all(q_proj, self.params.w0 * radius):
                stats.terminated_by = "exhausted"
                break
            radius *= self.c

        stats.elapsed_seconds = time.perf_counter() - started
        return QueryResult.from_heap(heap, stats)

    # ------------------------------------------------------------------
    # Probe rounds (one (r, c)-NN pass over the L windows)
    # ------------------------------------------------------------------

    def _probe_round(
        self,
        query: np.ndarray,
        q_proj: np.ndarray,
        q_norm2: float,
        radius: float,
        heap: BoundedMaxHeap,
        seen: GenerationMask,
        budget: int,
        stats: QueryStats,
        no_improve_box: list,
    ) -> Optional[str]:
        """Vectorized probe round: chunk-at-a-time candidate verification.

        Distances are computed per chunk as
        ``sqrt(|x|^2 - 2 x.q + |q|^2)`` with the ``|x|^2`` terms
        precomputed at fit time, and the budget / radius / patience
        conditions are applied with exact-boundary trimming so the query
        stops at the same candidate it would under the sequential loop.
        Returns the termination reason (``"budget"``, ``"radius"``,
        ``"patience"``) or ``None``.

        Neighbors, ``candidates_verified``, rounds and termination reason
        match the legacy engine exactly; ``distance_computations`` may
        differ slightly because both engines charge whole chunks and the
        chunk boundaries differ (per-leaf there, budget-trimmed merged
        spans here).
        """
        assert self.params is not None
        width = self.params.w0 * radius
        cutoff = self.params.c * radius
        data = self.data
        norms2 = self._norms2
        assert data is not None and norms2 is not None
        for i in range(len(self._tables)):
            w_low = q_proj[i] - width / 2.0
            w_high = q_proj[i] + width / 2.0
            stats.window_queries += 1
            if heap.full and heap.bound <= cutoff:
                # The radius stop fires at this round's first fresh
                # candidate; don't gather a large chunk to find it.
                hint = 32
            else:
                # Chunks are trimmed by window membership and the seen
                # filter, so aim a bit above the verifiable remainder.
                hint = 2 * (budget - stats.candidates_verified)
            for chunk in self._iter_window(i, w_low, w_high, hint):
                fresh = seen.fresh(chunk)
                if fresh.shape[0] == 0:
                    continue
                remaining = budget - stats.candidates_verified
                if fresh.shape[0] > remaining:
                    # Never compute distances the budget cannot verify.
                    fresh = fresh[:remaining]
                candidates = data[fresh]
                norms2_f = norms2[fresh]
                dists = norms2_f - 2.0 * (candidates @ query)
                dists += q_norm2
                np.maximum(dists, 0.0, out=dists)
                # The expansion cancels catastrophically when the distance
                # is tiny relative to the norms (a self-query would come
                # back ~1e-7 instead of 0); recompute those few exactly.
                suspect = dists < 1e-7 * (norms2_f + q_norm2)
                if suspect.any():
                    close = np.flatnonzero(suspect)
                    diff = candidates[close] - query
                    dists[close] = np.einsum("ij,ij->i", diff, diff)
                np.sqrt(dists, out=dists)
                stats.distance_computations += int(fresh.shape[0])
                reason = self._consume_chunk(
                    fresh, dists, heap, cutoff, budget, stats, no_improve_box
                )
                if reason is not None:
                    return reason
        return None

    def _sweep_delta(
        self,
        query: np.ndarray,
        q_norm2: float,
        heap: BoundedMaxHeap,
        seen: GenerationMask,
        stats: QueryStats,
    ) -> None:
        """Brute-force the delta rows ``[_frozen_n, _n)`` into the heap.

        The delta buffer has no traversal — its rows were never projected
        — so every query verifies all of it up front, with the same
        chunked-GEMM distance evaluation as :meth:`_probe_round`
        (precomputed ``|x|^2`` terms, catastrophic-cancellation rescue).
        Running the sweep *before* the probe rounds pre-charges the heap,
        which can only make the radius condition fire earlier.  The sweep
        is mandatory work proportional to the delta size — it is counted
        in ``distance_computations`` but not against the ``2tL + k``
        window budget, exactly like the projection pass isn't.

        Tombstoned delta rows are already marked in ``seen`` and skipped;
        all surviving rows are marked so the probe rounds can never
        double-count one (a folded-then-reloaded row cannot exist within
        one index, but the invariant is kept anyway — it is what the
        serve-layer merge relies on).
        """
        data = self.data
        norms2 = self._norms2
        assert data is not None and norms2 is not None
        delta_ids = np.arange(self._frozen_n, self._n, dtype=np.int64)
        for start in range(0, delta_ids.shape[0], 4096):
            fresh = seen.fresh(delta_ids[start : start + 4096])
            if fresh.shape[0] == 0:
                continue
            candidates = data[fresh]
            norms2_f = norms2[fresh]
            dists = norms2_f - 2.0 * (candidates @ query)
            dists += q_norm2
            np.maximum(dists, 0.0, out=dists)
            suspect = dists < 1e-7 * (norms2_f + q_norm2)
            if suspect.any():
                close = np.flatnonzero(suspect)
                diff = candidates[close] - query
                dists[close] = np.einsum("ij,ij->i", diff, diff)
            np.sqrt(dists, out=dists)
            stats.distance_computations += int(fresh.shape[0])
            retained = heap._heap  # [(-distance, id), ...]
            if len(retained) + fresh.shape[0] <= heap.k:
                heap.fill(dists.tolist(), fresh.tolist())
                continue
            if retained:
                all_d = np.concatenate([[-p[0] for p in retained], dists])
                all_i = np.concatenate([[p[1] for p in retained], fresh])
            else:
                all_d, all_i = dists, fresh
            sel = np.argpartition(all_d, heap.k - 1)[: heap.k]
            heap.rebuild(all_d[sel].tolist(), all_i[sel].tolist())

    def _consume_chunk(
        self,
        ids: np.ndarray,
        dists: np.ndarray,
        heap: BoundedMaxHeap,
        cutoff: float,
        budget: int,
        stats: QueryStats,
        no_improve_box: list,
    ) -> Optional[str]:
        """Feed one verified chunk into the heap with sequential semantics.

        Emulates the per-candidate loop exactly — same stop candidate,
        same ``candidates_verified`` count, same heap contents — but skips
        over runs of non-improving candidates with one vectorised
        comparison instead of one Python iteration each.
        """
        no_improve = no_improve_box[0]
        patience = self.patience
        take = ids.shape[0]
        if patience is None and not (heap.full and heap.bound <= cutoff):
            # Merge fast path: without a patience counter the only
            # mid-chunk stop is the radius condition, and whether it can
            # fire at all is decided by the merged k-th distance.  When it
            # cannot, the survivors are one vectorised partition instead
            # of one push per candidate.  Only worth it while the heap is
            # still filling or the chunk is dense in potential improvers;
            # sparse chunks are cheaper on the push-per-improver path.
            if not heap.full or int(np.count_nonzero(dists < heap.bound)) >= 32:
                reason = self._merge_chunk(ids, dists, heap, cutoff, budget, stats)
                if reason is not _SLOW_PATH:
                    return reason
        dist_list = dists.tolist()
        id_list = ids.tolist()
        i = 0
        reason = None
        if not heap.full:
            # Fill phase: every push is an improvement by definition, and
            # the radius condition can first hold once the heap is full.
            i = min(heap.k - len(heap), take)
            heap.fill(dist_list[:i], id_list[:i])
            no_improve = 0
            if heap.full and heap.bound <= cutoff:
                reason = "radius"
        if reason is None and i < take:  # heap is full past the fill phase
            if heap.bound <= cutoff:
                # Entered a round whose cutoff already exceeds the k-th
                # distance: the very next verified candidate stops the
                # query (pushes cannot raise the bound).
                improved = heap.push(dist_list[i], id_list[i])
                no_improve = 0 if improved else no_improve + 1
                i += 1
                reason = "radius"
            else:
                # One vectorised pass finds every candidate that could beat
                # the current bound; the bound only tightens, so everything
                # outside this wave is non-improving by construction, and
                # wave members are re-checked against the live bound by
                # ``push`` itself.
                bound0 = heap.bound
                wave = (np.flatnonzero(dists[i:] < bound0) + i).tolist()
                for p in wave:
                    gap = p - i  # non-improving candidates i .. p-1
                    if patience is not None and no_improve + gap >= patience:
                        i += patience - no_improve
                        no_improve = patience
                        reason = "patience"
                        break
                    no_improve += gap
                    improved = heap.push(dist_list[p], id_list[p])
                    no_improve = 0 if improved else no_improve + 1
                    i = p + 1
                    if improved and heap.bound <= cutoff:
                        reason = "radius"
                        break
                    if patience is not None and no_improve >= patience:
                        reason = "patience"
                        break
                else:
                    gap = take - i  # trailing non-improving candidates
                    if patience is not None and no_improve + gap >= patience:
                        i += patience - no_improve
                        no_improve = patience
                        reason = "patience"
                    else:
                        no_improve += gap
                        i = take
        stats.candidates_verified += i
        no_improve_box[0] = no_improve
        if stats.candidates_verified >= budget:
            # The sequential loop checks the budget before the other two
            # conditions, so exhaustion at the stop candidate wins.
            return "budget"
        return reason

    def _merge_chunk(
        self,
        ids: np.ndarray,
        dists: np.ndarray,
        heap: BoundedMaxHeap,
        cutoff: float,
        budget: int,
        stats: QueryStats,
    ):
        """Consume a whole chunk with one partition when no stop can fire.

        Only valid with ``patience`` disabled.  The radius condition is
        monotone — the running k-th distance can only tighten — so if the
        *merged* k-th distance still exceeds ``c * r``, no candidate in
        this chunk could have triggered it and the chunk's survivors are
        simply the k smallest of (heap ∪ chunk).  Otherwise returns
        ``_SLOW_PATH`` (without touching the heap) so the caller can
        replay the chunk sequentially and stop at the exact candidate.
        """
        take = ids.shape[0]
        k = heap.k
        retained = heap._heap  # [(-distance, id), ...]
        m_old = len(retained)
        if m_old + take <= k:
            heap.fill(dists.tolist(), ids.tolist())
            stats.candidates_verified += take
            if stats.candidates_verified >= budget:
                return "budget"
            if heap.full and heap.bound <= cutoff:
                return "radius"  # fires exactly at the filling candidate
            return None
        if m_old:
            all_d = np.concatenate([[-pair[0] for pair in retained], dists])
            all_i = np.concatenate([[pair[1] for pair in retained], ids])
        else:
            all_d, all_i = dists, ids
        sel = np.argpartition(all_d, k - 1)[:k]
        sel_d = all_d[sel]
        kth = float(sel_d.max())
        if kth <= cutoff:
            return _SLOW_PATH
        if int(np.count_nonzero(all_d <= kth)) > k:
            # Distances tie across the k-th boundary: argpartition picks
            # an arbitrary member of the tied group, while the sequential
            # semantics (strict <) keep the earliest-seen. Replay exactly.
            return _SLOW_PATH
        heap.rebuild(sel_d.tolist(), all_i[sel].tolist())
        stats.candidates_verified += take
        if stats.candidates_verified >= budget:
            return "budget"
        return None

    def _probe_round_legacy(
        self,
        query: np.ndarray,
        q_proj: np.ndarray,
        radius: float,
        heap: BoundedMaxHeap,
        seen: np.ndarray,
        budget: int,
        stats: QueryStats,
        no_improve_box: Optional[list] = None,
    ) -> Optional[str]:
        """The original per-candidate verification loop (``engine="legacy"``).

        Returns the termination reason (``"budget"``, ``"radius"``,
        ``"patience"``) or ``None`` when the round finished without
        triggering Algorithm 1's conditions.
        """
        assert self.params is not None
        data = self.data
        assert data is not None
        width = self.params.w0 * radius
        cutoff = self.params.c * radius
        no_improve = no_improve_box[0] if no_improve_box is not None else 0
        for i in range(len(self._tables)):
            w_low = q_proj[i] - width / 2.0
            w_high = q_proj[i] + width / 2.0
            stats.window_queries += 1
            for chunk in self._iter_window(i, w_low, w_high):
                fresh = chunk[~seen[chunk]]
                if fresh.shape[0] == 0:
                    continue
                seen[fresh] = True
                dists = np.linalg.norm(data[fresh] - query, axis=1)
                stats.distance_computations += int(fresh.shape[0])
                for point_id, dist in zip(fresh, dists):
                    stats.candidates_verified += 1
                    improved = heap.push(float(dist), int(point_id))
                    if improved:
                        no_improve = 0
                    else:
                        no_improve += 1
                    if stats.candidates_verified >= budget:
                        return "budget"
                    if heap.full and heap.bound <= cutoff:
                        return "radius"
                    if self.patience is not None and no_improve >= self.patience:
                        return "patience"
        if no_improve_box is not None:
            no_improve_box[0] = no_improve
        return None

    def _iter_window(
        self,
        i: int,
        w_low: np.ndarray,
        w_high: np.ndarray,
        first_chunk: Optional[int] = None,
    ) -> Iterator[np.ndarray]:
        """Stream candidate-id chunks of space ``i``'s window query.

        ``first_chunk`` sizes the flat traversal's initial chunk (the
        caller's remaining verification budget); the pointer-based
        backends yield per-leaf chunks and ignore it.
        """
        if self._uses_flat():
            flat = self._flat_tables[i]
            if flat is None:  # pointer-built, not yet frozen: freeze now
                if self._tables[i] is None:
                    self._materialize_tables()
                flat = self._flat_tables[i] = self._tables[i].freeze()
            return flat.window_query_iter(w_low, w_high, first_chunk=first_chunk)
        if self._tables[i] is None:  # snapshot-loaded; legacy/ablation path
            self._materialize_tables()
        return self._tables[i].window_query_iter(w_low, w_high)

    def _refresh_cover_bounds(self) -> None:
        """Stack the per-space projected extents for the coverage test."""
        self._cov_low = np.stack(self._table_low)  # (L, K)
        self._cov_high = np.stack(self._table_high)

    def _window_covers_all(self, q_proj: np.ndarray, width: float) -> bool:
        """True when every space's window already contains all points.

        At that radius each window query enumerates the full dataset, so
        every point has been verified and further enlargement is futile.
        One covering space suffices (its window returns everything); all
        L spaces are tested with one stacked comparison.
        """
        half = width / 2.0
        return bool(
            np.any(
                np.all(q_proj - half <= self._cov_low, axis=1)
                & np.all(q_proj + half >= self._cov_high, axis=1)
            )
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _require_fitted(self) -> None:
        if self._buffer is None:
            raise RuntimeError("fit() must be called before querying")

    @property
    def num_points(self) -> int:
        """Physical rows in the buffer (tombstoned rows included)."""
        return self._n

    @property
    def num_live(self) -> int:
        """Rows that queries can still return (physical minus tombstoned)."""
        return self._n - len(self._tombstones)

    @property
    def num_pending(self) -> int:
        """Delta-buffer rows awaiting :meth:`compact` (swept per query)."""
        return self._n - self._frozen_n

    @property
    def num_tombstones(self) -> int:
        """Logically deleted rows (never renumbered, skipped by queries)."""
        return len(self._tombstones)

    @property
    def num_hash_functions(self) -> int:
        """Index-size proxy used by the paper's §VI-B2 comparison."""
        if self.params is None:
            return 0
        return self.params.k_per_space * self.params.l_spaces

    def index_size_floats(self) -> int:
        """Stored projected coordinates: ``n * K * L`` floats."""
        if self.params is None or self._buffer is None:
            return 0
        return self.num_points * self.num_hash_functions

    @property
    def is_mapped(self) -> bool:
        """True when the dataset buffer is a zero-copy mapped snapshot view.

        Arena-snapshot loads hand the index read-only ``np.memmap``-backed
        arrays, so the physical pages belong to the kernel page cache and
        are shared by every process mapping the same file.  The first
        :meth:`add` promotes the buffer to private heap (see the
        reallocation guard there), after which this turns ``False``.
        """
        if self._buffer is None:
            return False
        base = self._buffer
        while isinstance(base, np.ndarray):
            if isinstance(base, np.memmap):
                return True
            base = base.base
        return False

    def save(self, path: str, *, format: str = "arena") -> None:
        """Persist the fitted index as a versioned snapshot.

        On the default ``rstar`` backend the snapshot contains the frozen
        traversal arrays, so :meth:`load` answers queries without any
        bulk loading; see :mod:`repro.io.snapshot` for the format.  The
        default ``arena`` container loads back as zero-copy mapped views;
        pass ``format="npz"`` for the legacy v1 container.
        """
        if self._buffer is None or self.params is None or self._hasher is None:
            raise RuntimeError("fit() must be called before save()")
        from repro.io.snapshot import save_index

        save_index(self, path, format=format)

    @classmethod
    def load(cls, path: str) -> "DBLSH":
        """Restore an index persisted with :meth:`save` (no rebuild)."""
        from repro.io.snapshot import SnapshotError, load_index

        index = load_index(path)
        if not isinstance(index, cls):
            raise SnapshotError(
                f"{path!r} holds a {type(index).__name__} snapshot; "
                f"use repro.io.load_index() or {type(index).__name__}.load()"
            )
        return index

    @classmethod
    def _restore(
        cls,
        *,
        data: np.ndarray,
        tensor: np.ndarray,
        c: float,
        w0: float,
        k_per_space: int,
        l_spaces: int,
        t: int,
        backend: str,
        engine: str,
        max_entries: int,
        initial_radius: float,
        patience: Optional[int],
        seed: SeedLike,
        table_low: np.ndarray,
        table_high: np.ndarray,
        flats: Optional[list],
        build_seconds: float = 0.0,
        builder: str = "array",
        tombstones: Optional[np.ndarray] = None,
        norms2: Optional[np.ndarray] = None,
    ) -> "DBLSH":
        """Reassemble a fitted index from snapshot state (no tree build).

        ``flats`` carries the restored frozen traversals (or ``None`` for
        backends that snapshot without them); the mutable pointer trees
        stay unmaterialized until :meth:`add` or a legacy-engine query
        needs them.  ``tombstones`` restores logically deleted row ids —
        the rows are physically present in ``data`` (ids never renumber)
        but excluded from every query.  ``norms2`` adopts precomputed
        squared norms shipped in the snapshot; without them restore pays
        an O(n*d) einsum over the dataset, which both costs time and
        faults every data page of a freshly mapped arena.
        """
        index = cls(
            c=c,
            w0=w0,
            k_per_space=k_per_space,
            l_spaces=l_spaces,
            t=t,
            backend=backend,
            max_entries=max_entries,
            initial_radius=initial_radius,
            patience=patience,
            engine=engine,
            builder=builder,
            seed=seed,
        )
        data = check_dataset(data)
        n, dim = data.shape
        index._buffer = data
        if norms2 is not None and norms2.shape == (n,):
            index._norms2 = np.ascontiguousarray(norms2, dtype=np.float64)
        else:
            index._norms2 = np.einsum("ij,ij->i", data, data)
        index._n = n
        index._frozen_n = n
        if tombstones is not None and len(tombstones):
            index.delete(tombstones)
        index.dim = dim
        index.params = derive_parameters(
            n, c=c, w0=w0, t=t, k_per_space=k_per_space, l_spaces=l_spaces
        )
        index._hasher = CompoundHasher.from_tensor(tensor)
        index._tables = [None] * l_spaces
        if flats is not None:
            if len(flats) != l_spaces:
                raise ValueError(f"expected {l_spaces} frozen tables, got {len(flats)}")
            index._flat_tables = list(flats)
        else:
            index._flat_tables = [None] * l_spaces
            index._materialize_tables()
        index._table_low = [np.asarray(row, dtype=np.float64) for row in table_low]
        index._table_high = [np.asarray(row, dtype=np.float64) for row in table_high]
        index._refresh_cover_bounds()
        index.build_seconds = float(build_seconds)
        return index

    def describe(self) -> str:
        """One-line human-readable parameter summary."""
        if self.params is None:
            return "DBLSH(unfitted)"
        p = self.params
        return (
            f"DBLSH(n={self.num_points}, d={self.dim}, c={p.c}, w0={p.w0:.3g}, "
            f"K={p.k_per_space}, L={p.l_spaces}, t={p.t}, rho*={p.rho_star:.4f}, "
            f"backend={self.backend}, engine={self.engine}, builder={self.builder})"
        )
