"""Parameter derivation for DB-LSH (Lemma 1, Remark 2, §VI-A defaults).

The theory sets, for a ``(1, c, p1, p2)``-sensitive dynamic family with
base width ``w0``:

* ``K = ceil(log_{1/p2}(n / t))``  — so that far points collide in a given
  space with probability at most ``t / n`` (Lemma 1's E2 event);
* ``L = ceil((n / t)^{rho*})`` with ``rho* = ln(1/p1) / ln(1/p2)`` — so
  that a near point is found with probability at least ``1 - 1/e``
  (Lemma 1's E1 event);
* candidate budget ``2tL + k`` (Algorithm 1 / §IV-C).

The experiments (§VI-A) instead pin ``L = 5`` and ``K = 10..12`` with
``c = 1.5`` and ``w0 = 4 c^2`` — Remark 2 explains the ``t`` knob exists
precisely to make such small, practical values sound.  Both modes are
supported: :func:`derive_parameters` computes the theory-faithful values,
and :class:`DBLSHParams` accepts explicit overrides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.hashing.probability import collision_probability_dynamic, rho_dynamic
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DBLSHParams:
    """Resolved DB-LSH parameters (all values concrete and validated)."""

    c: float
    w0: float
    k_per_space: int
    l_spaces: int
    t: int
    p1: float
    p2: float
    rho_star: float

    @property
    def candidate_budget_base(self) -> int:
        """The ``2tL`` part of the budget; callers add ``k`` per §IV-C."""
        return 2 * self.t * self.l_spaces

    def budget(self, k: int) -> int:
        """Total candidate budget ``2tL + k`` for a (c, k)-ANN query."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return self.candidate_budget_base + k


def default_w0(c: float) -> float:
    """The paper's default bucket width ``w0 = 4 c^2`` (gamma = 2)."""
    check_positive("c", c)
    return 4.0 * c * c


def derive_parameters(
    n: int,
    c: float = 1.5,
    w0: Optional[float] = None,
    t: int = 16,
    k_per_space: Optional[int] = None,
    l_spaces: Optional[int] = None,
) -> DBLSHParams:
    """Resolve DB-LSH parameters for a dataset of cardinality ``n``.

    ``k_per_space`` / ``l_spaces`` override the theory-derived ``K`` / ``L``
    (the paper itself pins ``L = 5``, ``K = 10`` or ``12`` in §VI-A).
    ``t`` trades index size against the per-query candidate budget
    (Remark 2).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if c <= 1.0:
        raise ValueError(f"approximation ratio c must be > 1, got {c}")
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t}")
    w0 = default_w0(c) if w0 is None else check_positive("w0", w0)

    p1 = float(collision_probability_dynamic(1.0, w0))
    p2 = float(collision_probability_dynamic(c, w0))
    rho_star = rho_dynamic(c, w0)

    ratio = max(2.0, n / t)
    if k_per_space is None:
        k_per_space = max(1, math.ceil(math.log(ratio) / math.log(1.0 / p2)))
    elif k_per_space < 1:
        raise ValueError(f"k_per_space must be >= 1, got {k_per_space}")
    if l_spaces is None:
        l_spaces = max(1, math.ceil(ratio**rho_star))
    elif l_spaces < 1:
        raise ValueError(f"l_spaces must be >= 1, got {l_spaces}")

    return DBLSHParams(
        c=float(c),
        w0=float(w0),
        k_per_space=int(k_per_space),
        l_spaces=int(l_spaces),
        t=int(t),
        p1=p1,
        p2=p2,
        rho_star=rho_star,
    )


def paper_default_parameters(n: int, c: float = 1.5, t: int = 16) -> DBLSHParams:
    """The exact §VI-A experimental configuration for cardinality ``n``.

    ``L = 5`` always; ``K = 12`` for datasets above one million points and
    ``K = 10`` otherwise; ``w0 = 4 c^2``.
    """
    k_per_space = 12 if n > 1_000_000 else 10
    return derive_parameters(n, c=c, t=t, k_per_space=k_per_space, l_spaces=5)
