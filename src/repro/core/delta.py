"""Mutable delta index: the in-memory side of crash-safe mutations.

A frozen snapshot answers queries from immutable arrays; live inserts
land here instead.  :class:`DeltaIndex` is an array-native append buffer
— points, their squared norms, and their *global* ids — swept
brute-force with the same chunked-GEMM verification the probe rounds
use (``|x|^2 - 2 x.q + |q|^2`` with the catastrophic-cancellation
recompute), so a delta answer is exact and merges with the snapshot
answer by plain ``(distance, id)`` order.

Deletes never touch the buffer: they accumulate in a tombstone set that
the merge planner (:func:`repro.core.plan.merge_live_results`) applies
to the snapshot's answers, and :meth:`sweep` applies to its own — a
deleted row simply stops being reportable, wherever it lives.  Rows are
never renumbered; an id stays valid for the lifetime of the dataset.

Thread-safety contract: :meth:`append` and :meth:`view` must be
serialized by the caller (the mutation lock of
:class:`~repro.serve.mutable.MutableSnapshotServer`), but a
:class:`DeltaView` taken under the lock stays a consistent snapshot
*outside* it: growth reallocates (the view keeps the old arrays) and
appends write past the view's length, so concurrent readers never see
half-written rows.  :meth:`trim` (compaction folding the prefix into a
new snapshot generation) likewise reallocates rather than shifting.
"""

from __future__ import annotations

from typing import Container, List, Optional

import numpy as np

from repro.core.result import Neighbor, QueryResult, QueryStats

__all__ = ["DeltaIndex", "DeltaView"]

#: Relative tolerance under which a GEMM-computed squared distance is
#: recomputed exactly — same constant as the probe-round verification.
_RECOMPUTE_RTOL = 1e-7


class DeltaView:
    """An immutable snapshot of a :class:`DeltaIndex` prefix.

    Holds slice views (no copies) of the buffer at capture time; see the
    module docstring for why those stay consistent under concurrent
    appends and trims.
    """

    __slots__ = ("ids", "points", "norms2")

    def __init__(self, ids: np.ndarray, points: np.ndarray,
                 norms2: np.ndarray) -> None:
        self.ids = ids
        self.points = points
        self.norms2 = norms2

    def __len__(self) -> int:
        return self.ids.shape[0]

    def sweep(self, queries: np.ndarray, k: int,
              exclude: Optional[Container[int]] = None) -> List[QueryResult]:
        """Exact top-``k`` of every query over the buffered rows.

        Parameters
        ----------
        queries:
            ``(m, d)`` query block (already validated by the caller).
        k:
            Neighbors per query.
        exclude:
            Tombstoned ids; matching rows are skipped entirely (never
            verified, never reported) — mirroring how the frozen engine
            pre-marks tombstones as seen.

        Returns
        -------
        list of QueryResult
            Per query: ascending ``(distance, id)`` neighbors carrying
            **global** ids, with ``distance_computations`` /
            ``candidates_verified`` counting the swept rows (the sweep
            is verification work, like the projection pass it replaces —
            it is not charged against any probe budget).
        """
        m = queries.shape[0]
        if len(self) == 0:
            return [QueryResult() for _ in range(m)]
        keep = np.ones(len(self), dtype=bool)
        if exclude is not None:
            dropped = [i for i, pid in enumerate(self.ids) if int(pid) in exclude]
            if dropped:
                keep[dropped] = False
        if not keep.any():
            return [QueryResult() for _ in range(m)]
        ids = self.ids[keep]
        points = self.points[keep]
        norms2 = self.norms2[keep]

        q_norms2 = np.einsum("ij,ij->i", queries, queries)
        d2 = q_norms2[:, None] - 2.0 * (queries @ points.T) + norms2[None, :]
        suspect = d2 < _RECOMPUTE_RTOL * (norms2[None, :] + q_norms2[:, None])
        if suspect.any():
            rows, cols = np.nonzero(suspect)
            diff = points[cols] - queries[rows]
            d2[rows, cols] = np.einsum("ij,ij->i", diff, diff)
        np.maximum(d2, 0.0, out=d2)
        dists = np.sqrt(d2)

        swept = int(ids.shape[0])
        results: List[QueryResult] = []
        for qi in range(m):
            row = dists[qi]
            if k < row.shape[0]:
                top = np.argpartition(row, k - 1)[:k]
            else:
                top = np.arange(row.shape[0])
            order = np.lexsort((ids[top], row[top]))
            picked = top[order]
            neighbors = [
                Neighbor(int(ids[j]), float(row[j])) for j in picked
            ]
            stats = QueryStats(
                candidates_verified=swept,
                distance_computations=swept,
                terminated_by="exhausted",
            )
            results.append(QueryResult(neighbors=neighbors, stats=stats))
        return results


class DeltaIndex:
    """Capacity-doubling append buffer of (global id, point, squared norm)."""

    def __init__(self, dim: int, capacity: int = 256) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = int(dim)
        capacity = max(int(capacity), 1)
        self._ids = np.zeros(capacity, dtype=np.int64)
        self._points = np.zeros((capacity, self.dim), dtype=np.float64)
        self._norms2 = np.zeros(capacity, dtype=np.float64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def append(self, point_id: int, point: np.ndarray) -> None:
        """Buffer one inserted row (caller holds the mutation lock)."""
        if self._n == self._ids.shape[0]:
            grown = self._ids.shape[0] * 2
            # Reallocate instead of resizing in place: outstanding views
            # keep the old arrays and stay consistent.
            ids = np.zeros(grown, dtype=np.int64)
            points = np.zeros((grown, self.dim), dtype=np.float64)
            norms2 = np.zeros(grown, dtype=np.float64)
            ids[: self._n] = self._ids[: self._n]
            points[: self._n] = self._points[: self._n]
            norms2[: self._n] = self._norms2[: self._n]
            self._ids, self._points, self._norms2 = ids, points, norms2
        self._ids[self._n] = point_id
        self._points[self._n] = point
        self._norms2[self._n] = float(point @ point)
        self._n += 1

    def view(self, upto: Optional[int] = None) -> DeltaView:
        """A consistent snapshot of the first ``upto`` rows (default: all).

        The captured slices are marked read-only: a view is a promise of
        immutability, and handing out writeable windows into the live
        buffer would let a consumer corrupt rows the index still serves.
        (Slice views carry their own flags — the underlying buffer stays
        writeable for :meth:`append`, matching how snapshot loads hand
        the query engine read-only mapped arrays.)
        """
        n = self._n if upto is None else min(int(upto), self._n)
        ids = self._ids[:n]
        points = self._points[:n]
        norms2 = self._norms2[:n]
        ids.flags.writeable = False
        points.flags.writeable = False
        norms2.flags.writeable = False
        return DeltaView(ids, points, norms2)

    def trim(self, folded: int) -> None:
        """Drop the first ``folded`` rows (now baked into a snapshot).

        Reallocates the remainder so views captured before the trim keep
        their arrays; caller holds the mutation lock.
        """
        folded = max(0, min(int(folded), self._n))
        if folded == 0:
            return
        remaining = self._n - folded
        capacity = max(remaining, 256)
        ids = np.zeros(capacity, dtype=np.int64)
        points = np.zeros((capacity, self.dim), dtype=np.float64)
        norms2 = np.zeros(capacity, dtype=np.float64)
        ids[:remaining] = self._ids[folded:self._n]
        points[:remaining] = self._points[folded:self._n]
        norms2[:remaining] = self._norms2[folded:self._n]
        self._ids, self._points, self._norms2 = ids, points, norms2
        self._n = remaining
