"""Transport-agnostic scatter-gather planning for partitioned queries.

A partitioned DB-LSH deployment — whatever moves the bytes — always has
the same query shape:

1. **scatter** the query (or query block) to every shard;
2. each shard answers locally with ascending ``(distance, local id)``
   neighbor lists and per-query work counters;
3. **gather** the per-shard answers and k-way merge them into one global
   top-k, mapping local ids back through the shard offsets.

Steps 1–2 are owned by a transport — the serial sweep and opt-in thread
fan-out of :class:`~repro.core.sharded.ShardedDBLSH`, or the worker
processes of :class:`~repro.serve.SnapshotServer` — but step 3 is pure
arithmetic on the gathered results.  This module holds that arithmetic so
every transport merges identically: the parity guarantees pinned by the
sharding tests transfer to any new transport for free.

The merge itself is an allocation-light k-way heap merge: each shard's
neighbor list is already ascending by ``(distance, id)``, so popping list
heads from a heap of size S yields the global order while constructing
only the ``k`` winners — no ``S * k`` intermediate neighbor objects and
no full sort per query.
"""

from __future__ import annotations

import heapq
from typing import Container, List, Sequence

from repro.core.result import Neighbor, QueryResult, QueryStats

__all__ = [
    "merge_shard_results",
    "merge_shard_batches",
    "merge_live_results",
    "merge_live_batches",
]


def merge_shard_results(
    results: Sequence[QueryResult],
    offsets: Sequence[int],
    k: int,
    elapsed: float,
    hash_evaluations: int = 0,
) -> QueryResult:
    """Merge one query's per-shard answers into the global top-k.

    Parameters
    ----------
    results:
        One :class:`QueryResult` per shard, neighbor lists ascending by
        ``(distance, id)`` (the heap ``items()`` order every engine
        produces) with *shard-local* ids.
    offsets:
        Global id of each shard's first point (``offsets[i]`` is added to
        shard ``i``'s local ids).
    k:
        Number of neighbors to retain globally.
    elapsed:
        Wall time to report for the merged query.  The per-shard times
        overlapped (or were measured in other processes), so the caller —
        who saw the whole scatter-gather — supplies the real figure.
    hash_evaluations:
        Hash-evaluation count to report.  The projection is evaluated
        once per query, not once per shard, so summing the per-shard
        counters would overcount by S; pass the index's function count.

    Returns
    -------
    QueryResult
        Global top-k with summed work counters; ``rounds`` and
        ``final_radius`` are maxima over shards (the shards probe in
        lockstep radius schedules), and ``terminated_by`` joins the
        distinct per-shard reasons with ``+``.
    """
    heads = []
    for si, result in enumerate(results):
        neighbors = result.neighbors
        if neighbors:
            first = neighbors[0]
            heads.append((first.distance, offsets[si] + first.id, si, 0))
    heapq.heapify(heads)
    merged: List[Neighbor] = []
    while heads and len(merged) < k:
        distance, global_id, si, pos = heapq.heappop(heads)
        merged.append(Neighbor(global_id, distance))
        neighbors = results[si].neighbors
        pos += 1
        if pos < len(neighbors):
            nxt = neighbors[pos]
            heapq.heappush(heads, (nxt.distance, offsets[si] + nxt.id, si, pos))
    stats = QueryStats()
    for result in results:
        stats.merge(result.stats)
    stats.hash_evaluations = hash_evaluations
    stats.rounds = max(result.stats.rounds for result in results)
    stats.final_radius = max(result.stats.final_radius for result in results)
    stats.terminated_by = "+".join(
        sorted({result.stats.terminated_by for result in results})
    )
    stats.elapsed_seconds = elapsed
    return QueryResult(neighbors=merged, stats=stats)


def merge_shard_batches(
    per_shard: Sequence[Sequence[QueryResult]],
    offsets: Sequence[int],
    k: int,
    elapsed_per_query: float,
    hash_evaluations: int = 0,
) -> List[QueryResult]:
    """Merge a whole batch: ``per_shard[i][j]`` is shard i's answer to query j.

    The transpose-and-merge loop shared by every batched transport;
    results come back in query order.  ``elapsed_per_query`` is the batch
    wall time divided by the batch size (the only honest per-query figure
    when shards overlap).
    """
    if not per_shard:
        return []
    m = len(per_shard[0])
    if any(len(shard_batch) != m for shard_batch in per_shard):
        # A transport bug (a retry merging answers from two different
        # scatters, a worker answering a truncated block) must fail loud
        # here, not silently zip-truncate into plausible-looking results.
        raise ValueError(
            f"ragged shard batches: per-shard result counts "
            f"{[len(b) for b in per_shard]} disagree"
        )
    return [
        merge_shard_results(
            [shard_batch[j] for shard_batch in per_shard],
            offsets,
            k,
            elapsed_per_query,
            hash_evaluations,
        )
        for j in range(m)
    ]


def merge_live_results(
    base: QueryResult,
    delta: QueryResult,
    dropped: Container[int],
    k: int,
) -> QueryResult:
    """Fold a delta-buffer answer and the tombstone set into a base answer.

    The mutable-serving counterpart of :func:`merge_shard_results`: the
    *base* answer comes from the frozen snapshot (over-fetched so that
    tombstoned hits can be discarded without shrinking below ``k``), the
    *delta* answer from the live append buffer — both ascending by
    ``(distance, id)`` with **global** ids already.

    ``dropped`` is the current tombstone membership (any container with
    ``in``): matching ids are filtered from either list, because a base
    snapshot generation predating a delete still reports the row.  Ids
    are deduplicated keeping the first occurrence — during a compaction
    flip the new snapshot generation and the not-yet-trimmed delta briefly
    both hold the folded rows, and dedup is what makes that window
    harmless.

    The returned stats are the base stats with the delta sweep's
    verification work added (the sweep is exact verification, so its
    rows count as candidates verified and distance computations).
    """
    merged: List[Neighbor] = []
    seen = set()
    i = j = 0
    base_nb, delta_nb = base.neighbors, delta.neighbors
    while len(merged) < k and (i < len(base_nb) or j < len(delta_nb)):
        if j >= len(delta_nb):
            candidate, from_base = base_nb[i], True
        elif i >= len(base_nb):
            candidate, from_base = delta_nb[j], False
        elif (base_nb[i].distance, base_nb[i].id) <= (
            delta_nb[j].distance, delta_nb[j].id
        ):
            candidate, from_base = base_nb[i], True
        else:
            candidate, from_base = delta_nb[j], False
        if from_base:
            i += 1
        else:
            j += 1
        if candidate.id in dropped or candidate.id in seen:
            continue
        seen.add(candidate.id)
        merged.append(candidate)
    stats = base.stats
    stats.candidates_verified += delta.stats.candidates_verified
    stats.distance_computations += delta.stats.distance_computations
    return QueryResult(neighbors=merged, stats=stats)


def merge_live_batches(
    base_batch: Sequence[QueryResult],
    delta_batch: Sequence[QueryResult],
    dropped: Container[int],
    k: int,
) -> List[QueryResult]:
    """Batch form of :func:`merge_live_results` (answers in query order)."""
    if len(base_batch) != len(delta_batch):
        raise ValueError(
            f"ragged live merge: {len(base_batch)} base answers vs "
            f"{len(delta_batch)} delta answers"
        )
    return [
        merge_live_results(base, delta, dropped, k)
        for base, delta in zip(base_batch, delta_batch)
    ]
