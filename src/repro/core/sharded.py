"""Sharded DB-LSH: one logical index served by S independent sub-indexes.

DB-LSH's dynamic bucketing makes sharding unusually clean: a query-centric
window query has no pre-built bucket state to repartition, so each shard
answers the *same* window queries over its slice of the data and the
shard results merge by exact distance.  :class:`ShardedDBLSH` exploits
that:

* **fit** partitions the dataset into S contiguous slices and builds one
  :class:`~repro.core.dblsh.DBLSH` per slice *in parallel* (STR bulk
  loading releases the GIL inside numpy sorts and matmuls, so threads
  overlap);
* every shard shares the **same projection tensor** and the parameters
  derived from the *global* cardinality — shard i's window at radius
  ``r`` contains exactly the points of the unsharded window that live in
  slice i, so the union of shard candidates equals the unsharded
  candidate set at every radius;
* **query** fans out across shards (reusing each shard's vectorized
  probe rounds and generation-stamped scratch) and merges the per-shard
  top-k lists into a global top-k by distance;
* **query_batch** projects the whole batch once (one GEMM, shared across
  shards) and runs one worker thread per shard.

Each shard runs Algorithm 1's termination independently with the full
``2tL + k`` budget, so a sharded query may verify up to S times more
candidates than an unsharded one — the standard scatter-gather trade:
recall never degrades (the benchmark shows it improving), the per-shard
probes overlap on threads, and the aggregate work grows with S.  With the budget sized so queries terminate by the radius
condition, the merged top-k matches the unsharded engine's result
exactly; the parity tests pin this.

Snapshots (:mod:`repro.io.snapshot`) store all shards in one archive, so
a sharded deployment reloads with zero rebuild exactly like a single
index.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

import numpy as np

from repro.core.dblsh import DBLSH
from repro.core.params import DBLSHParams, derive_parameters
from repro.core.result import Neighbor, QueryResult, QueryStats
from repro.utils.rng import SeedLike
from repro.utils.scale import estimate_nn_distance
from repro.utils.validation import check_dataset, check_queries, check_query


class ShardedDBLSH:
    """DB-LSH partitioned across ``shards`` independently-built sub-indexes.

    Accepts the same tuning surface as :class:`DBLSH` (the parameters are
    resolved once from the global cardinality and pushed down to every
    shard) plus:

    Parameters
    ----------
    shards:
        Number of partitions ``S >= 1``.
    build_workers:
        Threads used to build shards in parallel at ``fit`` time
        (default: one per shard).
    """

    name = "Sharded-DB-LSH"

    def __init__(
        self,
        shards: int = 2,
        c: float = 1.5,
        w0: Optional[float] = None,
        k_per_space: Optional[int] = None,
        l_spaces: Optional[int] = None,
        t: int = 16,
        backend: str = "rstar",
        max_entries: int = 32,
        initial_radius: float = 1.0,
        auto_initial_radius: bool = False,
        patience: Optional[int] = None,
        engine: str = "vectorized",
        seed: SeedLike = 0,
        build_workers: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if build_workers is not None and build_workers < 1:
            raise ValueError(f"build_workers must be >= 1 or None, got {build_workers}")
        # Constructing a throwaway DBLSH validates the shared knobs with
        # the exact error messages of the unsharded constructor.
        DBLSH(
            c=c,
            w0=w0,
            k_per_space=k_per_space,
            l_spaces=l_spaces,
            t=t,
            backend=backend,
            max_entries=max_entries,
            initial_radius=initial_radius,
            auto_initial_radius=auto_initial_radius,
            patience=patience,
            engine=engine,
            seed=seed,
        )
        self.shards = int(shards)
        self.c = float(c)
        self._w0_arg = w0
        self._k_arg = k_per_space
        self._l_arg = l_spaces
        self.t = int(t)
        self.backend = backend
        self.engine = engine
        self.max_entries = int(max_entries)
        self.initial_radius = float(initial_radius)
        self.auto_initial_radius = bool(auto_initial_radius)
        self.patience = patience
        self.seed = seed
        self.build_workers = build_workers

        self.params: Optional[DBLSHParams] = None
        self.dim: int = 0
        self._shards: List[DBLSH] = []
        self._offsets: List[int] = []
        # Long-lived fan-out pool (one worker per shard), created lazily
        # so unfitted/sequential instances never spawn threads.
        self._pool: Optional[ThreadPoolExecutor] = None
        self.build_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Indexing phase
    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> "ShardedDBLSH":
        """Partition ``data`` into S slices and build every shard in parallel."""
        started = time.perf_counter()
        data = check_dataset(data)
        n, dim = data.shape
        if self.shards > n:
            raise ValueError(f"shards={self.shards} exceeds dataset size {n}")
        self.dim = dim
        # Parameters come from the *global* cardinality: every shard gets
        # the same (K, L) shape, width and tensor as the unsharded index,
        # which is what makes shard windows partition the global window.
        self.params = derive_parameters(
            n,
            c=self.c,
            w0=self._w0_arg,
            t=self.t,
            k_per_space=self._k_arg,
            l_spaces=self._l_arg,
        )
        if self.auto_initial_radius:
            base = estimate_nn_distance(data)
            if base > 0:
                self.initial_radius = max(
                    base / (self.c**2), float(np.finfo(np.float64).tiny)
                )
        sizes = [part.shape[0] for part in np.array_split(np.arange(n), self.shards)]
        self._offsets = [int(v) for v in np.concatenate(([0], np.cumsum(sizes)[:-1]))]
        self._shards = [
            DBLSH(
                c=self.c,
                w0=self.params.w0,
                k_per_space=self.params.k_per_space,
                l_spaces=self.params.l_spaces,
                t=self.t,
                backend=self.backend,
                max_entries=self.max_entries,
                initial_radius=self.initial_radius,
                auto_initial_radius=False,
                patience=self.patience,
                engine=self.engine,
                seed=self.seed,  # same seed -> identical projection tensor
            )
            for _ in range(self.shards)
        ]

        def build(i: int) -> None:
            start = self._offsets[i]
            stop = start + sizes[i]
            self._shards[i].fit(data[start:stop])

        workers = self.build_workers if self.build_workers is not None else self.shards
        if workers > 1 and self.shards > 1:
            with ThreadPoolExecutor(max_workers=min(workers, self.shards)) as pool:
                # list() re-raises any build exception in the caller.
                list(pool.map(build, range(self.shards)))
        else:
            for i in range(self.shards):
                build(i)
        self.build_seconds = time.perf_counter() - started
        return self

    def add(self, points: np.ndarray) -> None:
        """Incrementally index new points (appended to the last shard).

        Contiguous partitioning means new global ids continue the id
        sequence exactly when the growth lands on the final shard, so the
        global→shard mapping stays a plain offset lookup.
        """
        self._require_fitted()
        self._shards[-1].add(points)

    # ------------------------------------------------------------------
    # Query phase
    # ------------------------------------------------------------------

    def query(self, query: np.ndarray, k: int = 1) -> QueryResult:
        """(c, k)-ANN: fan out to every shard, merge top-k by distance."""
        self._require_fitted()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query = check_query(query, self.dim)
        started = time.perf_counter()
        # One projection serves all shards (identical tensors by seed).
        q_proj = self._shards[0]._hasher.project_query(query)  # type: ignore[union-attr]

        def run(shard: DBLSH) -> QueryResult:
            return shard._query_one(query, q_proj, k, shard._get_scratch())

        if self.shards > 1:
            for shard in self._shards:
                shard._ensure_frozen()
            results = list(self._executor().map(run, self._shards))
        else:
            results = [run(self._shards[0])]
        return self._merge(results, k, time.perf_counter() - started)

    def _executor(self) -> ThreadPoolExecutor:
        """The reusable shard fan-out pool (per-query spawns would cost
        more than the sub-millisecond probes they parallelise)."""
        pool = self._pool
        if pool is None:
            pool = self._pool = ThreadPoolExecutor(
                max_workers=self.shards, thread_name_prefix="dblsh-shard"
            )
        return pool

    def query_batch(
        self, queries: np.ndarray, k: int = 1, workers: Optional[int] = None
    ) -> List[QueryResult]:
        """Batched (c, k)-ANN: one projection GEMM, one worker per shard.

        ``workers`` caps the shard fan-out threads (default: one thread
        per shard; pass ``workers=1`` to run shards sequentially).
        Results are merged per query and returned in input order.
        """
        self._require_fitted()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        queries = check_queries(queries, self.dim)
        m = queries.shape[0]
        if m == 0:
            return []
        started = time.perf_counter()
        for shard in self._shards:
            shard._ensure_frozen()
        q_projs = self._shards[0]._hasher.project_queries(queries)  # type: ignore[union-attr]

        def run(shard: DBLSH) -> List[QueryResult]:
            scratch = shard._get_scratch()  # per-thread, per-shard
            return [
                shard._query_one(queries[j], q_projs[:, j, :], k, scratch)
                for j in range(m)
            ]

        n_workers = self.shards if workers is None else min(int(workers), self.shards)
        if n_workers >= self.shards > 1:
            per_shard = list(self._executor().map(run, self._shards))
        elif n_workers > 1:
            # User-capped fan-out below one-thread-per-shard: ad-hoc pool.
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                per_shard = list(pool.map(run, self._shards))
        else:
            per_shard = [run(shard) for shard in self._shards]
        elapsed = time.perf_counter() - started
        return [
            self._merge([shard_results[j] for shard_results in per_shard], k, elapsed / m)
            for j in range(m)
        ]

    def _merge(
        self, results: List[QueryResult], k: int, elapsed: float
    ) -> QueryResult:
        """Global top-k from per-shard results, ids mapped back to global."""
        merged = sorted(
            (
                Neighbor(offset + neighbor.id, neighbor.distance)
                for offset, result in zip(self._offsets, results)
                for neighbor in result.neighbors
            ),
            key=lambda neighbor: (neighbor.distance, neighbor.id),
        )[:k]
        stats = QueryStats()
        for result in results:
            stats.merge(result.stats)
        # The projection was evaluated once, not once per shard, and the
        # per-shard wall times overlapped; report the real aggregates.
        stats.hash_evaluations = self._shards[0]._hasher.num_functions  # type: ignore[union-attr]
        stats.rounds = max(result.stats.rounds for result in results)
        stats.final_radius = max(result.stats.final_radius for result in results)
        stats.terminated_by = "+".join(
            sorted({result.stats.terminated_by for result in results})
        )
        stats.elapsed_seconds = elapsed
        return QueryResult(neighbors=merged, stats=stats)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist all shards into one versioned snapshot archive."""
        self._require_fitted()
        from repro.io.snapshot import save_index

        save_index(self, path)

    @classmethod
    def load(cls, path: str) -> "ShardedDBLSH":
        """Restore a sharded index persisted with :meth:`save` (no rebuild)."""
        from repro.io.snapshot import SnapshotError, load_index

        index = load_index(path)
        if not isinstance(index, cls):
            raise SnapshotError(
                f"{path!r} holds a {type(index).__name__} snapshot; "
                f"use repro.io.load_index() or {type(index).__name__}.load()"
            )
        return index

    @classmethod
    def _restore(
        cls, *, shards: List[DBLSH], build_seconds: float = 0.0
    ) -> "ShardedDBLSH":
        """Reassemble a sharded index from restored shard sub-indexes."""
        if not shards:
            raise ValueError("a sharded snapshot must contain at least one shard")
        first = shards[0]
        assert first.params is not None
        index = cls(
            shards=len(shards),
            c=first.c,
            w0=first.params.w0,
            k_per_space=first.params.k_per_space,
            l_spaces=first.params.l_spaces,
            t=first.t,
            backend=first.backend,
            max_entries=first.max_entries,
            initial_radius=first.initial_radius,
            patience=first.patience,
            engine=first.engine,
            seed=first.seed,
        )
        index.dim = first.dim
        index._shards = list(shards)
        sizes = [shard.num_points for shard in shards]
        index._offsets = [int(v) for v in np.concatenate(([0], np.cumsum(sizes)[:-1]))]
        index.params = derive_parameters(
            sum(sizes),
            c=first.c,
            w0=first.params.w0,
            t=first.t,
            k_per_space=first.params.k_per_space,
            l_spaces=first.params.l_spaces,
        )
        index.build_seconds = float(build_seconds)
        return index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self._shards:
            raise RuntimeError("fit() must be called before querying")

    @property
    def shard_indexes(self) -> List[DBLSH]:
        """The underlying per-shard :class:`DBLSH` instances (read-only use)."""
        return list(self._shards)

    @property
    def shard_offsets(self) -> List[int]:
        """Global id of each shard's first point."""
        return list(self._offsets)

    @property
    def data(self) -> Optional[np.ndarray]:
        """The indexed points in global id order (concatenated copy)."""
        if not self._shards:
            return None
        return np.concatenate([shard.data for shard in self._shards])

    @property
    def num_points(self) -> int:
        return sum(shard.num_points for shard in self._shards)

    @property
    def num_hash_functions(self) -> int:
        """Index-size proxy; shards share one (K, L) shape, so same as unsharded."""
        if self.params is None:
            return 0
        return self.params.k_per_space * self.params.l_spaces

    def index_size_floats(self) -> int:
        """Stored projected coordinates across all shards: ``n * K * L``."""
        return self.num_points * self.num_hash_functions

    def describe(self) -> str:
        """One-line human-readable parameter summary."""
        if self.params is None:
            return f"ShardedDBLSH(shards={self.shards}, unfitted)"
        p = self.params
        return (
            f"ShardedDBLSH(shards={self.shards}, n={self.num_points}, d={self.dim}, "
            f"c={p.c}, w0={p.w0:.3g}, K={p.k_per_space}, L={p.l_spaces}, t={p.t}, "
            f"backend={self.backend}, engine={self.engine})"
        )
